#!/usr/bin/env python3
"""Load and crash-safety harness for the exploration farm (CI ``service-smoke``).

Three phases against real ``repro serve`` subprocesses:

1. **saturation** — a burst of concurrent submissions (default 50
   threads) against a deliberately small ``--max-queue``: every request
   must resolve to exactly one of 202 accepted / 200 fast-path / 429
   backpressure, and every accepted job must drain to a terminal state.
   Graceful saturation means bounded memory and zero lost submissions.
2. **kill + restart** — SIGKILL the server mid-campaign, restart it on
   the same spool with a short lease, and require every accepted job to
   finish exactly once with every spool file still parseable (no torn
   JSON, no lost or duplicated jobs).
3. **identity** — the same sweep through the farm at campaign fan-out
   0, 1 and 4 workers (fresh spool and cache each) must rank
   byte-identically to the in-process engine on the
   ``(digest, result_hash, cost)`` projection.

Emits a ``repro.bench-service/1`` envelope (default
``BENCH_service.json``) with the per-phase numbers.  Exit 0 when every
assertion holds, 1 otherwise.  Stdlib only, like everything else here.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.errors import ServiceError  # noqa: E402
from repro.exploration import mapping_sweep_specs, run_candidates  # noqa: E402
from repro.service import JobRequest, ServiceClient, TERMINAL_STATES  # noqa: E402
from repro.util.fsio import write_json_atomic  # noqa: E402
from repro.util.jsonout import envelope  # noqa: E402

FACTORY = "repro.cases.tutwlan:exploration_factory"


class Farm:
    """One ``repro serve`` subprocess bound to a fresh port."""

    def __init__(self, spool: Path, cache: Path, **flags) -> None:
        self.spool = spool
        self.cache = cache
        args = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--spool",
            str(spool),
            "--cache-dir",
            str(cache),
            "--port",
            "0",
        ]
        for flag, value in flags.items():
            args += [f"--{flag.replace('_', '-')}", str(value)]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        self.proc = subprocess.Popen(
            args,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        banner = self.proc.stdout.readline()
        if "http://" not in banner:
            raise RuntimeError(f"server failed to start: {banner!r}")
        self.url = banner.split("http://", 1)[1].split()[0]
        self.client = ServiceClient(f"http://{self.url}")

    def kill(self) -> None:
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait()

    def stop(self) -> int:
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait()
        return self.proc.returncode


def sweep_request(duration_us: int, limit: int = 2, workers: int = 0) -> JobRequest:
    """A small TUTMAC sweep; ``duration_us`` varies the request digest."""
    return JobRequest(
        specs=tuple(
            mapping_sweep_specs(FACTORY, duration_us=duration_us, limit=limit)
        ),
        workers=workers,
        label=f"load:{duration_us}",
    )


def drain(client: ServiceClient, job_ids, timeout_s: float = 180.0):
    """Wait until every id is terminal; returns {id: record}."""
    deadline = time.monotonic() + timeout_s
    final = {}
    pending = set(job_ids)
    while pending:
        if time.monotonic() > deadline:
            raise RuntimeError(f"jobs never drained: {sorted(pending)[:5]} ...")
        for job_id in sorted(pending):
            record = client.job(job_id)
            if record["state"] in TERMINAL_STATES:
                final[job_id] = record
                pending.discard(job_id)
        time.sleep(0.2)
    return final


def phase_saturation(tmp: Path, submissions: int) -> dict:
    farm = Farm(
        tmp / "sat" / "spool", tmp / "sat" / "cache", pool=2, max_queue=8
    )
    accepted, fast, rejected, failures = [], [], [], []
    lock = threading.Lock()

    def submit(index: int) -> None:
        try:
            record = farm.client.submit(sweep_request(2_000 + index))
            with lock:
                (fast if record["state"] in TERMINAL_STATES else accepted).append(
                    record["id"]
                )
        except ServiceError as exc:
            with lock:
                (rejected if exc.status == 429 else failures).append(str(exc))

    start = time.monotonic()
    threads = [
        threading.Thread(target=submit, args=(index,))
        for index in range(submissions)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    burst_s = time.monotonic() - start

    final = drain(farm.client, accepted)
    drain_s = time.monotonic() - start
    metrics = farm.client.metrics()
    exit_code = farm.stop()

    outcome = {
        "submissions": submissions,
        "accepted": len(accepted),
        "fast_path": len(fast),
        "rejected_429": len(rejected),
        "transport_failures": failures,
        "burst_s": round(burst_s, 3),
        "drain_s": round(drain_s, 3),
        "latency_s": metrics["latency_s"],
        "server_exit": exit_code,
        "ok": (
            not failures
            and len(accepted) + len(fast) + len(rejected) == submissions
            and len(rejected) > 0  # the small queue must actually saturate
            and all(r["state"] == "done" for r in final.values())
            and exit_code == 3
        ),
    }
    return outcome


def spool_is_sane(spool: Path) -> list:
    """Every JSON file under the spool must parse (no torn writes)."""
    torn = []
    for path in spool.rglob("*.json"):
        try:
            json.loads(path.read_text(encoding="utf-8"))
        except ValueError as exc:
            torn.append(f"{path}: {exc}")
    return torn


def phase_kill_restart(tmp: Path, jobs: int) -> dict:
    spool = tmp / "kill" / "spool"
    cache = tmp / "kill" / "cache"
    farm = Farm(spool, cache, pool=2, lease_s=2)
    submitted = [
        farm.client.submit(sweep_request(10_000 + index, limit=3))["id"]
        for index in range(jobs)
    ]
    # let the pool get partway through the backlog, then pull the plug
    time.sleep(1.0)
    farm.kill()

    farm2 = Farm(spool, cache, pool=2, lease_s=2)
    # expired leases from the killed pool are requeued by recovery (and,
    # for leases that outlived the restart, by the claim path's recover)
    time.sleep(2.5)
    farm2.client._call("GET", "/v1/health")
    final = drain(farm2.client, submitted)
    ledger = farm2.client.jobs()
    torn = spool_is_sane(spool)
    farm2.stop()

    ledger_ids = [record["id"] for record in ledger]
    return {
        "jobs": jobs,
        "terminal": len(final),
        "lost": sorted(set(submitted) - set(ledger_ids)),
        "duplicated": sorted(
            job_id for job_id in set(ledger_ids) if ledger_ids.count(job_id) > 1
        ),
        "torn_files": torn,
        "states": sorted(record["state"] for record in final.values()),
        "ok": (
            len(final) == jobs
            and not torn
            and not (set(submitted) - set(ledger_ids))
            and len(ledger_ids) == len(set(ledger_ids))
            and all(record["state"] == "done" for record in final.values())
        ),
    }


def ranking_projection(run_json: dict) -> list:
    return [
        (entry["digest"], entry["result_hash"], entry["cost"])
        for entry in run_json["ranking"]
    ]


def phase_identity(tmp: Path) -> dict:
    specs = mapping_sweep_specs(FACTORY, duration_us=3_000)
    reference = run_candidates(
        list(specs), workers=0, cache_dir=str(tmp / "ref-cache")
    ).to_json_dict()
    matches = {}
    for workers in (0, 1, 4):
        farm = Farm(
            tmp / f"id{workers}" / "spool",
            tmp / f"id{workers}" / "cache",
            pool=1,
        )
        record = farm.client.submit_and_wait(
            JobRequest(specs=tuple(specs), workers=workers)
        )
        remote = farm.client.result(record["id"])["results"]
        farm.stop()
        matches[str(workers)] = ranking_projection(remote) == ranking_projection(
            reference
        )
    return {"workers_match": matches, "ok": all(matches.values())}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_service.json", help="bench envelope path"
    )
    parser.add_argument(
        "--submissions", type=int, default=50, help="phase-1 burst size"
    )
    parser.add_argument(
        "--kill-jobs", type=int, default=12, help="phase-2 backlog size"
    )
    parser.add_argument(
        "--workdir", default=None, help="scratch dir (default: a tempdir)"
    )
    args = parser.parse_args(argv)

    tmp = Path(args.workdir or tempfile.mkdtemp(prefix="repro-load-"))
    results = {}
    for name, phase in (
        ("saturation", lambda: phase_saturation(tmp, args.submissions)),
        ("kill_restart", lambda: phase_kill_restart(tmp, args.kill_jobs)),
        ("identity", lambda: phase_identity(tmp)),
    ):
        start = time.monotonic()
        print(f"[load_service] phase {name} ...", flush=True)
        results[name] = phase()
        results[name]["wall_s"] = round(time.monotonic() - start, 3)
        print(
            f"[load_service] phase {name}: "
            f"{'ok' if results[name]['ok'] else 'FAILED'} "
            f"({results[name]['wall_s']}s)",
            flush=True,
        )

    ok = all(results[name]["ok"] for name in results)
    payload = envelope(
        "bench-service", {"ok": ok, "phases": results}
    )
    write_json_atomic(args.out, payload, indent=2)
    print(f"[load_service] wrote {args.out} (ok={ok})")
    if not ok:
        print(json.dumps(results, indent=2, sort_keys=True), file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
