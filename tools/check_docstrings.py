#!/usr/bin/env python3
"""Public-docstring audit (the CI ``docs`` job).

``python tools/check_docstrings.py <dir> [<dir> ...]`` walks the given
source trees and requires a docstring on

* every module,
* every public class (name not starting with ``_``),
* every public function and method.

Private helpers (leading underscore) and dunder methods are exempt, as
are trivial overrides whose body is a bare ``pass``/``...``.  This is the
pydocstyle-style spot check the observability PR's documentation gate
runs — stdlib-only, so it needs nothing installed.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path


def is_public(name: str) -> bool:
    return not name.startswith("_")


def is_property_companion(node: ast.AST) -> bool:
    """True for ``@x.setter``/``@x.deleter`` defs: the getter documents them."""
    for decorator in getattr(node, "decorator_list", []):
        if (
            isinstance(decorator, ast.Attribute)
            and decorator.attr in ("setter", "deleter")
        ):
            return True
    return False


def trivial(node: ast.AST) -> bool:
    """A body that is only ``pass``/``...`` needs no docstring."""
    body = getattr(node, "body", [])
    if len(body) != 1:
        return False
    only = body[0]
    if isinstance(only, ast.Pass):
        return True
    return isinstance(only, ast.Expr) and isinstance(only.value, ast.Constant)


def missing_in(path: Path) -> list:
    """(line, kind, name) triples of undocumented public definitions."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    problems = []
    if ast.get_docstring(tree) is None:
        problems.append((1, "module", path.stem))
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            if is_public(node.name) and ast.get_docstring(node) is None:
                problems.append((node.lineno, "class", node.name))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not is_public(node.name) or is_property_companion(node):
                continue
            if ast.get_docstring(node) is None and not trivial(node):
                problems.append((node.lineno, "function", node.name))
    return problems


def main(argv: list) -> int:
    roots = [Path(arg) for arg in argv] or [Path("src/repro")]
    failures = 0
    checked = 0
    for root in roots:
        for path in sorted(root.rglob("*.py")):
            checked += 1
            for lineno, kind, name in missing_in(path):
                print(f"{path}:{lineno}: undocumented public {kind} {name!r}")
                failures += 1
    if failures:
        print(f"{failures} undocumented public definition(s) in {checked} file(s)")
        return 1
    print(f"docstrings ok: {checked} file(s) audited")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
