#!/usr/bin/env python3
"""Documentation link checker (the CI ``docs`` job).

Scans ``docs/*.md`` plus the top-level ``README.md`` and verifies that

* every relative markdown link ``[text](path)`` points at a file that
  exists (absolute URLs are skipped);
* every anchor ``[text](path#anchor)`` or ``[text](#anchor)`` matches a
  heading in the target file, using GitHub's heading-slug rules;
* every file path quoted in backticks that looks like a repo path
  (``src/...``, ``tests/...``, ``tools/...``, ``docs/...``) exists.

Exit code 0 when everything resolves, 1 with one line per broken
reference otherwise.  No dependencies beyond the standard library.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown links: [text](target) — target may carry a #anchor suffix.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: Inline code that names a repo file: `src/...py`, `tests/...py`, etc.
CODE_PATH_RE = re.compile(r"`((?:src|tests|tools|docs)/[A-Za-z0-9_./-]+)`")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set:
    """All heading anchors a markdown file exposes."""
    text = path.read_text(encoding="utf-8")
    return {github_slug(match) for match in HEADING_RE.findall(text)}


def check_file(path: Path) -> list:
    """All broken references of one markdown file, as message strings."""
    problems = []
    text = path.read_text(encoding="utf-8")
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, anchor = target.partition("#")
        resolved = (path.parent / base).resolve() if base else path
        if not resolved.exists():
            problems.append(f"{path.relative_to(REPO_ROOT)}: broken link -> {target}")
            continue
        if anchor and resolved.suffix == ".md":
            if anchor not in anchors_of(resolved):
                problems.append(
                    f"{path.relative_to(REPO_ROOT)}: missing anchor -> {target}"
                )
    for code_path in CODE_PATH_RE.findall(text):
        if not (REPO_ROOT / code_path).exists():
            problems.append(
                f"{path.relative_to(REPO_ROOT)}: stale path reference -> {code_path}"
            )
    return problems


def main() -> int:
    files = sorted((REPO_ROOT / "docs").glob("*.md"))
    files.append(REPO_ROOT / "README.md")
    problems = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    checked = len(files)
    if problems:
        print(f"{len(problems)} broken reference(s) across {checked} file(s)")
        return 1
    print(f"docs ok: {checked} file(s), all links, anchors and paths resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
