#!/usr/bin/env python3
"""Bounded fuzz campaign over the synthetic-model generator (CI job).

Runs :func:`repro.genmodel.pipeline.run_pipeline` over a deterministic
seed corpus (default 25 seeds via ``config_for_seed``), a defect-coverage
sweep (every lint rule must fire on its injected construction), and the
A-soundness configurations.  One seed additionally checks 4-worker
ranking invariance on top of the (0, 1) sweep every seed gets.

On an invariant violation the failing configuration is shrunk to the
smallest configuration that still fails the same stage, and both the
original and the shrunk ``repro generate-model`` repro commands are
printed.  Counters land in ``BENCH_fuzz.json`` and every campaign
blueprint is written to the corpus directory for artifact upload.

Usage: ``PYTHONPATH=src python tools/fuzz_smoke.py [--seeds N]
[--corpus DIR] [--bench PATH]``.  Exit code 0 = all invariants held.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import run_lint  # noqa: E402
from repro.errors import InvariantViolation  # noqa: E402
from repro.genmodel import (  # noqa: E402
    GeneratorConfig,
    blueprint_json,
    config_for_seed,
    generate_blueprint,
    generate_model,
    known_defects,
    repro_command,
    run_pipeline,
    shrink_config,
)

BENCH_SCHEMA = "repro.bench-fuzz/1"

#: The one corpus seed that also runs the workers=4 ranking check.
FOUR_WORKER_SEED = 1


def _write_corpus_entry(corpus: Path, name: str, config: GeneratorConfig):
    corpus.mkdir(parents=True, exist_ok=True)
    (corpus / f"{name}.json").write_text(
        blueprint_json(generate_blueprint(config)) + "\n", encoding="ascii"
    )


def _report_failure(violation: InvariantViolation) -> None:
    config = violation.config
    print(f"FAIL [{violation.stage}] {violation}")
    if config is None:
        return
    print(f"  repro: PYTHONPATH=src {repro_command(config)}")

    def still_fails(candidate: GeneratorConfig) -> bool:
        try:
            run_pipeline(candidate, workers=(0, 1))
        except InvariantViolation as exc:
            return exc.stage == violation.stage
        return False

    print("  shrinking...", flush=True)
    shrunk = shrink_config(config, still_fails)
    print(f"  {shrunk.summary()}")
    print(f"  shrunk repro: PYTHONPATH=src {repro_command(shrunk.config)}")


def run_seed_campaign(seeds, corpus: Path, counters: dict) -> int:
    failures = 0
    for seed in seeds:
        config = config_for_seed(seed)
        workers = (0, 1, 4) if seed == FOUR_WORKER_SEED else (0, 1)
        started = time.time()
        try:
            result = run_pipeline(config, workers=workers)
        except InvariantViolation as violation:
            failures += 1
            counters["seeds_failed"].append(seed)
            _report_failure(violation)
            continue
        _write_corpus_entry(corpus, f"seed{seed:03d}", config)
        counters["seeds_passed"] += 1
        counters["events"] += result.get("events", 0)
        counters["candidates"] += result.get("candidates", 0)
        counters["pruned"] += result.get("pruned", 0)
        counters["flagged_checked"] += result.get("flagged_checked", 0)
        print(
            f"seed {seed:3d}: ok  "
            f"events={result.get('events', 0):5d}  "
            f"candidates={result.get('candidates', 0)}  "
            f"workers={'/'.join(map(str, workers))}  "
            f"{time.time() - started:5.1f}s",
            flush=True,
        )
    return failures


def run_defect_sweep(corpus: Path, counters: dict) -> int:
    failures = 0
    for rule in known_defects():
        config = GeneratorConfig(seed=7, inject_defects=(rule,))
        generated = generate_model(config)
        report = run_lint(
            generated.application, generated.platform, generated.mapping
        )
        fired = {finding.rule for finding in report.active}
        if rule in fired:
            counters["defect_rules_fired"] += 1
            _write_corpus_entry(corpus, f"defect_{rule}", config)
        else:
            failures += 1
            counters["defect_rules_missed"].append(rule)
            print(f"FAIL [defect] injected {rule} did not fire")
            print(f"  repro: PYTHONPATH=src {repro_command(config)} --defects {rule}")
    return failures


def run_soundness_sweep(corpus: Path, counters: dict) -> int:
    failures = 0
    for seed in (11, 29):
        config = GeneratorConfig(seed=seed, inject_defects=("A001", "A003"))
        try:
            result = run_pipeline(config, workers=(0,), explore=False)
        except InvariantViolation as violation:
            failures += 1
            _report_failure(violation)
            continue
        counters["flagged_checked"] += result.get("flagged_checked", 0)
        _write_corpus_entry(corpus, f"soundness_seed{seed}", config)
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=25)
    parser.add_argument("--corpus", default="fuzz-corpus")
    parser.add_argument("--bench", default="BENCH_fuzz.json")
    args = parser.parse_args(argv)

    corpus = Path(args.corpus)
    counters = {
        "seeds_requested": args.seeds,
        "seeds_passed": 0,
        "seeds_failed": [],
        "events": 0,
        "candidates": 0,
        "pruned": 0,
        "flagged_checked": 0,
        "defect_rules_fired": 0,
        "defect_rules_missed": [],
    }
    started = time.time()
    failures = run_seed_campaign(range(args.seeds), corpus, counters)
    failures += run_defect_sweep(corpus, counters)
    failures += run_soundness_sweep(corpus, counters)
    wall = time.time() - started

    bench = {
        "schema": BENCH_SCHEMA,
        "campaign": {
            "seeds": args.seeds,
            "seeds_passed": counters["seeds_passed"],
            "seeds_failed": counters["seeds_failed"],
            "events": counters["events"],
            "candidates": counters["candidates"],
            "pruned": counters["pruned"],
            "wall_s": round(wall, 1),
        },
        "defects": {
            "rules": len(known_defects()),
            "fired": counters["defect_rules_fired"],
            "missed": counters["defect_rules_missed"],
        },
        "soundness": {
            "flagged_checked": counters["flagged_checked"],
        },
    }
    Path(args.bench).write_text(
        json.dumps(bench, indent=2, sort_keys=True) + "\n", encoding="ascii"
    )
    print(
        f"\nfuzz smoke: {counters['seeds_passed']}/{args.seeds} seeds, "
        f"{counters['defect_rules_fired']}/{len(known_defects())} defect "
        f"rules fired, {counters['flagged_checked']} flagged transitions "
        f"checked, {wall:.0f}s -> {args.bench}"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
