#!/usr/bin/env python3
"""The paper's case study end to end: TUTMAC on the TUTWLAN terminal.

Reproduces Section 4 of the paper:

1. builds the TUTMAC application (Figures 4-6) and validates it against
   the TUT-Profile design rules;
2. runs the workstation reference simulation and prints the profiling
   report — Table 4;
3. builds the TUTWLAN platform and the Figure 8 mapping, runs the full
   design flow (XMI export, C code generation, platform simulation,
   profiling), and prints where each group executed;
4. renders the Figure 4-8 diagrams into ./tutmac_output/.

Run:  python examples/tutmac_wlan.py
"""

import os

from repro.cases.tutmac import build_tutmac
from repro.cases.tutwlan import build_tutwlan_system
from repro.diagrams import (
    class_diagram_dot,
    class_diagram_text,
    composite_structure_text,
    grouping_diagram_text,
    mapping_diagram_text,
    platform_diagram_text,
)
from repro.flow import run_design_flow
from repro.profiling import profile_run, render_table4a, render_table4b
from repro.simulation import run_reference_simulation
from repro.tutprofile import check_design_rules
from repro.uml import validate_model

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "tutmac_output")

# --------------------------------------------------- 1. model and validation

application = build_tutmac()
print("== TUTMAC application model ==")
print(class_diagram_text(application))
print()
print(grouping_diagram_text(application))
print()

wellformed = validate_model(application.model)
rules = check_design_rules(application.model)
print(f"UML well-formedness: {wellformed.render()}")
print(f"TUT-Profile design rules: {'ok' if rules.ok else rules.render()}")
print()

# ------------------------------------- 2. workstation reference run (Table 4)

print("== Workstation reference simulation (paper Table 4) ==")
reference = run_reference_simulation(application, duration_us=200_000)
data = profile_run(reference, application)
print(render_table4a(data))
print()
print(render_table4b(data))
print()

# --------------------------------- 3. full design flow on the TUTWLAN platform

print("== Design flow on the TUTWLAN terminal platform (Figures 7-8) ==")
application, platform, mapping = build_tutwlan_system()
print(platform_diagram_text(platform))
print()
print(mapping_diagram_text(mapping))
print()

flow = run_design_flow(
    application, platform, mapping, OUTPUT_DIR, duration_us=100_000
)
print(f"artefacts written to {flow.work_directory}:")
for kind, path in sorted(flow.artifacts.items()):
    print(f"  {kind:<8} {os.path.relpath(path, OUTPUT_DIR)}")
print()

platform_data = flow.profiling
print("group execution on the real platform:")
for group in sorted(platform.processing_elements):
    groups = mapping.groups_on(group)
    utilization = flow.simulation.pe_utilization()[group]
    print(
        f"  {group:<13} runs {', '.join(groups) or '(idle)':<22} "
        f"utilisation {utilization:.1%}"
    )
print()
print("bus segment occupancy:")
for name, stats in sorted(flow.simulation.bus_stats.items()):
    print(f"  {name:<14} {stats.transfers:>5} transfers, {stats.words:>6} words")

# -------------------------------------------------------- 4. diagram exports

with open(os.path.join(OUTPUT_DIR, "fig4_class_diagram.dot"), "w") as handle:
    handle.write(class_diagram_dot(application))
with open(os.path.join(OUTPUT_DIR, "fig5_composite.txt"), "w") as handle:
    handle.write(composite_structure_text(application))
print()
print(f"diagrams exported to {OUTPUT_DIR}/")
