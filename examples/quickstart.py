#!/usr/bin/env python3
"""Quickstart: model, map, simulate and profile a tiny system in ~80 lines.

Builds a sensor-filter-logger pipeline with TUT-Profile, maps it onto a
two-processor HIBI platform, simulates 50 ms, and prints the profiling
report (the paper's Table 4 format).

Run:  python examples/quickstart.py
"""

from repro.application import ApplicationModel
from repro.mapping import MappingModel
from repro.platform import PlatformModel, standard_library
from repro.profiling import profile_run, render_report
from repro.simulation import SystemSimulation
from repro.uml import Port

# ----------------------------------------------------------------- application

app = ApplicationModel("SensorPipeline")
app.signal("sample", [("value", "Int32")])
app.signal("filtered", [("value", "Int32")])

sensor = app.component("Sensor")
sensor.add_port(Port("out", required=["sample"]))
machine = app.behavior(sensor)
machine.variable("reading", 0)
machine.state("sampling", initial=True, entry="set_timer(tick, 500);")
machine.on_timer(
    "sampling", "sampling", "tick",
    effect=(
        "reading = (reading * 13 + 7) % 1024;"
        "send sample(reading) via out;"
        "set_timer(tick, 500);"
    ),
    internal=True,
)

filter_component = app.component("Filter")
filter_component.add_port(Port("inp", provided=["sample"]))
filter_component.add_port(Port("out", required=["filtered"]))
machine = app.behavior(filter_component)
machine.variable("smoothed", 0)
machine.state("running", initial=True)
machine.on_signal(
    "running", "running", "sample", params=["value"],
    effect=(
        "smoothed = (smoothed * 3 + value) / 4;"
        "send filtered(smoothed) via out;"
    ),
    internal=True,
)

logger = app.component("Logger")
logger.add_port(Port("inp", provided=["filtered"]))
machine = app.behavior(logger)
machine.variable("count", 0)
machine.state("logging", initial=True)
machine.on_signal(
    "logging", "logging", "filtered", params=["value"],
    effect="count = count + 1;",
    internal=True,
)

app.process(app.top, "sensor1", sensor)
app.process(app.top, "filter1", filter_component)
app.process(app.top, "logger1", logger)
app.connect(app.top, ("sensor1", "out"), ("filter1", "inp"))
app.connect(app.top, ("filter1", "out"), ("logger1", "inp"))

# process grouping: keep the hot sensor->filter pair together
app.group("acquisition")
app.group("storage")
app.assign("sensor1", "acquisition")
app.assign("filter1", "acquisition")
app.assign("logger1", "storage")

# ------------------------------------------------------------------- platform

platform = PlatformModel("DemoBoard", standard_library())
platform.instantiate("cpu1", "NiosCPU")
platform.instantiate("cpu2", "NiosCPU")
platform.segment("bus0", "HIBISegment")
platform.attach("cpu1", "bus0", address=0x100)
platform.attach("cpu2", "bus0", address=0x200)

# -------------------------------------------------------------------- mapping

mapping = MappingModel(app, platform)
mapping.map("acquisition", "cpu1")
mapping.map("storage", "cpu2")

# ------------------------------------------------------- simulate and profile

result = SystemSimulation(app, platform, mapping).run(duration_us=50_000)
data = profile_run(result, app)

print(render_report(data, title="Quickstart profiling report"))
print()
print("PE utilisation:", {k: f"{v:.1%}" for k, v in result.pe_utilization().items()})
print(
    "bus transfers:",
    {name: stats.transfers for name, stats in result.bus_stats.items()},
)
