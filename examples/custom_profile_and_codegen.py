#!/usr/bin/env python3
"""Extending the profile and generating C code (paper §2 extension mechanisms).

Demonstrates the two mechanisms downstream users need most:

1. *second-class extensibility* — defining a domain-specific stereotype
   («DmaController», specialising «PlatformComponent») and serialising a
   model carrying it through XMI;
2. *automatic implementation* — generating the full C project for an
   application (sources, runtime library, Makefile) and, if a C compiler
   is installed, compiling and running it to produce a simulation
   log-file that the Python profiling tool then analyses.

Run:  python examples/custom_profile_and_codegen.py
"""

import os
import shutil
import subprocess
import tempfile

from repro.codegen import generate_project
from repro.profiling import analyze, group_info_from_model
from repro.simulation import parse_log
from repro.tutprofile import fresh_profile
from repro.uml import (
    Class,
    Stereotype,
    TagType,
    model_to_xml,
    xml_to_model,
)

# --------------------------------------------- 1. a custom profile extension

profile = fresh_profile()
dma = Stereotype(
    "DmaController",
    specializes=profile.stereotype("PlatformComponent"),
    description="A DMA engine moving buffers between memories",
)
dma.define_tag("Channels", TagType.INT, "Number of DMA channels", default=2)
dma.define_tag(
    "BurstBytes", TagType.INT, "Maximum burst size in bytes", default=64
)
profile.add_stereotype(dma)

from repro.uml import Model, Package

model = Model("CustomPlatform")
package = Package("Library")
model.add(package)
controller = Class("Dma0")
package.add(controller)
profile.apply(controller, "DmaController", Channels=4, Area=0.8, Power=20.0)

print("== custom stereotype ==")
application_tags = controller.stereotype_application("DmaController")
print(f"  «DmaController» on {controller.name}:")
for tag in ("Channels", "BurstBytes", "Type", "Area", "Power"):
    print(f"    {tag} = {application_tags.get(tag)}")

xml = model_to_xml(model)
recovered = xml_to_model(xml, profiles=[profile])
recovered_controller = recovered.find("Library::Dma0")
assert recovered_controller.tag("DmaController", "Channels") == 4
assert recovered_controller.has_stereotype("PlatformComponent")  # specialisation
print("  XMI round-trip: ok (tags and specialisation preserved)")
print()

# ------------------------------------------------- 2. automatic C generation

from repro.cases.tutmac import build_tutmac

application = build_tutmac()
output_dir = tempfile.mkdtemp(prefix="tutmac_c_")
project = generate_project(application, output_dir, instrument=True)
project.write()

print("== generated C project ==")
print(f"  directory: {output_dir}")
print(f"  files: {len(project.file_names)}, lines: {project.total_lines()}")
for name in project.file_names[:8]:
    print(f"    {name}")
print("    ...")

compiler = shutil.which("cc") or shutil.which("gcc")
if compiler and shutil.which("make"):
    print("\n== compiling and running the generated application ==")
    build = subprocess.run(
        ["make", "-C", output_dir], capture_output=True, text=True
    )
    if build.returncode != 0:
        raise SystemExit(f"build failed:\n{build.stderr}")
    log_path = os.path.join(output_dir, "native.tutlog")
    subprocess.run(
        [os.path.join(output_dir, "app"), "50000", log_path],
        check=True,
        timeout=60,
    )
    log = parse_log(open(log_path).read())
    data = analyze(log, group_info_from_model(application.model))
    print(f"  native run produced {len(log.records)} log records")
    print(
        "  signals between groups (from the NATIVE C execution): "
        f"group2->group1 = {data.signals_between('group2', 'group1')}, "
        f"group2->group4 = {data.signals_between('group2', 'group4')}"
    )
    print("  the generated C and the Python simulator agree on the flow shape")
else:
    print("\n(no C compiler found: skipping the compile-and-run step)")
