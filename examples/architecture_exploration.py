#!/usr/bin/env python3
"""Architecture exploration with profiling feedback (paper §4.4 + future work).

The paper improves TUTMAC "by minimizing the communication between process
groups" using the profiling report.  This example automates the loop:

1. profile the TUTMAC application on the workstation reference;
2. compare grouping strategies (paper manual vs automatic merge vs naive);
3. explore mappings on the TUTWLAN platform: exhaustive search over all
   type-compatible assignments, then the iterative improvement loop from a
   deliberately bad starting point.

Run:  python examples/architecture_exploration.py
"""

import os

from repro.cases.tutmac import PAPER_GROUPING, build_tutmac
from repro.exploration import (
    communication_minimizing_grouping,
    exhaustive_search,
    external_traffic,
    improvement_loop,
    per_process_grouping,
    round_robin_grouping,
)
from repro.profiling import profile_run
from repro.simulation import run_reference_simulation
from repro.util.tables import render_table

# ------------------------------------------------ 1. profile on the reference

application = build_tutmac()
print("profiling TUTMAC on the workstation reference ...")
reference = run_reference_simulation(application, duration_us=100_000)
data = profile_run(reference, application)
print(
    f"  {data.total_cycles()} cycles total, "
    f"{data.external_signals()} signals across group boundaries"
)
print()

# ------------------------------------------------ 2. grouping strategy study

process_types = {
    name: process.process_type()
    for name, process in application.processes.items()
    if not process.is_environment
}
strategies = {
    "paper (Figure 6)": dict(PAPER_GROUPING),
    "auto comm-minimising": communication_minimizing_grouping(
        data, process_types, 4
    ),
    "round-robin": round_robin_grouping(process_types, process_types, 4),
    "per-process": per_process_grouping(process_types, process_types),
}
rows = [
    (name, len(set(assignment.values())), external_traffic(assignment, data))
    for name, assignment in strategies.items()
]
rows.sort(key=lambda row: row[2])
print(
    render_table(
        ("Grouping strategy", "Groups", "Cross-group signals"),
        rows,
        title="Grouping strategies (lower cross-group traffic is better)",
    )
)
print()

# ------------------------------------------------ 3. mapping space exploration

# The importable builder lets the engine fan candidates out over worker
# processes and cache results content-addressed on disk; workers=0 would
# run serially with the identical ranking (see docs/exploration.md).
factory = "repro.cases.tutwlan:exploration_factory"
workers = min(4, os.cpu_count() or 1)

print(
    f"exhaustive mapping search (108 assignments, short simulations, "
    f"{workers} workers) ..."
)
candidates = exhaustive_search(factory, duration_us=10_000, workers=workers)
best, worst = candidates[0], candidates[-1]
print(f"  evaluated {len(candidates)} assignments")
print(f"  best : {best.assignment}  (bus bytes {best.result.bus_bytes})")
print(f"  worst: {worst.assignment}  (bus bytes {worst.result.bus_bytes})")
print()

print("profiling-guided improvement from a deliberately split mapping ...")
history = improvement_loop(
    factory,
    {
        "group1": "processor1",
        "group2": "processor2",
        "group3": "processor3",
        "group4": "accelerator1",
    },
    duration_us=50_000,
)
rows = [
    (
        step,
        candidate.result.bus_bytes,
        f"{candidate.result.max_pe_utilization:.1%}",
        ", ".join(f"{g}->{pe}" for g, pe in sorted(candidate.assignment.items())),
    )
    for step, candidate in enumerate(history)
]
print(
    render_table(
        ("Step", "Bus bytes", "Peak util", "Mapping"),
        rows,
        title="Improvement loop (each accepted move reduces the cost)",
    )
)
improvement = 1 - history[-1].result.bus_bytes / max(1, history[0].result.bus_bytes)
print(f"\nbus traffic reduced by {improvement:.0%} in {len(history) - 1} moves")
