#!/usr/bin/env python3
"""A DSP workload: mapping ProcessType to the right component Type.

TUT-Profile types processes (general / dsp / hardware, Table 2) and
platform components (general / dsp / hw accelerator, Table 3) so the
mapping can match workloads to execution resources.  This example builds
an audio-style pipeline whose filter stage is a ``dsp`` process and
measures the effect of mapping it onto a NiosDSP versus a general NiosCPU
— the quantitative argument behind the paper's component classification.

Run:  python examples/dsp_pipeline.py
"""

from repro.application import ApplicationModel
from repro.mapping import MappingModel
from repro.platform import PlatformModel, standard_library
from repro.profiling import profile_run
from repro.simulation import SystemSimulation
from repro.uml import Port
from repro.util.tables import render_table


def build_pipeline():
    app = ApplicationModel("AudioPipeline")
    app.signal("frame", [("seq", "Int32")], payload_bits=2048)
    app.signal("spectrum", [("seq", "Int32"), ("energy", "Int32")])

    capture = app.component("Capture")
    capture.add_port(Port("out", required=["frame"]))
    machine = app.behavior(capture)
    machine.variable("seq", 0)
    machine.state("run", initial=True, entry="set_timer(t, 1000);")
    machine.on_timer(
        "run", "run", "t", internal=True,
        effect="seq = seq + 1; send frame(seq) via out; set_timer(t, 1000);",
    )

    # the hot stage: an FFT-like butterfly loop, declared a 'dsp' process
    transform = app.component("Transform")
    transform.add_port(Port("inp", provided=["frame"]))
    transform.add_port(Port("out", required=["spectrum"]))
    machine = app.behavior(transform)
    for name in ("i", "j", "acc"):
        machine.variable(name, 0)
    machine.state("run", initial=True)
    machine.on_signal(
        "run", "run", "frame", params=["seq"], internal=True,
        effect=(
            "acc = 0;"
            "i = 0;"
            "while (i < 16) {"
            "  j = 0;"
            "  while (j < 8) {"
            "    acc = acc + ((seq * 3 + i * 5 + j * 7) % 97);"
            "    j = j + 1;"
            "  }"
            "  i = i + 1;"
            "}"
            "send spectrum(seq, acc) via out;"
        ),
    )

    sink = app.component("Sink")
    sink.add_port(Port("inp", provided=["spectrum"]))
    machine = app.behavior(sink)
    machine.variable("frames", 0)
    machine.state("run", initial=True)
    machine.on_signal(
        "run", "run", "spectrum", params=["seq", "energy"], internal=True,
        effect="frames = frames + 1;",
    )

    app.process(app.top, "capture1", capture)
    app.process(app.top, "xform1", transform, process_type="dsp")
    app.process(app.top, "sink1", sink)
    app.connect(app.top, ("capture1", "out"), ("xform1", "inp"))
    app.connect(app.top, ("xform1", "out"), ("sink1", "inp"))
    app.group("io")
    app.group("dsp_work", process_type="dsp")
    app.assign("capture1", "io")
    app.assign("sink1", "io")
    app.assign("xform1", "dsp_work")
    return app


def run_variant(dsp_on_dsp_core):
    app = build_pipeline()
    platform = PlatformModel("AudioBoard", standard_library())
    platform.instantiate("cpu", "NiosCPU")
    platform.instantiate("dsp", "NiosDSP")
    platform.segment("bus0", "HIBISegment")
    platform.attach("cpu", "bus0")
    platform.attach("dsp", "bus0")
    mapping = MappingModel(app, platform)
    mapping.map("io", "cpu")
    mapping.map("dsp_work", "dsp" if dsp_on_dsp_core else "cpu")
    simulation = SystemSimulation(app, platform, mapping)
    result = simulation.run(duration_us=100_000)
    data = profile_run(result, app)
    frames = simulation.executors["sink1"].variables["frames"]
    return data, result, frames


rows = []
for label, on_dsp in (("NiosDSP (matched)", True), ("NiosCPU (fallback)", False)):
    data, result, frames = run_variant(on_dsp)
    pe = "dsp" if on_dsp else "cpu"
    rows.append(
        (
            label,
            data.group_cycles["dsp_work"],
            f"{result.pe_utilization()[pe]:.1%}",
            frames,
        )
    )

print(
    render_table(
        ("Transform mapped to", "dsp_work cycles", "PE utilisation", "frames out"),
        rows,
        title="DSP process on a DSP core vs a general-purpose CPU (100 ms)",
    )
)
matched, fallback = rows[0][1], rows[1][1]
print(
    f"\nthe NiosDSP runs the dsp-typed transform {fallback / matched:.1f}x "
    "cheaper (6 vs 12 cycles per statement, plus it avoids sharing the CPU "
    "with the io group)"
)
