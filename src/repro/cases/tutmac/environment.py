"""TUTMAC environment: user terminal, radio channel, management user.

These are testbench processes outside the system boundary (paper Table 4's
Environment row): a traffic source feeding MSDUs into the MAC, a radio
channel that absorbs transmissions and generates downlink traffic and
measurement responses, and a management user issuing commands.
"""

from __future__ import annotations

from repro.application.model import ApplicationModel
from repro.uml.classifier import Class
from repro.uml.structure import Port
from repro.cases.tutmac import signals as sig
from repro.cases.tutmac.params import TutmacParameters


def build_user_terminal(app: ApplicationModel, params: TutmacParameters) -> Class:
    """The user of the MAC service: sends MSDUs, counts deliveries."""
    component = app.component("UserTerminal")
    component.add_port(
        Port("pMac", required=[sig.MSDU_REQ], provided=[sig.MSDU_IND])
    )
    machine = app.behavior(component)
    machine.variable("seq", 0)
    machine.variable("delivered", 0)
    machine.state(
        "active",
        initial=True,
        entry=f"set_timer(msdu_t, {params.msdu_period_us});",
    )
    machine.on_timer(
        "active",
        "active",
        "msdu_t",
        effect=(
            "seq = seq + 1;"
            f"send msdu_req({params.msdu_bytes}, seq) via pMac;"
            f"set_timer(msdu_t, {params.msdu_period_us});"
        ),
        internal=True,
    )
    machine.on_signal(
        "active",
        "active",
        sig.MSDU_IND,
        params=["length", "rx_seq"],
        effect="delivered = delivered + 1;",
        priority=1,
        internal=True,
    )
    return component


def build_radio_channel(app: ApplicationModel, params: TutmacParameters) -> Class:
    """The radio channel: absorbs PHY frames, generates downlink bursts and
    measurement responses."""
    component = app.component("RadioChannel")
    component.add_port(
        Port(
            "pMac",
            provided=[sig.PHY_TX, sig.MEAS_REQ],
            required=[sig.PHY_RX, sig.MEAS_IND],
        )
    )
    machine = app.behavior(component)
    machine.variable("received", 0)
    machine.variable("dl_seq", 0)
    machine.variable("i", 0)
    machine.state(
        "on_air",
        initial=True,
        entry=f"set_timer(dl_t, {params.downlink_period_us});",
    )
    if params.arq_enabled:
        # ARQ mode: downlink frames carry the FCS that defrag will verify.
        dl_effect = (
            "dl_seq = dl_seq + 1;"
            "i = 0;"
            f"while (i < {params.downlink_fragments} - 1) {{"
            f"  send phy_rx(dl_seq * 16 + i, {params.fragment_bytes}, 0,"
            " crc32(dl_seq * 16 + i)) via pMac;"
            "  i = i + 1;"
            "}"
            f"send phy_rx(dl_seq * 16 + i, {params.fragment_bytes}, 1,"
            " crc32(dl_seq * 16 + i)) via pMac;"
            f"set_timer(dl_t, {params.downlink_period_us});"
        )
    else:
        dl_effect = (
            "dl_seq = dl_seq + 1;"
            "i = 0;"
            f"while (i < {params.downlink_fragments} - 1) {{"
            f"  send phy_rx(dl_seq * 16 + i, {params.fragment_bytes}, 0) via pMac;"
            "  i = i + 1;"
            "}"
            f"send phy_rx(dl_seq * 16 + i, {params.fragment_bytes}, 1) via pMac;"
            f"set_timer(dl_t, {params.downlink_period_us});"
        )
    machine.on_timer(
        "on_air",
        "on_air",
        "dl_t",
        effect=dl_effect,
        internal=True,
    )
    machine.on_signal(
        "on_air",
        "on_air",
        sig.PHY_TX,
        params=["fragid", "length"],
        effect="received = received + 1;",
        priority=1,
        internal=True,
    )
    machine.on_signal(
        "on_air",
        "on_air",
        sig.MEAS_REQ,
        params=["channel"],
        effect="send meas_ind(40 + (rand16() % 60)) via pMac;",
        priority=2,
        internal=True,
    )
    return component


def build_management_user(app: ApplicationModel, params: TutmacParameters) -> Class:
    """The management user: issues periodic configuration commands."""
    component = app.component("ManagementUser")
    component.add_port(
        Port("pMng", required=[sig.MNG_CMD], provided=[sig.MNG_RSP])
    )
    machine = app.behavior(component)
    machine.variable("code", 0)
    machine.variable("acks", 0)
    machine.state(
        "active",
        initial=True,
        entry=f"set_timer(cmd_t, {params.mng_command_period_us});",
    )
    machine.on_timer(
        "active",
        "active",
        "cmd_t",
        effect=(
            "code = code + 1;"
            "send mng_cmd(code) via pMng;"
            f"set_timer(cmd_t, {params.mng_command_period_us});"
        ),
        internal=True,
    )
    machine.on_signal(
        "active",
        "active",
        sig.MNG_RSP,
        params=["rsp_code", "status"],
        effect="acks = acks + 1;",
        priority=1,
        internal=True,
    )
    return component
