"""TUTMAC signal catalogue.

Signal names follow the connector labels of the paper's Figure 5 where
those are legible (user plane, management plane, PHY interface).  Sizes
matter for the bus simulation: data-plane signals carry payload bits, the
control plane is parameter-only.
"""

from __future__ import annotations

from repro.application.model import ApplicationModel
from repro.cases.tutmac.params import TutmacParameters

# user plane
MSDU_REQ = "msdu_req"          # user -> msduRec      (UToUi)
MSDU_IND = "msdu_ind"          # msduDel -> user      (UiToU)
SDU_TX = "sdu_tx"              # msduRec -> frag      (UiToDp)
SDU_RX = "sdu_rx"              # defrag -> msduDel    (DpToUi)
PDU_TX = "pdu_tx"              # frag -> rca          (DpToRCh)
PDU_RX = "pdu_rx"              # rca -> defrag        (RChToDp)
PHY_TX = "phy_tx"              # rca -> phy           (RChToPhy)
PHY_RX = "phy_rx"              # phy -> rca           (PhyToRCh)

# CRC service
FRAG_CRC_REQ = "frag_crc_req"      # frag -> crc
FRAG_CRC_CNF = "frag_crc_cnf"      # crc -> frag
DEFRAG_CRC_REQ = "defrag_crc_req"  # defrag -> crc
DEFRAG_CRC_CNF = "defrag_crc_cnf"  # crc -> defrag

# ARQ (only declared with params.arq_enabled)
PDU_ACK = "pdu_ack"                # rca -> frag: CRC-verified receipt

# management plane
BEACON_REQ = "beacon_req"      # mng -> rca           (MngToRCh)
BEACON_CNF = "beacon_cnf"      # rca -> mng           (RChToMng)
SLOT_CFG = "slot_cfg"          # mng -> rca
FLOW_CTRL = "flow_ctrl"        # mng -> msduRec       (MngToUi)
UI_STATUS = "ui_status"        # msduRec -> mng       (UiToMng)
DP_CFG = "dp_cfg"              # mng -> frag          (MngToDp)
DP_STATUS = "dp_status"        # frag -> mng          (DpToMng)
RMNG_CFG = "rmng_cfg"          # mng -> rmng          (MngToRMng)
RMNG_STATUS = "rmng_status"    # rmng -> mng          (RMngToMng)
CH_LOAD = "ch_load"            # rca -> rmng          (RChToRMng)
MEAS_REQ = "meas_req"          # rmng -> phy          (RMngToPhy)
MEAS_IND = "meas_ind"          # phy -> rmng          (PhyToRMng)
MNG_CMD = "mng_cmd"            # mngUser -> mng       (MngUserToMng)
MNG_RSP = "mng_rsp"            # mng -> mngUser       (MngToMngUser)

ALL_SIGNALS = (
    MSDU_REQ, MSDU_IND, SDU_TX, SDU_RX, PDU_TX, PDU_RX, PHY_TX, PHY_RX,
    FRAG_CRC_REQ, FRAG_CRC_CNF, DEFRAG_CRC_REQ, DEFRAG_CRC_CNF,
    BEACON_REQ, BEACON_CNF, SLOT_CFG, FLOW_CTRL, UI_STATUS, DP_CFG,
    DP_STATUS, RMNG_CFG, RMNG_STATUS, CH_LOAD, MEAS_REQ, MEAS_IND,
    MNG_CMD, MNG_RSP,
)


def declare_signals(app: ApplicationModel, params: TutmacParameters) -> None:
    """Declare every TUTMAC signal on ``app``.

    With ``params.arq_enabled`` the data-plane PDU signals carry a 32-bit
    per-fragment FCS parameter (and payload) and the ``pdu_ack``
    acknowledgement exists; the plain protocol stays byte-identical to the
    paper's model.
    """
    msdu_payload = params.msdu_bytes * 8
    fragment_payload = params.fragment_bytes * 8
    arq = params.arq_enabled
    fcs_bits = 32 if arq else 0
    fcs_param = [("fcs", "Int32")] if arq else []
    app.signal(MSDU_REQ, [("length", "Int32"), ("seq", "Int32")], msdu_payload)
    app.signal(MSDU_IND, [("length", "Int32"), ("seq", "Int32")], msdu_payload)
    app.signal(SDU_TX, [("length", "Int32"), ("seq", "Int32")], msdu_payload)
    app.signal(SDU_RX, [("length", "Int32"), ("seq", "Int32")], msdu_payload)
    app.signal(
        PDU_TX,
        [("fragid", "Int32"), ("length", "Int32")] + fcs_param,
        fragment_payload + fcs_bits,
    )
    app.signal(
        PDU_RX,
        [("fragid", "Int32"), ("length", "Int32"), ("last", "Bit")] + fcs_param,
        fragment_payload + fcs_bits,
    )
    app.signal(PHY_TX, [("fragid", "Int32"), ("length", "Int32")], fragment_payload)
    app.signal(
        PHY_RX,
        [("fragid", "Int32"), ("length", "Int32"), ("last", "Bit")] + fcs_param,
        fragment_payload + fcs_bits,
    )
    app.signal(FRAG_CRC_REQ, [("fragid", "Int32")], fragment_payload)
    app.signal(FRAG_CRC_CNF, [("fragid", "Int32"), ("checksum", "Int32")])
    app.signal(
        DEFRAG_CRC_REQ,
        [("fragid", "Int32")] + fcs_param,
        fragment_payload,
    )
    app.signal(DEFRAG_CRC_CNF, [("fragid", "Int32"), ("ok", "Bit")])
    if arq:
        app.signal(PDU_ACK, [("fragid", "Int32")])
    app.signal(BEACON_REQ, [("seq", "Int32")])
    app.signal(BEACON_CNF, [("seq", "Int32")])
    app.signal(SLOT_CFG, [("first", "Int16"), ("count", "Int16")])
    app.signal(FLOW_CTRL, [("enabled", "Bit")])
    app.signal(UI_STATUS, [("buffered", "Int32")])
    app.signal(DP_CFG, [("fragment_bytes", "Int32")])
    app.signal(DP_STATUS, [("pending", "Int32")])
    app.signal(RMNG_CFG, [("channel", "Int16")])
    app.signal(RMNG_STATUS, [("quality", "Int16")])
    app.signal(CH_LOAD, [("load", "Int32")])
    app.signal(MEAS_REQ, [("channel", "Int16")])
    app.signal(MEAS_IND, [("quality", "Int16")])
    app.signal(MNG_CMD, [("code", "Int32")])
    app.signal(MNG_RSP, [("code", "Int32"), ("status", "Bit")])
