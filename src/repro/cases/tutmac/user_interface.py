"""UserInterface: structural component holding msduRec and msduDel.

Paper Figure 6 groups ``UserInterface::msduRec`` and
``UserInterface::msduDel`` into group2: the user interface is a passive
composite whose functional parts receive MSDUs from the user and deliver
reassembled MSDUs back.
"""

from __future__ import annotations

from repro.application.model import ApplicationModel
from repro.uml.classifier import Class
from repro.uml.structure import Port
from repro.cases.tutmac import signals as sig
from repro.cases.tutmac.params import TutmacParameters


def build_msdu_receiver(app: ApplicationModel, params: TutmacParameters) -> Class:
    """msduRec: accepts MSDUs from the user and forwards SDUs to frag."""
    component = app.component("MsduReceiver", code_memory=4096, data_memory=8192)
    component.add_port(Port("pUser", provided=[sig.MSDU_REQ]))
    component.add_port(Port("pDp", required=[sig.SDU_TX]))
    component.add_port(
        Port("pMng", provided=[sig.FLOW_CTRL], required=[sig.UI_STATUS])
    )
    machine = app.behavior(component)
    machine.variable("enabled", 1)
    machine.variable("buffered", 0)
    machine.variable("received", 0)
    machine.state("ready", initial=True)
    machine.on_signal(
        "ready",
        "ready",
        sig.MSDU_REQ,
        params=["length", "seq"],
        guard="enabled == 1",
        effect=(
            "received = received + 1;"
            "buffered = buffered + 1;"
            "i = 0;"
            "sum = 0;"
            f"while (i < {params.msdu_copy_iterations}) {{"
            "  sum = sum + ((seq + i * 7) % 256);"
            "  i = i + 1;"
            "}"
            "send sdu_tx(length, seq) via pDp;"
            "buffered = buffered - 1;"
        ),
        priority=0,
        internal=True,
    )
    machine.variable("i", 0)
    machine.variable("sum", 0)
    machine.on_signal(
        "ready",
        "ready",
        sig.FLOW_CTRL,
        params=["on"],
        effect="enabled = on; send ui_status(buffered) via pMng;",
        priority=1,
        internal=True,
    )
    return component


def build_msdu_deliverer(app: ApplicationModel, params: TutmacParameters) -> Class:
    """msduDel: delivers reassembled MSDUs to the user."""
    component = app.component("MsduDeliverer", code_memory=2048, data_memory=4096)
    component.add_port(Port("pDp", provided=[sig.SDU_RX]))
    component.add_port(Port("pUser", required=[sig.MSDU_IND]))
    machine = app.behavior(component)
    machine.variable("delivered", 0)
    machine.variable("bytes", 0)
    machine.state("ready", initial=True)
    machine.on_signal(
        "ready",
        "ready",
        sig.SDU_RX,
        params=["length", "seq"],
        effect=(
            "delivered = delivered + 1;"
            "bytes = bytes + length;"
            "send msdu_ind(length, seq) via pUser;"
        ),
        internal=True,
    )
    return component


def build_user_interface(app: ApplicationModel, params: TutmacParameters) -> Class:
    """Assemble the UserInterface structural component (and its processes)."""
    receiver = build_msdu_receiver(app, params)
    deliverer = build_msdu_deliverer(app, params)
    structural = app.structural("UserInterface")
    structural.add_port(Port("UserPort"))
    structural.add_port(Port("DPPort"))
    structural.add_port(Port("MngPort"))
    app.process(structural, "msduRec", receiver)
    app.process(structural, "msduDel", deliverer)
    app.connect(structural, (None, "UserPort"), ("msduRec", "pUser"))
    app.connect(structural, (None, "UserPort"), ("msduDel", "pUser"))
    app.connect(structural, (None, "DPPort"), ("msduRec", "pDp"))
    app.connect(structural, (None, "DPPort"), ("msduDel", "pDp"))
    app.connect(structural, (None, "MngPort"), ("msduRec", "pMng"))
    return structural
