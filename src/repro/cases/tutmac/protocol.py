"""Assembly of the TUTMAC application model (paper Figures 4, 5 and 6).

* Figure 4 — class hierarchy: ``Tutmac_Protocol`` («Application») composed
  of the functional components Management, RadioManagement and
  RadioChannelAccess and the structural components UserInterface and
  DataProcessing.
* Figure 5 — composite structure: parts ``ui``, ``dp``, ``mng``, ``rmng``,
  ``rca`` wired through ports; boundary ports ``pUser``, ``pPhy``,
  ``pMngUser``.
* Figure 6 — process grouping: group1 = {rca, mng, rmng},
  group2 = {msduRec, msduDel, frag}, group3 = {defrag}, group4 = {crc}.
  (Figure 6 shows groups 1-2; groups 3-4 appear in Figure 8 and Table 4.)
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.application.model import ApplicationModel
from repro.uml.structure import Port
from repro.cases.tutmac.params import DEFAULT_PARAMETERS, TutmacParameters
from repro.cases.tutmac.signals import declare_signals
from repro.cases.tutmac.user_interface import build_user_interface
from repro.cases.tutmac.data_processing import build_data_processing
from repro.cases.tutmac.management import build_management
from repro.cases.tutmac.radio_management import build_radio_management
from repro.cases.tutmac.radio_channel_access import build_radio_channel_access
from repro.cases.tutmac.environment import (
    build_management_user,
    build_radio_channel,
    build_user_terminal,
)

APPLICATION_NAME = "Tutmac_Protocol"

#: The paper's process grouping (Figures 6 and 8).
PAPER_GROUPING: Dict[str, str] = {
    "rca": "group1",
    "mng": "group1",
    "rmng": "group1",
    "msduRec": "group2",
    "msduDel": "group2",
    "frag": "group2",
    "defrag": "group3",
    "crc": "group4",
}

GROUP_PROCESS_TYPES: Dict[str, str] = {
    "group1": "general",
    "group2": "general",
    "group3": "general",
    "group4": "hardware",
}


def build_tutmac(
    params: Optional[TutmacParameters] = None,
    grouping: Optional[Dict[str, str]] = None,
    profile=None,
    model=None,
) -> ApplicationModel:
    """Build the complete TUTMAC application model.

    ``grouping`` overrides the paper's process-group assignment (used by
    the grouping ablation); it maps process name to group name.
    """
    if params is None:
        params = DEFAULT_PARAMETERS
    app = ApplicationModel(APPLICATION_NAME, model=model, profile=profile)
    app.params = params  # kept for downstream tooling (codegen, benches)
    declare_signals(app, params)

    # -- components and inner processes (Figure 4) --------------------------
    user_interface = build_user_interface(app, params)
    data_processing = build_data_processing(app, params)
    management = build_management(app, params)
    radio_management = build_radio_management(app, params)
    radio_channel_access = build_radio_channel_access(app, params)

    # -- composite structure of Tutmac_Protocol (Figure 5) --------------------
    top = app.top
    top.add_port(Port("pUser"))
    top.add_port(Port("pPhy"))
    top.add_port(Port("pMngUser"))
    app.part(top, "ui", user_interface)
    app.part(top, "dp", data_processing)
    app.process(top, "mng", management)
    app.process(top, "rmng", radio_management)
    app.process(top, "rca", radio_channel_access, priority=1)

    app.connect(top, (None, "pUser"), ("ui", "UserPort"))
    app.connect(top, ("ui", "DPPort"), ("dp", "UserInterfacePort"))
    app.connect(top, ("ui", "MngPort"), ("mng", "UIPort"))
    app.connect(top, ("dp", "ManagementPort"), ("mng", "DPPort"))
    app.connect(top, ("dp", "ChannelAccessPort"), ("rca", "DataPort"))
    app.connect(top, ("mng", "RChPort"), ("rca", "MngPort"))
    app.connect(top, ("mng", "RMngPort"), ("rmng", "MngPort"))
    app.connect(top, ("rca", "RMngPort"), ("rmng", "RChPort"))
    app.connect(top, (None, "pPhy"), ("rca", "PhyPort"))
    app.connect(top, (None, "pPhy"), ("rmng", "PhyPort"))
    app.connect(top, (None, "pMngUser"), ("mng", "MngUserPort"))

    # -- environment (testbench) -----------------------------------------------
    user_terminal = build_user_terminal(app, params)
    radio_channel = build_radio_channel(app, params)
    management_user = build_management_user(app, params)
    app.environment_process("user", user_terminal)
    app.environment_process("phy", radio_channel)
    app.environment_process("mngUser", management_user)
    app.bind_boundary("pUser", "user", "pMac")
    app.bind_boundary("pPhy", "phy", "pMac")
    app.bind_boundary("pMngUser", "mngUser", "pMng")

    # -- process grouping (Figure 6) ---------------------------------------------
    assignment = dict(PAPER_GROUPING if grouping is None else grouping)
    group_names = sorted(set(assignment.values()))
    for group_name in group_names:
        members = [p for p, g in assignment.items() if g == group_name]
        types = {
            app.find_process(member).process_type() for member in members
        }
        group_type = types.pop() if len(types) == 1 else "general"
        group = app.group(group_name, process_type=group_type)
        if group_type == "hardware":
            # The CRC service group exchanges request/reply traffic with the
            # data-processing groups across the HIBI bridge, which tutlint
            # flags as a potential FIFO deadlock (S004).  It cannot occur
            # here: every client blocks in a waiting state until the _cnf
            # reply arrives, so at most one request per client is in flight.
            group.add_comment(
                "tutlint: disable=S004 -- CRC clients block on the _cnf "
                "reply, so the cross-segment cycle holds at most one "
                "request per client and cannot fill the bridge FIFOs"
            )
    for process_name, group_name in assignment.items():
        app.assign(process_name, group_name)
    return app
