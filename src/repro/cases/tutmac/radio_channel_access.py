"""RadioChannelAccess: the TDMA channel access engine (rca, group1).

This is the dominant process of the paper's profiling report (group1 at
92.1 %): it runs every TDMA slot, scans the slot schedule, transmits
queued PDUs in owned slots, forwards received PDUs upward, and handles
beacon transmission for the management plane.
"""

from __future__ import annotations

from repro.application.model import ApplicationModel
from repro.uml.classifier import Class
from repro.uml.structure import Port
from repro.cases.tutmac import signals as sig
from repro.cases.tutmac.params import TutmacParameters


def build_radio_channel_access(
    app: ApplicationModel, params: TutmacParameters
) -> Class:
    component = app.component(
        "RadioChannelAccess",
        code_memory=16384,
        data_memory=8192,
        real_time="hard",
    )
    if params.arq_enabled:
        component.add_port(
            Port(
                "DataPort",
                provided=[sig.PDU_TX],
                required=[sig.PDU_RX, sig.PDU_ACK],
            )
        )
    else:
        component.add_port(
            Port("DataPort", provided=[sig.PDU_TX], required=[sig.PDU_RX])
        )
    component.add_port(
        Port(
            "MngPort",
            provided=[sig.BEACON_REQ, sig.SLOT_CFG],
            required=[sig.BEACON_CNF],
        )
    )
    component.add_port(Port("RMngPort", required=[sig.CH_LOAD]))
    component.add_port(
        Port("PhyPort", required=[sig.PHY_TX], provided=[sig.PHY_RX])
    )
    machine = app.behavior(component)
    machine.variable("slot", 0)
    machine.variable("txq", 0)
    machine.variable("sent", 0)
    machine.variable("frames", 0)
    machine.variable("acc", 0)
    machine.variable("i", 0)
    machine.variable("first_slot", 0)
    machine.variable("own_slots", params.slots_per_frame)
    machine.variable("rx_count", 0)
    machine.variable("b", 0)
    if params.arq_enabled:
        machine.variable("chk", 0)      # recomputed CRC for FCS verification
        machine.variable("bad_rx", 0)   # uplink PDUs rejected on FCS (stat)
    machine.state(
        "access",
        initial=True,
        entry=f"set_timer(slot_t, {params.slot_time_us});",
    )
    # The per-slot work: scan the slot schedule, compute channel state,
    # transmit one queued PDU when the slot is ours.
    machine.on_timer(
        "access",
        "access",
        "slot_t",
        effect=(
            f"slot = (slot + 1) % {params.slots_per_frame};"
            "acc = 0;"
            "i = 0;"
            f"while (i < {params.slot_scan_iterations}) {{"
            "  acc = acc + ((slot * 7 + i * 13) % 31);"
            "  i = i + 1;"
            "}"
            "if (txq > 0 && slot >= first_slot && slot < first_slot + own_slots) {"
            "  txq = txq - 1;"
            "  sent = sent + 1;"
            f"  send phy_tx(sent, {params.fragment_bytes}) via PhyPort;"
            "}"
            "if (slot == 0) {"
            "  frames = frames + 1;"
            "  send ch_load(acc) via RMngPort;"
            "}"
            f"set_timer(slot_t, {params.slot_time_us});"
        ),
        internal=True,
    )
    if params.arq_enabled:
        # ARQ mode: the uplink PDU carries a per-fragment FCS.  rca is the
        # receiver end of the HIBI transfer, so it recomputes the CRC
        # inline (the forbidden flow group4->group1 keeps it off the crc
        # accelerator) and only CRC-clean PDUs are queued and acknowledged.
        machine.on_signal(
            "access",
            "access",
            sig.PDU_TX,
            params=["fragid", "length", "fcs"],
            effect=(
                "chk = crc32(fragid);"
                "if (chk == fcs) {"
                "  txq = txq + 1;"
                "  send pdu_ack(fragid) via DataPort;"
                "} else {"
                "  bad_rx = bad_rx + 1;"
                "}"
            ),
            priority=1,
            internal=True,
        )
        machine.on_signal(
            "access",
            "access",
            sig.PHY_RX,
            params=["fragid", "length", "last", "fcs"],
            effect=(
                "rx_count = rx_count + 1;"
                "b = (fragid * 5 + length) % 97;"
                "send pdu_rx(fragid, length, last, fcs) via DataPort;"
            ),
            priority=2,
            internal=True,
        )
    else:
        machine.on_signal(
            "access",
            "access",
            sig.PDU_TX,
            params=["fragid", "length"],
            effect="txq = txq + 1;",
            priority=1,
            internal=True,
        )
        machine.on_signal(
            "access",
            "access",
            sig.PHY_RX,
            params=["fragid", "length", "last"],
            effect=(
                "rx_count = rx_count + 1;"
                "b = (fragid * 5 + length) % 97;"
                "send pdu_rx(fragid, length, last) via DataPort;"
            ),
            priority=2,
            internal=True,
        )
    machine.on_signal(
        "access",
        "access",
        sig.BEACON_REQ,
        params=["seq"],
        effect=(
            "b = 0;"
            "i = 0;"
            "while (i < 8) {"
            "  b = b + ((seq + i * 11) % 19);"
            "  i = i + 1;"
            "}"
            "send phy_tx(seq, 40) via PhyPort;"
            "send beacon_cnf(seq) via MngPort;"
        ),
        priority=3,
        internal=True,
    )
    machine.on_signal(
        "access",
        "access",
        sig.SLOT_CFG,
        params=["first", "count"],
        effect="first_slot = first; own_slots = count;",
        priority=4,
        internal=True,
    )
    return component
