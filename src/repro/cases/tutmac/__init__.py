"""The TUTMAC WLAN MAC protocol model (paper Section 4)."""

from repro.cases.tutmac.params import DEFAULT_PARAMETERS, TutmacParameters
from repro.cases.tutmac.protocol import (
    APPLICATION_NAME,
    GROUP_PROCESS_TYPES,
    PAPER_GROUPING,
    build_tutmac,
)

__all__ = [
    "APPLICATION_NAME",
    "DEFAULT_PARAMETERS",
    "GROUP_PROCESS_TYPES",
    "PAPER_GROUPING",
    "TutmacParameters",
    "build_tutmac",
]
