"""Management: connection and configuration management (part mng, group1).

Sends periodic beacons through the channel access, configures the user
interface (flow control), data processing (fragment size) and radio
management (channel), and answers management-user commands.
"""

from __future__ import annotations

from repro.application.model import ApplicationModel
from repro.uml.classifier import Class
from repro.uml.structure import Port
from repro.cases.tutmac import signals as sig
from repro.cases.tutmac.params import TutmacParameters


def build_management(app: ApplicationModel, params: TutmacParameters) -> Class:
    component = app.component(
        "Management", code_memory=12288, data_memory=8192, real_time="soft"
    )
    component.add_port(
        Port("UIPort", required=[sig.FLOW_CTRL], provided=[sig.UI_STATUS])
    )
    component.add_port(
        Port("DPPort", required=[sig.DP_CFG], provided=[sig.DP_STATUS])
    )
    component.add_port(
        Port(
            "RChPort",
            required=[sig.BEACON_REQ, sig.SLOT_CFG],
            provided=[sig.BEACON_CNF],
        )
    )
    component.add_port(
        Port("RMngPort", required=[sig.RMNG_CFG], provided=[sig.RMNG_STATUS])
    )
    component.add_port(
        Port("MngUserPort", provided=[sig.MNG_CMD], required=[sig.MNG_RSP])
    )
    machine = app.behavior(component)
    machine.variable("beacons", 0)
    machine.variable("quality", 100)
    machine.variable("channel", 1)
    machine.variable("commands", 0)
    machine.state(
        "init",
        initial=True,
        entry=(
            "send flow_ctrl(1) via UIPort;"
            f"send dp_cfg({params.fragment_bytes}) via DPPort;"
            "send rmng_cfg(channel) via RMngPort;"
            f"send slot_cfg(0, {params.slots_per_frame}) via RChPort;"
            f"set_timer(beacon_t, {params.beacon_period_us});"
        ),
    )
    machine.state("operational")
    machine.transition("init", "operational")
    machine.on_timer(
        "operational",
        "operational",
        "beacon_t",
        effect=(
            "beacons = beacons + 1;"
            "send beacon_req(beacons) via RChPort;"
            f"set_timer(beacon_t, {params.beacon_period_us});"
        ),
        internal=True,
    )
    machine.on_signal(
        "operational",
        "operational",
        sig.BEACON_CNF,
        params=["seq"],
        priority=1,
        internal=True,
    )
    machine.on_signal(
        "operational",
        "operational",
        sig.RMNG_STATUS,
        params=["q"],
        effect=(
            "quality = q;"
            "if (quality < 20) {"
            "  channel = (channel % 13) + 1;"
            "  send rmng_cfg(channel) via RMngPort;"
            "}"
        ),
        priority=2,
        internal=True,
    )
    machine.on_signal(
        "operational",
        "operational",
        sig.MNG_CMD,
        params=["code"],
        effect=(
            "commands = commands + 1;"
            "send mng_rsp(code, 1) via MngUserPort;"
        ),
        priority=3,
        internal=True,
    )
    machine.on_signal(
        "operational",
        "operational",
        sig.UI_STATUS,
        params=["buffered"],
        priority=4,
        internal=True,
    )
    machine.on_signal(
        "operational",
        "operational",
        sig.DP_STATUS,
        params=["pending"],
        priority=5,
        internal=True,
    )
    return component
