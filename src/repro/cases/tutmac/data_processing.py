"""DataProcessing: structural component holding frag, defrag and crc.

The uplink path fragments MSDUs into fixed-size PDUs and checksums each
SDU; the downlink path reassembles PDUs and verifies the checksum.  The
``crc`` process is a ``hardware``-type process: on the TUTWLAN platform it
is mapped to the CRC-32 accelerator (paper Section 4, Figure 8 group4).
"""

from __future__ import annotations

from repro.application.model import ApplicationModel
from repro.uml.classifier import Class
from repro.uml.structure import Port
from repro.cases.tutmac import signals as sig
from repro.cases.tutmac.params import TutmacParameters


def build_fragmenter(app: ApplicationModel, params: TutmacParameters) -> Class:
    """frag: splits SDUs into PDUs; one CRC request per SDU (the FCS).

    With ``params.arq_enabled`` each PDU carries a per-fragment FCS and
    frag runs a window-per-SDU ARQ: fragments stay in an ``outstanding``
    bitmask until rca's CRC-verified ``pdu_ack`` clears them; a timer
    retransmits unacknowledged fragments with exponential backoff and
    bounded retries, then degrades gracefully (``gave_up`` counts
    abandoned windows).
    """
    component = app.component("Fragmenter", code_memory=6144, data_memory=16384)
    component.add_port(Port("pUi", provided=[sig.SDU_TX]))
    component.add_port(
        Port("pCrc", required=[sig.FRAG_CRC_REQ], provided=[sig.FRAG_CRC_CNF])
    )
    if params.arq_enabled:
        component.add_port(
            Port("pRca", required=[sig.PDU_TX], provided=[sig.PDU_ACK])
        )
    else:
        component.add_port(Port("pRca", required=[sig.PDU_TX]))
    component.add_port(
        Port("pMng", provided=[sig.DP_CFG], required=[sig.DP_STATUS])
    )
    machine = app.behavior(component)
    machine.variable("frag_bytes", params.fragment_bytes)
    machine.variable("pending", 0)
    machine.variable("sdus", 0)
    machine.variable("i", 0)
    machine.variable("n", 0)
    machine.variable("hdr", 0)
    machine.variable("j", 0)
    if params.arq_enabled:
        machine.variable("outstanding", 0)   # bitmask of unacked fragments
        machine.variable("win_seq", 0)       # SDU sequence of the open window
        machine.variable("win_n", 0)         # fragments in the open window
        machine.variable("retries", 0)
        machine.variable("timeout", params.arq_timeout_us)
        machine.variable("fcs", 0)
        machine.variable("retx", 0)          # fragments retransmitted (stat)
        machine.variable("gave_up", 0)       # windows abandoned (stat)
        machine.variable("acked", 0)         # acks received (stat)
    machine.state("ready", initial=True)
    if params.arq_enabled:
        sdu_tx_effect = (
            "sdus = sdus + 1;"
            "n = (length + frag_bytes - 1) / frag_bytes;"
            # a still-open window is abandoned: graceful degradation, not
            # unbounded buffering
            "if (outstanding != 0) {"
            "  gave_up = gave_up + 1;"
            "  outstanding = 0;"
            "  reset_timer(arq_t);"
            "}"
            "i = 0;"
            "while (i < n) {"
            "  hdr = 0;"
            "  j = 0;"
            f"  while (j < {params.frag_header_iterations}) {{"
            "    hdr = hdr + ((seq * 16 + i + j * 5) % 64);"
            "    j = j + 1;"
            "  }"
            "  fcs = crc32(seq * 16 + i);"
            "  send pdu_tx(seq * 16 + i, frag_bytes, fcs) via pRca;"
            "  outstanding = outstanding | (1 << i);"
            "  i = i + 1;"
            "}"
            "win_seq = seq;"
            "win_n = n;"
            "retries = 0;"
            f"timeout = {params.arq_timeout_us};"
            "set_timer(arq_t, timeout);"
            "pending = pending + n;"
            "send frag_crc_req(seq) via pCrc;"
        )
    else:
        sdu_tx_effect = (
            "sdus = sdus + 1;"
            "n = (length + frag_bytes - 1) / frag_bytes;"
            "i = 0;"
            "while (i < n) {"
            "  hdr = 0;"
            "  j = 0;"
            f"  while (j < {params.frag_header_iterations}) {{"
            "    hdr = hdr + ((seq * 16 + i + j * 5) % 64);"
            "    j = j + 1;"
            "  }"
            "  send pdu_tx(seq * 16 + i, frag_bytes) via pRca;"
            "  i = i + 1;"
            "}"
            "pending = pending + n;"
            "send frag_crc_req(seq) via pCrc;"
        )
    machine.on_signal(
        "ready",
        "ready",
        sig.SDU_TX,
        params=["length", "seq"],
        effect=sdu_tx_effect,
        internal=True,
    )
    machine.on_signal(
        "ready",
        "ready",
        sig.FRAG_CRC_CNF,
        params=["fragid", "checksum"],
        effect="pending = pending - 1;",
        priority=1,
        internal=True,
    )
    machine.on_signal(
        "ready",
        "ready",
        sig.DP_CFG,
        params=["bytes_cfg"],
        effect="frag_bytes = bytes_cfg; send dp_status(pending) via pMng;",
        priority=2,
        internal=True,
    )
    if params.arq_enabled:
        machine.on_signal(
            "ready",
            "ready",
            sig.PDU_ACK,
            params=["ackid"],
            effect=(
                "acked = acked + 1;"
                "if (ackid / 16 == win_seq) {"
                "  outstanding = outstanding & ~(1 << (ackid % 16));"
                "  if (outstanding == 0) {"
                "    reset_timer(arq_t);"
                "  }"
                "}"
            ),
            priority=3,
            internal=True,
        )
        machine.on_timer(
            "ready",
            "ready",
            "arq_t",
            effect=(
                "if (outstanding != 0) {"
                f"  if (retries < {params.arq_max_retries}) {{"
                "    retries = retries + 1;"
                "    i = 0;"
                "    while (i < win_n) {"
                "      if ((outstanding & (1 << i)) != 0) {"
                "        fcs = crc32(win_seq * 16 + i);"
                "        send pdu_tx(win_seq * 16 + i, frag_bytes, fcs) via pRca;"
                "        retx = retx + 1;"
                "      }"
                "      i = i + 1;"
                "    }"
                f"    timeout = timeout * {params.arq_backoff_factor};"
                "    set_timer(arq_t, timeout);"
                "  } else {"
                "    gave_up = gave_up + 1;"
                "    outstanding = 0;"
                "  }"
                "}"
            ),
            internal=True,
        )
    return component


def build_defragmenter(app: ApplicationModel, params: TutmacParameters) -> Class:
    """defrag: reassembles downlink PDUs into SDUs, verifying the FCS.

    With ``params.arq_enabled`` every received PDU is CRC-checked
    individually through the crc service (``defrag_crc_req(fragid, fcs)``);
    the SDU is delivered only when all outstanding checks return and none
    failed, so injected bus corruption is *detected* rather than silently
    forwarded to the user plane.
    """
    component = app.component("Defragmenter", code_memory=6144, data_memory=16384)
    component.add_port(Port("pRca", provided=[sig.PDU_RX]))
    component.add_port(
        Port("pCrc", required=[sig.DEFRAG_CRC_REQ], provided=[sig.DEFRAG_CRC_CNF])
    )
    component.add_port(Port("pUi", required=[sig.SDU_RX]))
    machine = app.behavior(component)
    machine.variable("total_len", 0)
    machine.variable("fragments", 0)
    machine.variable("seq", 0)
    machine.variable("k", 0)
    machine.variable("hdr", 0)
    if params.arq_enabled:
        machine.variable("checks_out", 0)   # CRC confirmations still pending
        machine.variable("good", 0)         # fragments that passed the FCS
        machine.variable("bad", 0)          # fragments that failed the FCS
        machine.variable("bad_total", 0)    # cumulative failed checks (stat)
        machine.variable("last_flag", 0)    # saw the SDU-final fragment
    machine.state("ready", initial=True)
    if params.arq_enabled:
        machine.on_signal(
            "ready",
            "ready",
            sig.PDU_RX,
            params=["fragid", "length", "last", "fcs"],
            effect=(
                "fragments = fragments + 1;"
                "total_len = total_len + length;"
                "k = 0;"
                f"while (k < {params.defrag_parse_iterations}) {{"
                "  hdr = hdr + ((fragid + k * 3) % 32);"
                "  k = k + 1;"
                "}"
                "if (last == 1) {"
                "  last_flag = 1;"
                "}"
                "checks_out = checks_out + 1;"
                "send defrag_crc_req(fragid, fcs) via pCrc;"
            ),
            internal=True,
        )
        machine.on_signal(
            "ready",
            "ready",
            sig.DEFRAG_CRC_CNF,
            params=["fragid", "ok"],
            effect=(
                "checks_out = checks_out - 1;"
                "if (ok == 1) {"
                "  good = good + 1;"
                "} else {"
                "  bad = bad + 1;"
                "  bad_total = bad_total + 1;"
                "}"
                "if (last_flag == 1 && checks_out == 0) {"
                "  if (bad == 0) {"
                "    send sdu_rx(total_len, seq) via pUi;"
                "  }"
                "  total_len = 0;"
                "  fragments = 0;"
                "  good = 0;"
                "  bad = 0;"
                "  last_flag = 0;"
                "  seq = seq + 1;"
                "}"
            ),
            priority=1,
            internal=True,
        )
    else:
        machine.on_signal(
            "ready",
            "ready",
            sig.PDU_RX,
            params=["fragid", "length", "last"],
            effect=(
                "fragments = fragments + 1;"
                "total_len = total_len + length;"
                "k = 0;"
                f"while (k < {params.defrag_parse_iterations}) {{"
                "  hdr = hdr + ((fragid + k * 3) % 32);"
                "  k = k + 1;"
                "}"
                "if (last == 1) {"
                "  send defrag_crc_req(seq) via pCrc;"
                "}"
            ),
            internal=True,
        )
        machine.on_signal(
            "ready",
            "ready",
            sig.DEFRAG_CRC_CNF,
            params=["fragid", "ok"],
            effect=(
                "if (ok == 1) {"
                "  send sdu_rx(total_len, seq) via pUi;"
                "}"
                "total_len = 0;"
                "fragments = 0;"
                "seq = seq + 1;"
            ),
            priority=1,
            internal=True,
        )
    return component


def build_crc(app: ApplicationModel, params: TutmacParameters) -> Class:
    """crc: the CRC-32 service process (ProcessType ``hardware``).

    One request computes one CRC-32 via the action-language builtin — a
    single statement, which is why the paper's group4 consumes only ~0.2 %
    of execution time despite sitting on every SDU.
    """
    component = app.component("CrcService", code_memory=1024, data_memory=1024)
    component.add_port(
        Port(
            "pReq",
            provided=[sig.FRAG_CRC_REQ, sig.DEFRAG_CRC_REQ],
            required=[sig.FRAG_CRC_CNF, sig.DEFRAG_CRC_CNF],
        )
    )
    machine = app.behavior(component)
    machine.variable("computed", 0)
    machine.variable("c", 0)
    machine.state("ready", initial=True)
    machine.on_signal(
        "ready",
        "ready",
        sig.FRAG_CRC_REQ,
        params=["fragid"],
        effect=(
            "c = crc32(fragid);"
            "computed = computed + 1;"
            "send frag_crc_cnf(fragid, c) via pReq;"
        ),
        internal=True,
    )
    if params.arq_enabled:
        # ARQ mode: compare the carried FCS against the recomputed CRC so
        # corrupted fragments come back with ok == 0.
        machine.on_signal(
            "ready",
            "ready",
            sig.DEFRAG_CRC_REQ,
            params=["fragid", "fcs"],
            effect=(
                "c = crc32(fragid);"
                "computed = computed + 1;"
                "send defrag_crc_cnf(fragid, (c == fcs) ? 1 : 0) via pReq;"
            ),
            priority=1,
            internal=True,
        )
    else:
        machine.on_signal(
            "ready",
            "ready",
            sig.DEFRAG_CRC_REQ,
            params=["fragid"],
            effect=(
                "c = crc32(fragid);"
                "computed = computed + 1;"
                "send defrag_crc_cnf(fragid, 1) via pReq;"
            ),
            priority=1,
            internal=True,
        )
    return component


def build_data_processing(app: ApplicationModel, params: TutmacParameters) -> Class:
    """Assemble the DataProcessing structural component."""
    fragmenter = build_fragmenter(app, params)
    defragmenter = build_defragmenter(app, params)
    crc = build_crc(app, params)
    structural = app.structural("DataProcessing")
    structural.add_port(Port("UserInterfacePort"))
    structural.add_port(Port("ChannelAccessPort"))
    structural.add_port(Port("ManagementPort"))
    app.process(structural, "frag", fragmenter)
    app.process(structural, "defrag", defragmenter)
    app.process(structural, "crc", crc, process_type="hardware")
    app.connect(structural, (None, "UserInterfacePort"), ("frag", "pUi"))
    app.connect(structural, (None, "UserInterfacePort"), ("defrag", "pUi"))
    app.connect(structural, (None, "ChannelAccessPort"), ("frag", "pRca"))
    app.connect(structural, (None, "ChannelAccessPort"), ("defrag", "pRca"))
    app.connect(structural, (None, "ManagementPort"), ("frag", "pMng"))
    app.connect(structural, ("frag", "pCrc"), ("crc", "pReq"))
    app.connect(structural, ("defrag", "pCrc"), ("crc", "pReq"))
    return structural
