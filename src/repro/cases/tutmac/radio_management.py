"""RadioManagement: radio quality measurement and channel control (rmng, group1)."""

from __future__ import annotations

from repro.application.model import ApplicationModel
from repro.uml.classifier import Class
from repro.uml.structure import Port
from repro.cases.tutmac import signals as sig
from repro.cases.tutmac.params import TutmacParameters


def build_radio_management(app: ApplicationModel, params: TutmacParameters) -> Class:
    component = app.component(
        "RadioManagement", code_memory=8192, data_memory=4096, real_time="soft"
    )
    component.add_port(
        Port("MngPort", provided=[sig.RMNG_CFG], required=[sig.RMNG_STATUS])
    )
    component.add_port(
        Port("PhyPort", required=[sig.MEAS_REQ], provided=[sig.MEAS_IND])
    )
    component.add_port(Port("RChPort", provided=[sig.CH_LOAD]))
    machine = app.behavior(component)
    machine.variable("channel", 1)
    machine.variable("quality", 100)
    machine.variable("load_avg", 0)
    machine.variable("measurements", 0)
    machine.state(
        "measuring",
        initial=True,
        entry=f"set_timer(meas_t, {params.measurement_period_us});",
    )
    machine.on_timer(
        "measuring",
        "measuring",
        "meas_t",
        effect=(
            "send meas_req(channel) via PhyPort;"
            f"set_timer(meas_t, {params.measurement_period_us});"
        ),
        internal=True,
    )
    machine.on_signal(
        "measuring",
        "measuring",
        sig.MEAS_IND,
        params=["q"],
        effect=(
            "measurements = measurements + 1;"
            "quality = (quality * 3 + q) / 4;"
            "send rmng_status(quality) via MngPort;"
        ),
        priority=1,
        internal=True,
    )
    machine.on_signal(
        "measuring",
        "measuring",
        sig.RMNG_CFG,
        params=["ch"],
        effect="channel = ch;",
        priority=2,
        internal=True,
    )
    machine.on_signal(
        "measuring",
        "measuring",
        sig.CH_LOAD,
        params=["load"],
        effect="load_avg = (load_avg * 7 + load) / 8;",
        priority=3,
        internal=True,
    )
    return component
