"""The TUTWLAN terminal platform and the paper's mapping (Figures 7 and 8).

Figure 7: four processing elements — three NiosCPU-class processors and a
CRC-32 hardware accelerator — on two HIBI segments joined by a bridge
segment (``processor1``/``processor2`` on ``hibisegment1``;
``processor3``/``accelerator1`` on ``hibisegment2``).

Figure 8: group1 and group3 map to processor1, group2 to processor2, and
group4 to accelerator1.  (Processor3 is left free — the paper's figure
maps no group onto it, keeping it available for architecture exploration.)
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.application.model import ApplicationModel
from repro.mapping.model import MappingModel
from repro.platform.library import PlatformLibrary, standard_library
from repro.platform.model import PlatformModel

PLATFORM_NAME = "TutwlanTerminal"

#: The paper's mapping (Figure 8).
PAPER_MAPPING: Dict[str, str] = {
    "group1": "processor1",
    "group2": "processor2",
    "group3": "processor1",
    "group4": "accelerator1",
}


def build_tutwlan_platform(
    library: Optional[PlatformLibrary] = None,
    profile=None,
    model=None,
) -> PlatformModel:
    """Build the TUTWLAN terminal platform of Figure 7."""
    if library is None:
        library = standard_library(profile=profile)
    platform = PlatformModel(PLATFORM_NAME, library, profile=profile, model=model)
    platform.instantiate("processor1", "NiosCPU", priority=0)
    platform.instantiate("processor2", "NiosCPU", priority=1)
    platform.instantiate("processor3", "NiosCPU", priority=2)
    platform.instantiate("accelerator1", "CRCAccelerator", priority=3)
    platform.segment("hibisegment1", "HIBISegment")
    platform.segment("hibisegment2", "HIBISegment")
    platform.segment("bridge", "HIBIBridgeSegment")
    platform.attach("processor1", "hibisegment1", address=0x100, priority_class=0)
    platform.attach("processor2", "hibisegment1", address=0x200, priority_class=1)
    platform.attach("processor3", "hibisegment2", address=0x300, priority_class=0)
    platform.attach("accelerator1", "hibisegment2", address=0x400, priority_class=1)
    platform.attach("hibisegment1", "bridge", address=0x500)
    platform.attach("hibisegment2", "bridge", address=0x600)
    return platform


def build_paper_mapping(
    application: ApplicationModel,
    platform: PlatformModel,
    mapping_overrides: Optional[Dict[str, str]] = None,
    view_name: str = "MappingView",
) -> MappingModel:
    """Map the TUTMAC groups onto the platform as in Figure 8.

    ``mapping_overrides`` replaces entries of the paper's assignment
    (used by the mapping ablation benchmarks).
    """
    assignment = dict(PAPER_MAPPING)
    if mapping_overrides:
        assignment.update(mapping_overrides)
    mapping = MappingModel(application, platform, view_name=view_name)
    for group_name, pe_name in assignment.items():
        if group_name in application.groups and application.processes_in(group_name):
            mapping.map(group_name, pe_name)
    # Map any extra groups (custom groupings) onto processor1 by default.
    for group_name in application.groups:
        if group_name not in assignment and application.processes_in(group_name):
            target = (
                "accelerator1"
                if application.groups[group_name].tag(
                    "ProcessGroup", "ProcessType"
                )
                == "hardware"
                else "processor1"
            )
            mapping.map(group_name, target)
    return mapping


def exploration_factory(grouping: Optional[Dict[str, str]] = None, arq: bool = False):
    """Engine builder: a fresh TUTMAC ``(application, platform)`` pair.

    This is the importable ``"repro.cases.tutwlan:exploration_factory"``
    builder that :class:`repro.exploration.CandidateSpec` references, so
    worker processes can rebuild the system without pickling UML objects.
    ``grouping`` overrides the paper's process-group assignment; ``arq``
    enables the retransmitting protocol variant used by fault campaigns.
    """
    from repro.cases.tutmac import TutmacParameters, build_tutmac

    params = TutmacParameters(arq_enabled=True) if arq else None
    application = build_tutmac(params=params, grouping=grouping)
    platform = build_tutwlan_platform(
        profile=application.profile, model=application.model
    )
    return application, platform


def build_tutwlan_system(
    params=None,
    grouping: Optional[Dict[str, str]] = None,
    mapping_overrides: Optional[Dict[str, str]] = None,
):
    """Convenience: the full TUTMAC-on-TUTWLAN system.

    Returns ``(application, platform, mapping)`` sharing one UML model so a
    single XMI document carries all three design views.
    """
    from repro.cases.tutmac import build_tutmac

    application = build_tutmac(params=params, grouping=grouping)
    platform = build_tutwlan_platform(
        profile=application.profile, model=application.model
    )
    mapping = build_paper_mapping(
        application, platform, mapping_overrides=mapping_overrides
    )
    return application, platform, mapping
