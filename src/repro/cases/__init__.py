"""Case studies: the TUTMAC WLAN protocol on the TUTWLAN terminal platform."""
