"""Deterministic, seeded fault models for the system simulator.

The paper's TUTMAC case study carries a CRC-32 hardware accelerator whose
whole purpose is detecting corrupted frames, yet a perfect simulation never
produces one.  A :class:`FaultPlan` turns the simulator into a robustness
testbed: it decides — reproducibly, from a seed — which HIBI transfers
corrupt or vanish, which signals are lost or duplicated at dispatch, and
when processing elements stall or crash.

Design constraints:

* **Bit-reproducible.**  Every decision is a pure function of
  ``(seed, site, kernel clock, draw counter)`` — no global RNG state, no
  wall-clock.  Two runs with the same seed produce byte-identical logs.
* **Zero-cost when disabled.**  A plan with all rates zero and no windows
  reports :attr:`FaultPlan.enabled` ``False`` and the simulator treats it
  exactly like ``faults=None``: no draws, no extra records, identical
  output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import SimulationError

# fault kinds (the ``kind=`` vocabulary of FAULT log records)
BUS_CORRUPT = "bus-corrupt"
BUS_DROP = "bus-drop"
SIGNAL_DROP = "signal-drop"
SIGNAL_DUP = "signal-dup"
PE_STALL = "pe-stall"
PE_CRASH = "pe-crash"

FAULT_KINDS = (BUS_CORRUPT, BUS_DROP, SIGNAL_DROP, SIGNAL_DUP, PE_STALL, PE_CRASH)

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def _mix64(value: int) -> int:
    """SplitMix64 finalizer: avalanche a 64-bit value."""
    value &= _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def _hash_site(site: str) -> int:
    """FNV-1a over the site label — deterministic across processes, unlike
    the builtin ``hash`` (PYTHONHASHSEED randomises string hashing)."""
    state = 0xCBF29CE484222325
    for byte in site.encode("utf-8"):
        state = ((state ^ byte) * 0x100000001B3) & _MASK64
    return state


class FaultRng:
    """Counter-based PRNG keyed off the kernel's integer-picosecond clock.

    Each draw hashes ``(seed, site, time_ps, counter)`` so decisions are
    independent of one another yet fully determined by the seed and the
    (deterministic) simulation event order.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._counter = 0

    def _draw(self, site: str, time_ps: int) -> int:
        self._counter += 1
        state = _mix64(self.seed ^ _GOLDEN)
        state = _mix64(state ^ _hash_site(site))
        state = _mix64(state ^ (time_ps & _MASK64))
        return _mix64(state ^ (self._counter * _GOLDEN))

    def uniform(self, site: str, time_ps: int) -> float:
        """A float in [0, 1)."""
        return self._draw(site, time_ps) / float(1 << 64)

    def randint(self, site: str, time_ps: int, bound: int) -> int:
        """An int in [0, bound)."""
        if bound <= 0:
            raise SimulationError("randint bound must be positive")
        return self._draw(site, time_ps) % bound

    def state_dict(self) -> dict:
        """The stream position: seed plus the number of draws taken."""
        return {"seed": self.seed, "draws": self._counter}

    def load_state_dict(self, state: dict) -> None:
        """Restore the stream position; the seed must match this RNG's."""
        if int(state["seed"]) != self.seed:
            raise SimulationError(
                f"cannot restore RNG seeded {self.seed} from a snapshot "
                f"seeded {state['seed']}"
            )
        self._counter = int(state["draws"])


@dataclass(frozen=True)
class PEWindow:
    """A stall or crash window on one processing element.

    * ``pe-stall`` — steps started inside the window take
      ``stall_factor`` times longer (the PE is throttled, e.g. by DMA
      contention or thermal limits).
    * ``pe-crash`` — activations arriving inside the window are lost (the
      PE is down; it recovers at ``end_ps``).
    """

    pe: str
    start_ps: int
    end_ps: int
    kind: str = PE_STALL
    stall_factor: int = 4

    def __post_init__(self) -> None:
        if self.kind not in (PE_STALL, PE_CRASH):
            raise SimulationError(f"unknown PE window kind {self.kind!r}")
        if self.end_ps <= self.start_ps:
            raise SimulationError("PE window must have positive length")
        if self.kind == PE_STALL and self.stall_factor < 1:
            raise SimulationError("stall_factor must be >= 1")

    def covers(self, time_ps: int) -> bool:
        return self.start_ps <= time_ps < self.end_ps


@dataclass
class FaultStats:
    """Injection/recovery accounting, the report's reliability ledger.

    ``detected`` counts injections on CRC-protected signals (the receiver's
    FCS check is guaranteed to flag them, and lost protected frames are
    flagged by the sender's retransmission timeout).  ``recovered`` counts
    protected injections whose frame identity was later delivered clean —
    i.e. the model's retransmission actually repaired the loss.
    """

    injected_by_kind: Dict[str, int] = field(default_factory=dict)
    detected: int = 0
    recovered: int = 0

    @property
    def injected(self) -> int:
        return sum(self.injected_by_kind.values())

    @property
    def residual(self) -> int:
        return self.detected - self.recovered

    def count(self, kind: str) -> int:
        return self.injected_by_kind.get(kind, 0)

    def note_injected(self, kind: str) -> None:
        self.injected_by_kind[kind] = self.injected_by_kind.get(kind, 0) + 1

    def as_meta(self, seed: int) -> Dict[str, str]:
        """Log-file META entries carrying the ledger into profiling."""
        kinds = ",".join(
            f"{kind}:{count}"
            for kind, count in sorted(self.injected_by_kind.items())
        )
        return {
            "fault_seed": str(seed),
            "fault_injected": str(self.injected),
            "fault_detected": str(self.detected),
            "fault_recovered": str(self.recovered),
            "fault_residual": str(self.residual),
            "fault_kinds": kinds or "-",
        }


class FaultPlan:
    """A reproducible schedule of fault injections.

    Rates are per-opportunity probabilities: ``bus_*`` rates apply to each
    eligible bus transfer, ``signal_*`` rates to each dispatched signal.
    ``corruptible_signals``/``droppable_signals`` restrict which signals
    are eligible (``None`` means all).  ``protected_signals`` are the ones
    the application guards with an FCS — injections on them count as
    *detected* and are identity-tracked so a later clean delivery of the
    same frame counts as *recovered*.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        bus_corrupt_rate: float = 0.0,
        bus_drop_rate: float = 0.0,
        signal_drop_rate: float = 0.0,
        signal_dup_rate: float = 0.0,
        corruptible_signals: Optional[Iterable[str]] = None,
        droppable_signals: Optional[Iterable[str]] = None,
        protected_signals: Iterable[str] = (),
        pe_windows: Iterable[PEWindow] = (),
    ) -> None:
        for name, rate in (
            ("bus_corrupt_rate", bus_corrupt_rate),
            ("bus_drop_rate", bus_drop_rate),
            ("signal_drop_rate", signal_drop_rate),
            ("signal_dup_rate", signal_dup_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise SimulationError(f"{name} must be in [0, 1], got {rate}")
        self.seed = int(seed)
        self.rng = FaultRng(seed)
        self.bus_corrupt_rate = bus_corrupt_rate
        self.bus_drop_rate = bus_drop_rate
        self.signal_drop_rate = signal_drop_rate
        self.signal_dup_rate = signal_dup_rate
        self.corruptible_signals = (
            frozenset(corruptible_signals) if corruptible_signals is not None else None
        )
        self.droppable_signals = (
            frozenset(droppable_signals) if droppable_signals is not None else None
        )
        self.protected_signals = frozenset(protected_signals)
        self.pe_windows: Tuple[PEWindow, ...] = tuple(pe_windows)
        self.stats = FaultStats()
        # (signal, frame identity) -> number of losses awaiting clean
        # re-delivery.  A count, not a flag: a frame whose retransmission is
        # itself lost has two detected events, both repaired by the one
        # clean delivery that finally lands.
        self._pending: Dict[Tuple[str, int], int] = {}

    # ------------------------------------------------------------------
    # enablement
    # ------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """False when the plan can never inject anything (zero-cost mode)."""
        return bool(
            self.bus_corrupt_rate > 0.0
            or self.bus_drop_rate > 0.0
            or self.signal_drop_rate > 0.0
            or self.signal_dup_rate > 0.0
            or self.pe_windows
        )

    # ------------------------------------------------------------------
    # checkpoint/restore protocol
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """The plan's mutable state: RNG position, ledger, pending losses.

        The plan *parameters* (rates, signal sets, windows) are not part
        of the snapshot — the caller reconstructs an identical plan and
        restores this state onto it, which :meth:`load_state_dict` checks
        via the RNG seed.
        """
        return {
            "rng": self.rng.state_dict(),
            "stats": {
                "injected_by_kind": dict(self.stats.injected_by_kind),
                "detected": self.stats.detected,
                "recovered": self.stats.recovered,
            },
            "pending": [
                [signal, identity, count]
                for (signal, identity), count in sorted(self._pending.items())
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore mutable plan state so fault streams resume mid-sequence."""
        self.rng.load_state_dict(state["rng"])
        stats = state["stats"]
        self.stats.injected_by_kind = dict(stats["injected_by_kind"])
        self.stats.detected = int(stats["detected"])
        self.stats.recovered = int(stats["recovered"])
        self._pending = {
            (signal, identity): count
            for signal, identity, count in state["pending"]
        }

    # ------------------------------------------------------------------
    # bus transfer faults
    # ------------------------------------------------------------------

    def _eligible(self, signal: str, restriction: Optional[frozenset]) -> bool:
        return restriction is None or signal in restriction

    def apply_bus_fault(
        self,
        signal: str,
        args: Tuple[int, ...],
        source_pe: str,
        target_pe: str,
        time_ps: int,
    ) -> Tuple[Optional[str], Tuple[int, ...]]:
        """Decide the fate of one bus transfer.

        Returns ``(kind, args)``: ``(None, args)`` for a clean transfer,
        ``(BUS_DROP, args)`` for a lost frame, or ``(BUS_CORRUPT,
        corrupted_args)`` with one bit of the frame identity flipped.
        """
        site = f"bus:{source_pe}->{target_pe}:{signal}"
        if self.bus_drop_rate > 0.0 and self._eligible(signal, self.droppable_signals):
            if self.rng.uniform(site + ":drop", time_ps) < self.bus_drop_rate:
                self._record_loss(BUS_DROP, signal, args)
                return BUS_DROP, args
        if self.bus_corrupt_rate > 0.0 and self._eligible(
            signal, self.corruptible_signals
        ):
            if self.rng.uniform(site + ":corrupt", time_ps) < self.bus_corrupt_rate:
                self._record_loss(BUS_CORRUPT, signal, args)
                return BUS_CORRUPT, self._corrupt(signal, args, time_ps)
        return None, args

    def _corrupt(
        self, signal: str, args: Tuple[int, ...], time_ps: int
    ) -> Tuple[int, ...]:
        """Flip one bit of the frame identity (the first argument)."""
        if not args:
            return args
        bit = self.rng.randint(f"corrupt-bit:{signal}", time_ps, 16)
        return (args[0] ^ (1 << bit),) + tuple(args[1:])

    # ------------------------------------------------------------------
    # dispatch faults
    # ------------------------------------------------------------------

    def apply_dispatch_fault(
        self,
        signal: str,
        args: Tuple[int, ...],
        sender: str,
        receiver: str,
        time_ps: int,
    ) -> Optional[str]:
        """Decide the fate of one signal dispatch: drop, duplicate or None."""
        site = f"sig:{sender}->{receiver}:{signal}"
        if self.signal_drop_rate > 0.0 and self._eligible(
            signal, self.droppable_signals
        ):
            if self.rng.uniform(site + ":drop", time_ps) < self.signal_drop_rate:
                self._record_loss(SIGNAL_DROP, signal, args)
                return SIGNAL_DROP
        if self.signal_dup_rate > 0.0:
            if self.rng.uniform(site + ":dup", time_ps) < self.signal_dup_rate:
                self.stats.note_injected(SIGNAL_DUP)
                return SIGNAL_DUP
        return None

    # ------------------------------------------------------------------
    # PE windows
    # ------------------------------------------------------------------

    def pe_crashed(self, pe: str, time_ps: int) -> bool:
        for window in self.pe_windows:
            if window.kind == PE_CRASH and window.pe == pe and window.covers(time_ps):
                self.stats.note_injected(PE_CRASH)
                return True
        return False

    def stall_duration_ps(self, pe: str, time_ps: int, duration_ps: int) -> int:
        """Stretch a step's duration when the PE is inside a stall window."""
        for window in self.pe_windows:
            if window.kind == PE_STALL and window.pe == pe and window.covers(time_ps):
                self.stats.note_injected(PE_STALL)
                return duration_ps * window.stall_factor
        return duration_ps

    # ------------------------------------------------------------------
    # detection / recovery accounting
    # ------------------------------------------------------------------

    def _record_loss(self, kind: str, signal: str, args: Tuple[int, ...]) -> None:
        self.stats.note_injected(kind)
        if signal in self.protected_signals and args:
            self.stats.detected += 1
            key = (signal, args[0])
            self._pending[key] = self._pending.get(key, 0) + 1

    def note_delivery(self, signal: str, args: Tuple[int, ...]) -> None:
        """A clean delivery: if it re-delivers a lost frame, that's recovery."""
        if not self._pending or not args:
            return
        count = self._pending.pop((signal, args[0]), 0)
        self.stats.recovered += count

    @property
    def pending_losses(self) -> int:
        """Protected injections not yet repaired by a clean re-delivery."""
        return sum(self._pending.values())
