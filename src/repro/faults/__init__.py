"""Deterministic fault injection: seeded fault plans and canned campaigns.

See :mod:`repro.faults.plan` for the fault models and
:mod:`repro.faults.campaign` for the TUTMAC robustness campaign.
Documentation: ``docs/fault_injection.md``.
"""

from repro.faults.plan import (
    BUS_CORRUPT,
    BUS_DROP,
    FAULT_KINDS,
    FaultPlan,
    FaultRng,
    FaultStats,
    PE_CRASH,
    PE_STALL,
    PEWindow,
    SIGNAL_DROP,
    SIGNAL_DUP,
)
from repro.faults.campaign import (
    CampaignResult,
    build_campaign_plan,
    campaign_fault_spec,
    fault_sweep_specs,
    run_fault_campaign,
    run_fault_sweep,
)

__all__ = [
    "BUS_CORRUPT",
    "BUS_DROP",
    "CampaignResult",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultRng",
    "FaultStats",
    "PEWindow",
    "PE_CRASH",
    "PE_STALL",
    "SIGNAL_DROP",
    "SIGNAL_DUP",
    "build_campaign_plan",
    "campaign_fault_spec",
    "fault_sweep_specs",
    "run_fault_campaign",
    "run_fault_sweep",
]
