"""Canned fault campaigns: seeded robustness runs of the TUTMAC system.

A campaign runs the TUTMAC-on-TUTWLAN system (paper Figures 7-8) with the
ARQ-enabled protocol variant and a :class:`~repro.faults.plan.FaultPlan`
targeting the uplink data path: ``pdu_tx`` frames crossing the HIBI bus
from ``frag`` (processor2) to ``rca`` (processor1) corrupt or vanish, the
receiver's CRC-32 check flags them, and ``frag``'s retransmission timer
repairs the loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.faults.plan import FaultPlan, FaultStats
from repro.profiling.analysis import ProfilingData


@dataclass
class CampaignResult:
    """Everything one fault campaign produced."""

    simulation: "SimulationResult"
    plan: FaultPlan
    profiling: ProfilingData

    @property
    def stats(self) -> FaultStats:
        return self.plan.stats

    @property
    def recovery_ratio(self) -> float:
        if self.stats.detected == 0:
            return 1.0
        return self.stats.recovered / self.stats.detected


def build_campaign_plan(
    seed: int = 1,
    fault_rate: float = 0.05,
    drop_rate: Optional[float] = None,
) -> FaultPlan:
    """The standard TUTMAC uplink fault plan (corruption + frame loss)."""
    from repro.cases.tutmac import signals as sig

    return FaultPlan(
        seed=seed,
        bus_corrupt_rate=fault_rate,
        bus_drop_rate=fault_rate / 2 if drop_rate is None else drop_rate,
        corruptible_signals={sig.PDU_TX},
        droppable_signals={sig.PDU_TX},
        protected_signals={sig.PDU_TX},
    )


def run_fault_campaign(
    seed: int = 1,
    fault_rate: float = 0.05,
    duration_us: int = 200_000,
    drop_rate: Optional[float] = None,
    params=None,
) -> CampaignResult:
    """Run one seeded fault campaign; same seed ⇒ byte-identical log."""
    from repro.cases.tutmac import TutmacParameters
    from repro.cases.tutwlan import build_tutwlan_system
    from repro.profiling import profile_run
    from repro.simulation.system import SystemSimulation

    if params is None:
        params = TutmacParameters(arq_enabled=True)
    application, platform, mapping = build_tutwlan_system(params=params)
    plan = build_campaign_plan(seed=seed, fault_rate=fault_rate, drop_rate=drop_rate)
    simulation = SystemSimulation(application, platform, mapping, faults=plan)
    result = simulation.run(duration_us)
    profiling = profile_run(result, application)
    return CampaignResult(simulation=result, plan=plan, profiling=profiling)


# ----------------------------------------------------------------------
# multi-seed sweeps on the exploration engine
# ----------------------------------------------------------------------


def campaign_fault_spec(
    seed: int = 1,
    fault_rate: float = 0.05,
    drop_rate: Optional[float] = None,
):
    """The picklable :class:`repro.exploration.FaultSpec` twin of
    :func:`build_campaign_plan` (same rates, signals and seed)."""
    from repro.cases.tutmac import signals as sig
    from repro.exploration.spec import FaultSpec

    return FaultSpec(
        seed=seed,
        bus_corrupt_rate=fault_rate,
        bus_drop_rate=fault_rate / 2 if drop_rate is None else drop_rate,
        corruptible_signals=(sig.PDU_TX,),
        droppable_signals=(sig.PDU_TX,),
        protected_signals=(sig.PDU_TX,),
    )


def fault_sweep_specs(
    seeds: Iterable[int],
    fault_rate: float = 0.05,
    duration_us: int = 50_000,
    drop_rate: Optional[float] = None,
) -> List["CandidateSpec"]:
    """One candidate per seed: ARQ-enabled TUTMAC on the paper mapping."""
    from repro.cases.tutwlan import PAPER_MAPPING
    from repro.exploration.spec import CandidateSpec

    return [
        CandidateSpec.make(
            "repro.cases.tutwlan:exploration_factory",
            dict(PAPER_MAPPING),
            duration_us=duration_us,
            faults=campaign_fault_spec(
                seed=seed, fault_rate=fault_rate, drop_rate=drop_rate
            ),
            arq=True,
            label=f"seed={seed}",
        )
        for seed in seeds
    ]


def run_fault_sweep(
    seeds: Sequence[int] = (1, 2, 3, 4),
    fault_rate: float = 0.05,
    duration_us: int = 50_000,
    drop_rate: Optional[float] = None,
    workers: int = 0,
    cache_dir: Optional[str] = None,
    progress=None,
) -> "ExplorationRun":
    """Run one seeded campaign per seed on the exploration engine.

    Each seed becomes an independent, cacheable candidate; ``workers=N``
    fans the simulations out over N processes, ``workers=0`` runs them
    serially with identical results.  Fault ledgers land in the
    per-candidate :class:`~repro.exploration.EvaluationResult` fields
    (``fault_injected``/``fault_detected``/``fault_recovered``).
    """
    from repro.exploration.engine import run_candidates

    specs = fault_sweep_specs(
        seeds, fault_rate=fault_rate, duration_us=duration_us, drop_rate=drop_rate
    )
    return run_candidates(
        specs, workers=workers, cache_dir=cache_dir, progress=progress
    )
