"""Deterministic checkpoint/restore for the simulation stack.

The simulator's components each implement a ``state_dict()`` /
``load_state_dict()`` pair (kernel clock and counters, EFSM executor
state, PE ready queues and in-flight steps, bus arbiters and transfers,
log/trace/fault streams).  Pending kernel events are never pickled — they
hold raw callbacks — but are re-materialized by their owning component
with their *original* sequence numbers, so a resumed run dispatches the
exact same event order and produces byte-identical artefacts.

See ``docs/checkpoint.md`` for the protocol, the store layout and the
resume semantics; the CLI surface is ``repro checkpoint
inspect|diff|resume`` plus ``--checkpoint-dir`` on ``flow`` and
``explore``.
"""

from repro.checkpoint.policy import (
    CheckpointPolicy,
    EveryEvents,
    EveryInterval,
)
from repro.checkpoint.runner import Checkpointer, resume_simulation
from repro.checkpoint.state import canonical_json, diff_states, state_hash
from repro.checkpoint.store import SNAPSHOT_KIND, CheckpointStore, Snapshot

__all__ = [
    "CheckpointPolicy",
    "Checkpointer",
    "CheckpointStore",
    "EveryEvents",
    "EveryInterval",
    "SNAPSHOT_KIND",
    "Snapshot",
    "canonical_json",
    "diff_states",
    "resume_simulation",
    "state_hash",
]
