"""State hashing and structural diffing for simulation snapshots.

Every snapshot carries a hash of its state dict, computed over the
canonical JSON rendering (sorted keys, no whitespace variance).  The hash
serves two purposes:

* **content addressing** — the store embeds a hash prefix in snapshot
  file names, so identical states dedupe naturally;
* **divergence detection** — a resumed run re-reaching a checkpointed
  instant must reproduce the recorded hash exactly; a mismatch means the
  replay diverged (model drift, version skew, nondeterminism) and is
  reported with the structural diff of the two states.
"""

from __future__ import annotations

import hashlib
import json
from typing import List


def canonical_json(state: object) -> str:
    """The canonical (sorted-key, compact) JSON text of ``state``."""
    return json.dumps(state, sort_keys=True, separators=(",", ":"))


def state_hash(state: object) -> str:
    """SHA-256 hex digest of the canonical JSON rendering of ``state``."""
    return hashlib.sha256(canonical_json(state).encode("utf-8")).hexdigest()


def diff_states(a: object, b: object, path: str = "$") -> List[str]:
    """Human-readable paths where two JSON-safe states differ.

    Returns one line per difference, deepest mismatching node only (a
    differing leaf is reported once, not at every ancestor).  Used by
    ``repro checkpoint diff`` and by divergence errors.
    """
    if type(a) is not type(b):
        return [f"{path}: type {type(a).__name__} != {type(b).__name__}"]
    if isinstance(a, dict):
        lines: List[str] = []
        for key in sorted(set(a) | set(b)):
            if key not in a:
                lines.append(f"{path}.{key}: only in second")
            elif key not in b:
                lines.append(f"{path}.{key}: only in first")
            else:
                lines.extend(diff_states(a[key], b[key], f"{path}.{key}"))
        return lines
    if isinstance(a, list):
        lines = []
        if len(a) != len(b):
            lines.append(f"{path}: length {len(a)} != {len(b)}")
        for index, (left, right) in enumerate(zip(a, b)):
            lines.extend(diff_states(left, right, f"{path}[{index}]"))
        return lines
    if a != b:
        return [f"{path}: {a!r} != {b!r}"]
    return []
