"""Content-hashed, atomically-written snapshot store.

Layout (one directory per checkpoint *tag*, one JSON file per snapshot)::

    <root>/
      <tag>/
        000000000042-1f2e3d4c5b6a.json
        000000000137-a0b1c2d3e4f5.json

The file name embeds the snapshot's position (events dispatched, zero
padded so names sort chronologically) and a prefix of its state hash, so
re-saving an identical state is a no-op and re-saving a *different* state
at an already-checkpointed position is caught as replay divergence.

Files are written via a temp file + ``os.replace`` so a crash mid-write
never leaves a truncated snapshot; readers either see the old complete
file or the new complete file.  Snapshot payloads use the shared CLI JSON
envelope (``repro.checkpoint/1``) — ``repro checkpoint inspect`` and any
external tool can dispatch on the ``schema`` field.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

from repro.errors import CheckpointError
from repro.checkpoint.state import diff_states, state_hash
from repro.util.fsio import ensure_parent
from repro.util.jsonout import envelope, schema_id

#: Payload kind of snapshot files (full schema id: ``repro.checkpoint/1``).
SNAPSHOT_KIND = "checkpoint"

#: Hex digits of the state hash embedded in snapshot file names.
_NAME_HASH_LEN = 12


@dataclass(frozen=True)
class Snapshot:
    """One captured simulation state, ready to persist or restore."""

    tag: str
    now_ps: int
    dispatched: int
    state: dict
    digest: str

    @staticmethod
    def capture(tag: str, simulation) -> "Snapshot":
        """Snapshot ``simulation`` (a :class:`SystemSimulation`) now."""
        state = simulation.state_dict()
        return Snapshot(
            tag=tag,
            now_ps=simulation.kernel.now_ps,
            dispatched=simulation.kernel.dispatched,
            state=state,
            digest=state_hash(state),
        )

    @property
    def position(self) -> tuple:
        """Chronological sort key: (simulated time, events dispatched)."""
        return (self.now_ps, self.dispatched)


class CheckpointStore:
    """Reads and writes :class:`Snapshot` files under one root directory."""

    def __init__(self, root) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def save(self, snapshot: Snapshot) -> Path:
        """Persist ``snapshot`` atomically; returns the snapshot path.

        Saving the same state twice is a cheap no-op.  Saving a
        *different* state at an already-checkpointed position raises
        :class:`CheckpointError` — the replay diverged from the run that
        wrote the original snapshot."""
        directory = self.root / snapshot.tag
        stem = f"{snapshot.dispatched:012d}"
        path = directory / f"{stem}-{snapshot.digest[:_NAME_HASH_LEN]}.json"
        if path.exists():
            return path
        rivals = sorted(directory.glob(f"{stem}-*.json"))
        if rivals:
            original = self.load(rivals[0])
            lines = diff_states(original.state, snapshot.state)
            preview = "; ".join(lines[:5]) or "(hash-only difference)"
            raise CheckpointError(
                f"replay diverged at {snapshot.dispatched} events "
                f"({snapshot.now_ps} ps): snapshot hash {snapshot.digest[:12]} "
                f"!= recorded {original.digest[:12]}; first differences: "
                f"{preview}"
            )
        payload = envelope(
            SNAPSHOT_KIND,
            {
                "tag": snapshot.tag,
                "now_ps": snapshot.now_ps,
                "dispatched": snapshot.dispatched,
                "state_hash": snapshot.digest,
                "state": snapshot.state,
            },
        )
        ensure_parent(path)
        handle = tempfile.NamedTemporaryFile(
            "w",
            encoding="utf-8",
            dir=str(directory),
            prefix=f".{stem}.",
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        return path

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def load(self, path) -> Snapshot:
        """Read one snapshot file; strict — any defect raises.

        Rejects non-JSON files, envelopes of the wrong kind, snapshots
        written by a *newer* schema version, and payloads whose recorded
        state hash does not match the state (bit rot / hand edits)."""
        path = Path(path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise CheckpointError(f"cannot read snapshot {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"snapshot {path} is not valid JSON: {exc}"
            ) from exc
        schema = payload.get("schema") if isinstance(payload, dict) else None
        if schema != schema_id(SNAPSHOT_KIND):
            raise CheckpointError(
                f"snapshot {path} has schema {schema!r}, expected "
                f"{schema_id(SNAPSHOT_KIND)!r} (newer or foreign files are "
                "not restorable)"
            )
        results = payload.get("results")
        try:
            snapshot = Snapshot(
                tag=results["tag"],
                now_ps=int(results["now_ps"]),
                dispatched=int(results["dispatched"]),
                state=results["state"],
                digest=results["state_hash"],
            )
        except (TypeError, KeyError) as exc:
            raise CheckpointError(
                f"snapshot {path} is missing field {exc}"
            ) from exc
        actual = state_hash(snapshot.state)
        if actual != snapshot.digest:
            raise CheckpointError(
                f"snapshot {path} is corrupt: state hashes to {actual[:12]}, "
                f"file records {snapshot.digest[:12]}"
            )
        return snapshot

    def list(self, tag: Optional[str] = None) -> List[Path]:
        """Snapshot paths, oldest first (all tags unless one is given)."""
        if tag is not None:
            directories = [self.root / tag]
        elif self.root.is_dir():
            directories = sorted(d for d in self.root.iterdir() if d.is_dir())
        else:
            directories = []
        paths: List[Path] = []
        for directory in directories:
            if directory.is_dir():
                paths.extend(sorted(directory.glob("*.json")))
        return paths

    def latest(self, tag: str) -> Optional[Snapshot]:
        """The most advanced restorable snapshot for ``tag`` (or None).

        Unreadable files are skipped — a half-written or corrupted
        snapshot must not block resuming from the previous good one."""
        best: Optional[Snapshot] = None
        for path in self.list(tag):
            try:
                snapshot = self.load(path)
            except CheckpointError:
                continue
            if best is None or snapshot.position > best.position:
                best = snapshot
        return best

    def prune(self, tag: str) -> int:
        """Delete every snapshot of ``tag``; returns the number removed."""
        removed = 0
        for path in self.list(tag):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        directory = self.root / tag
        try:
            directory.rmdir()
        except OSError:
            pass
        return removed
