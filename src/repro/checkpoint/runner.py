"""Attaching checkpointing to a simulation, and restoring from a snapshot.

The :class:`Checkpointer` hangs off the kernel's ``after_event`` hook — a
quiescent point between dispatches where no callback is half-executed, so
``SystemSimulation.state_dict()`` captures a consistent world.  A run
without a checkpointer pays nothing beyond the hook's ``None`` check
(the same zero-cost contract the tracer and fault plan follow).

For tests and the CI resume-smoke job the checkpointer can also *cause*
the interruption it exists to survive: give it an event budget and it
takes a final snapshot when the budget runs out, then raises
:class:`~repro.errors.SimulationInterrupted` carrying that snapshot.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import CheckpointError, SimulationInterrupted
from repro.checkpoint.policy import CheckpointPolicy
from repro.checkpoint.state import diff_states, state_hash
from repro.checkpoint.store import CheckpointStore, Snapshot
from repro.observability.tracer import KERNEL_TRACK


class Checkpointer:
    """Takes policy-driven snapshots of one simulation while it runs."""

    def __init__(
        self,
        store: CheckpointStore,
        policy: Optional[CheckpointPolicy] = None,
        tag: str = "run",
        interrupt_after_events: Optional[int] = None,
    ) -> None:
        if interrupt_after_events is not None and interrupt_after_events <= 0:
            raise CheckpointError(
                "interrupt budget must be positive, got "
                f"{interrupt_after_events}"
            )
        self.store = store
        self.policy = policy
        self.tag = tag
        self.interrupt_after_events = interrupt_after_events
        self.simulation = None
        self.taken = 0
        self.paths: List = []
        self._events_since_attach = 0

    @property
    def events_seen(self) -> int:
        """Events dispatched since :meth:`attach` (the interrupt budget's
        unit, so callers can carry a cumulative budget across runs)."""
        return self._events_since_attach

    def attach(self, simulation) -> None:
        """Install this checkpointer on ``simulation``'s kernel hook."""
        if simulation.kernel.after_event is not None:
            raise CheckpointError(
                "the simulation kernel already has an after_event consumer"
            )
        self.simulation = simulation
        self._events_since_attach = 0
        if self.policy is not None:
            self.policy.reset(
                simulation.kernel.now_ps, simulation.kernel.dispatched
            )
        simulation.kernel.after_event = self._after_event

    def detach(self) -> None:
        """Remove the kernel hook (the simulation runs on unobserved)."""
        if self.simulation is not None:
            self.simulation.kernel.after_event = None
            self.simulation = None

    def take(self, mark: bool = True) -> Snapshot:
        """Snapshot the attached simulation now and persist it.

        With ``mark`` (the default) a ``checkpoint`` trace instant is
        emitted *before* capturing, so the snapshot itself contains the
        mark — an uninterrupted run and a run resumed from this snapshot
        then carry identical trace streams.  Interrupt-budget snapshots
        pass ``mark=False``: the reference run never checkpoints there,
        so a mark would break byte-identity of the resumed trace."""
        if self.simulation is None:
            raise CheckpointError("checkpointer is not attached")
        tracer = self.simulation.tracer
        if mark and tracer is not None:
            tracer.instant(
                "checkpoint",
                KERNEL_TRACK,
                category="checkpoint",
                dispatched=self.simulation.kernel.dispatched,
            )
        snapshot = Snapshot.capture(self.tag, self.simulation)
        self.paths.append(self.store.save(snapshot))
        self.taken += 1
        return snapshot

    def _after_event(self) -> None:
        kernel = self.simulation.kernel
        due = self.policy is not None and self.policy.due(
            kernel.now_ps, kernel.dispatched
        )
        interrupt = False
        if self.interrupt_after_events is not None:
            self._events_since_attach += 1
            if self._events_since_attach >= self.interrupt_after_events:
                interrupt = True
        if not due and not interrupt:
            return
        snapshot = self.take(mark=due)
        if interrupt:
            self.interrupt_after_events = None  # one interruption per budget
            raise SimulationInterrupted(
                f"interrupted after {self._events_since_attach} events "
                f"(snapshot at {snapshot.dispatched} dispatched, "
                f"{snapshot.now_ps} ps)",
                snapshot=snapshot,
            )


def resume_simulation(simulation, snapshot: Snapshot) -> None:
    """Restore ``snapshot`` onto a freshly-built simulation, verified.

    After loading, the restored world is re-serialized and its hash
    compared against the snapshot's — restore infidelity (model drift,
    schema skew) is caught here, before a single event replays, instead
    of surfacing later as silently divergent artefacts."""
    simulation.load_state_dict(snapshot.state)
    restored = simulation.state_dict()
    digest = state_hash(restored)
    if digest != snapshot.digest:
        lines = diff_states(snapshot.state, restored)
        preview = "; ".join(lines[:5]) or "(hash-only difference)"
        raise CheckpointError(
            "restored state does not reproduce the snapshot (hash "
            f"{digest[:12]} != {snapshot.digest[:12]}); the simulation was "
            "likely built from a different model or configuration; first "
            f"differences: {preview}"
        )
