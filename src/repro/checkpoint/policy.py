"""When to checkpoint: event-count and simulated-time policies.

Policies are deliberately derived from the kernel's *cumulative* counters
(lifetime dispatch count, absolute clock) rather than from wall time or
per-run counters, so a resumed run takes its remaining checkpoints at
exactly the instants the uninterrupted run would have — a requirement for
byte-identical replay when checkpoint instants leave marks in the trace.
"""

from __future__ import annotations

from repro.errors import CheckpointError
from repro.simulation.kernel import PS_PER_US


class CheckpointPolicy:
    """Decides, after each dispatched event, whether a snapshot is due."""

    def reset(self, now_ps: int, dispatched: int) -> None:
        """(Re)anchor the policy at the attach point (fresh or restored)."""

    def due(self, now_ps: int, dispatched: int) -> bool:
        """True when a snapshot should be taken at this quiescent point."""
        raise NotImplementedError


class EveryEvents(CheckpointPolicy):
    """Checkpoint every ``events`` dispatched kernel events.

    Stateless: due whenever the lifetime dispatch count hits a multiple
    of the stride, which makes it trivially resume-invariant."""

    def __init__(self, events: int) -> None:
        if events <= 0:
            raise CheckpointError(
                f"checkpoint stride must be positive, got {events}"
            )
        self.events = events

    def due(self, now_ps: int, dispatched: int) -> bool:
        """Due at every multiple of the stride (lifetime dispatch count)."""
        return dispatched % self.events == 0


class EveryInterval(CheckpointPolicy):
    """Checkpoint when simulated time crosses an ``interval_us`` boundary.

    Buckets are absolute (``now_ps // interval``), so a restored run skips
    the boundaries the original already checkpointed and fires at the same
    remaining boundaries.  At most one snapshot is taken per bucket even
    when many events fall inside it."""

    def __init__(self, interval_us: int) -> None:
        if interval_us <= 0:
            raise CheckpointError(
                f"checkpoint interval must be positive, got {interval_us} us"
            )
        self.interval_ps = interval_us * PS_PER_US
        self._last_bucket = 0

    def reset(self, now_ps: int, dispatched: int) -> None:
        """Anchor at the attach-time bucket so restored runs skip past ones."""
        self._last_bucket = now_ps // self.interval_ps

    def due(self, now_ps: int, dispatched: int) -> bool:
        """Due once per absolute ``interval_us`` bucket the clock enters."""
        bucket = now_ps // self.interval_ps
        if bucket > self._last_bucket:
            self._last_bucket = bucket
            return True
        return False
