"""Small filesystem helpers shared by every artefact writer.

The design flow, the CLI ``--out`` targets and the checkpoint store all
write files whose directories may not exist yet (``--out runs/a/b/x.json``
is a perfectly reasonable request).  Rather than each writer remembering
to create directories, they all call :func:`ensure_parent` first.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

PathLike = Union[str, "os.PathLike[str]"]


def ensure_parent(path: PathLike) -> Path:
    """Create ``path``'s parent directory (and ancestors) if missing.

    Returns ``path`` as a :class:`~pathlib.Path` so callers can chain
    ``ensure_parent(target).write_text(...)``.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    return target
