"""Small filesystem helpers shared by every artefact writer.

The design flow, the CLI ``--out`` targets and the checkpoint store all
write files whose directories may not exist yet (``--out runs/a/b/x.json``
is a perfectly reasonable request).  Rather than each writer remembering
to create directories, they all call :func:`ensure_parent` first.

:func:`write_json_atomic` is the shared publish primitive for JSON
artefacts that concurrent readers (or racing writers) may touch — the
exploration result cache, the service job spool, benchmark records: the
payload lands in a unique temp file in the target directory and is
published with ``os.replace``, so an observer sees either the previous
version or the complete new one, never torn bytes.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Union

PathLike = Union[str, "os.PathLike[str]"]


def ensure_parent(path: PathLike) -> Path:
    """Create ``path``'s parent directory (and ancestors) if missing.

    Returns ``path`` as a :class:`~pathlib.Path` so callers can chain
    ``ensure_parent(target).write_text(...)``.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    return target


def write_json_atomic(path: PathLike, payload: object, indent=None) -> Path:
    """Atomically publish ``payload`` as key-sorted JSON at ``path``.

    Creates missing parent directories (:func:`ensure_parent`), writes to
    a sibling temp file and ``os.replace``-publishes it, unlinking the
    temp file on any failure.  Returns the target as a
    :class:`~pathlib.Path`.
    """
    target = ensure_parent(path)
    handle = tempfile.NamedTemporaryFile(
        "w",
        encoding="utf-8",
        dir=str(target.parent),
        prefix=target.name + ".",
        suffix=".tmp",
        delete=False,
    )
    try:
        with handle:
            json.dump(payload, handle, sort_keys=True, indent=indent)
        os.replace(handle.name, target)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise
    return target
