"""Plain-text table rendering for reports and benchmark output."""

from __future__ import annotations

from typing import List, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table (right-align numbers, left-align text)."""
    columns = len(headers)
    cells: List[List[str]] = [[str(h) for h in headers]]
    numeric = [True] * columns
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells, expected {columns}: {row!r}"
            )
        rendered = []
        for index, cell in enumerate(row):
            text = _format_cell(cell)
            rendered.append(text)
            if not isinstance(cell, (int, float)):
                numeric[index] = False
        cells.append(rendered)
    widths = [max(len(row[i]) for row in cells) for i in range(columns)]
    lines = []
    if title:
        lines.append(title)
    separator = "+".join("-" * (w + 2) for w in widths)
    lines.append(separator)
    for row_index, row in enumerate(cells):
        parts = []
        for i, text in enumerate(row):
            if row_index > 0 and numeric[i]:
                parts.append(f" {text.rjust(widths[i])} ")
            else:
                parts.append(f" {text.ljust(widths[i])} ")
        lines.append("|".join(parts).rstrip())
        if row_index == 0:
            lines.append(separator)
    lines.append(separator)
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.1f}"
    return str(cell)


def render_percentage(value: float) -> str:
    """Render a ratio (0..1) as a percentage with one decimal, paper style."""
    return f"{100.0 * value:.1f} %"
