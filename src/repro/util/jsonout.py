"""Shared JSON envelope for machine-readable CLI output.

Every ``--format json`` surface of the ``repro`` CLI emits the same
top-level shape::

    {"schema": "repro.<kind>/1", "results": <payload>, "meta": {...}}

``schema`` names the payload kind and its version (bump the version when
a payload changes incompatibly), ``results`` carries the command-specific
body, and the optional ``meta`` object holds provenance (model path,
matrix, run parameters).  Consumers dispatch on ``schema`` and read
``results`` without caring which subcommand produced the file.

The one deliberate exception is ``repro trace --format chrome``: its
output must be a valid Chrome-trace JSON container (``traceEvents`` at
the top level) for Perfetto to load it, so it is not enveloped.

See ``docs/README.md`` for the envelope contract and the list of schema
kinds in use.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

#: Version suffix shared by all envelope schemas.
SCHEMA_VERSION = 1


def schema_id(kind: str) -> str:
    """The ``schema`` field value for a payload kind (``repro.<kind>/1``)."""
    return f"repro.{kind}/{SCHEMA_VERSION}"


def envelope(
    kind: str, results: object, meta: Optional[Dict] = None
) -> Dict[str, object]:
    """Wrap ``results`` in the shared envelope (``meta`` only when given)."""
    payload: Dict[str, object] = {"schema": schema_id(kind), "results": results}
    if meta:
        payload["meta"] = dict(meta)
    return payload


def render_envelope(
    kind: str, results: object, meta: Optional[Dict] = None
) -> str:
    """The enveloped payload as indented, key-sorted JSON text."""
    return json.dumps(envelope(kind, results, meta), indent=2, sort_keys=True)
