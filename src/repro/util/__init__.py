"""Shared utilities: CRC-32, deterministic PRNG, table rendering."""
