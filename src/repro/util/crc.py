"""CRC-32 (IEEE 802.3 polynomial) — the algorithm the TUTWLAN accelerator runs.

The platform library of the paper "contains implementations of some time
critical algorithms, such as Cyclic Redundancy Check (CRC), that can be used
for hardware acceleration of protocol functions" (Section 4).  This is a
from-scratch, table-driven CRC-32 over bytes, plus helpers for the action
language (which manipulates integers, not byte strings).
"""

from __future__ import annotations

from typing import Iterable, List

CRC32_POLYNOMIAL = 0xEDB88320  # reflected IEEE 802.3 polynomial


def _build_table() -> List[int]:
    table = []
    for byte in range(256):
        register = byte
        for _ in range(8):
            if register & 1:
                register = (register >> 1) ^ CRC32_POLYNOMIAL
            else:
                register >>= 1
        table.append(register)
    return table


_TABLE = _build_table()


def crc32(data: Iterable[int], seed: int = 0) -> int:
    """CRC-32 of a byte iterable, continuing from ``seed`` (a previous CRC)."""
    register = (seed ^ 0xFFFFFFFF) & 0xFFFFFFFF
    for byte in data:
        if not 0 <= byte <= 255:
            raise ValueError(f"byte out of range: {byte}")
        register = (register >> 8) ^ _TABLE[(register ^ byte) & 0xFF]
    return register ^ 0xFFFFFFFF


def crc32_bytes(data: bytes, seed: int = 0) -> int:
    """CRC-32 of a ``bytes`` value."""
    return crc32(data, seed)


def crc32_of_int(value: int, seed: int = 0) -> int:
    """CRC-32 of an integer's 4-byte little-endian encoding.

    This is the form exposed to the action language's ``crc32()`` builtin:
    frame payloads are synthetic, so protocol models checksum identifying
    integers (sequence numbers, lengths) instead of real buffers.
    """
    encoded = (value & 0xFFFFFFFF).to_bytes(4, "little")
    return crc32(encoded, seed)


def crc32_bitwise(data: Iterable[int], seed: int = 0) -> int:
    """Bit-serial reference implementation (used to cross-check the table)."""
    register = (seed ^ 0xFFFFFFFF) & 0xFFFFFFFF
    for byte in data:
        register ^= byte
        for _ in range(8):
            if register & 1:
                register = (register >> 1) ^ CRC32_POLYNOMIAL
            else:
                register >>= 1
    return register ^ 0xFFFFFFFF
