"""Profiling report rendering, in the layout of the paper's Table 4.

Part (a): total execution time and proportion per process group.
Part (b): number of signals between groups (senders as rows).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.util.tables import render_percentage, render_table
from repro.profiling.analysis import ProfilingData


def execution_time_rows(data: ProfilingData) -> List[Tuple[str, str, str]]:
    """Rows of Table 4(a), largest share first, Environment last."""
    groups = data.group_info.all_groups(include_environment=False)
    ordered = sorted(
        groups, key=lambda g: (-data.group_cycles.get(g, 0), g)
    )
    rows = []
    for group in ordered + ["Environment"]:
        cycles = data.group_cycles.get(group, 0)
        rows.append(
            (group, f"{cycles} cycles", render_percentage(data.group_share(group)))
        )
    return rows


def render_table4a(data: ProfilingData) -> str:
    """Table 4(a): process-group execution times and proportions."""
    return render_table(
        ("Process group", "Total execution time", "Proportion"),
        execution_time_rows(data),
        title="(a) Process group execution times",
    )


def signal_matrix_rows(data: ProfilingData) -> List[List[object]]:
    """Table 4(b) body rows: one row of signal counts per sender group."""
    groups = data.group_info.all_groups()
    matrix = data.signal_matrix()
    rows: List[List[object]] = []
    for group, counts in zip(groups, matrix):
        rows.append([group] + list(counts))
    return rows


def render_table4b(data: ProfilingData) -> str:
    """Table 4(b): the group-to-group signal-count matrix."""
    groups = data.group_info.all_groups()
    return render_table(
        ["Sender/Receiver"] + groups,
        signal_matrix_rows(data),
        title="(b) Number of signals between groups",
    )


def render_process_detail(data: ProfilingData) -> str:
    """The finer metrics the paper mentions: per-process cycles & transfers."""
    cycle_rows = [
        (process, data.process_cycles[process])
        for process in sorted(
            data.process_cycles, key=lambda p: (-data.process_cycles[p], p)
        )
    ]
    transfer_rows = [
        (f"{sender} -> {receiver}", count)
        for (sender, receiver), count in sorted(
            data.process_signals.items(), key=lambda item: (-item[1], item[0])
        )
    ]
    parts = [
        render_table(
            ("Process", "Cycles"), cycle_rows, title="Per-process execution"
        ),
        render_table(
            ("Transfer", "Signals"),
            transfer_rows,
            title="Transfers between individual application processes",
        ),
    ]
    return "\n\n".join(parts)


def render_latency_detail(data: ProfilingData) -> str:
    """Delivery latency per transport and per signal type."""
    transport_rows = [
        (
            name,
            stats.count,
            round(stats.mean_ps / 1000.0, 1),
            stats.max_ps // 1000,
        )
        for name, stats in sorted(data.transport_latency.items())
    ]
    signal_rows = [
        (
            name,
            stats.count,
            round(stats.mean_ps / 1000.0, 1),
            stats.max_ps // 1000,
        )
        for name, stats in sorted(
            data.signal_latency.items(),
            key=lambda item: (-item[1].count, item[0]),
        )
    ]
    parts = [
        render_table(
            ("Transport", "Signals", "Mean latency (ns)", "Max latency (ns)"),
            transport_rows,
            title="Delivery latency by transport",
        ),
        render_table(
            ("Signal", "Count", "Mean latency (ns)", "Max latency (ns)"),
            signal_rows,
            title="Delivery latency by signal type",
        ),
    ]
    return "\n\n".join(parts)


def render_fault_section(data: ProfilingData) -> str:
    """Fault-injection ledger: what was injected, detected and repaired.

    Only rendered for runs that carried a fault plan; fault-free reports
    are byte-identical to the pre-fault-injection layout.
    """
    stats = data.fault_stats
    assert stats is not None
    kind_rows = [
        (kind, count) for kind, count in sorted(stats.by_kind.items())
    ]
    lines = [
        "Fault injection",
        "---------------",
        f"seed: {stats.seed}",
        f"injected faults: {stats.injected}",
        f"detected (CRC-protected): {stats.detected}",
        f"recovered by retransmission: {stats.recovered}",
        f"residual losses: {stats.residual}",
        f"recovery ratio: {render_percentage(stats.recovery_ratio)}",
    ]
    if kind_rows:
        lines += [
            "",
            render_table(
                ("Fault kind", "Injected"), kind_rows, title="Injections by kind"
            ),
        ]
    return "\n".join(lines)


def render_report(data: ProfilingData, title: str = "Profiling report") -> str:
    """The full profiling report (Table 4 plus detail sections)."""
    summary_lines = [
        title,
        "=" * len(title),
        f"simulated time: {data.end_time_ps / 1e9:.3f} ms",
        f"total cycles: {data.total_cycles()}",
        f"signals across group boundaries: {data.external_signals()}",
        f"signals within groups: {data.internal_signals()}",
        f"dropped signals: {data.dropped_signals}",
        "",
        render_table4a(data),
        "",
        render_table4b(data),
        "",
        render_process_detail(data),
        "",
        render_latency_detail(data),
    ]
    if data.fault_stats is not None:
        summary_lines += ["", render_fault_section(data)]
    return "\n".join(summary_lines)
