"""CSV export of profiling data — for spreadsheets and plotting tools.

The paper's profiling report is a table in a document; downstream users
usually want the raw numbers.  These helpers write the three core data
sets (group execution, signal matrix, latency statistics) as CSV.
"""

from __future__ import annotations

import csv
import io
from typing import List

from repro.profiling.analysis import ProfilingData


def group_times_csv(data: ProfilingData) -> str:
    """Table 4(a) as CSV: group, cycles, share, steps."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["group", "cycles", "share", "steps"])
    for group in data.group_info.all_groups():
        writer.writerow(
            [
                group,
                data.group_cycles.get(group, 0),
                f"{data.group_share(group):.6f}",
                data.group_steps.get(group, 0),
            ]
        )
    return buffer.getvalue()


def signal_matrix_csv(data: ProfilingData) -> str:
    """Table 4(b) as CSV: one row per sender, one column per receiver."""
    groups = data.group_info.all_groups()
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["sender"] + groups)
    for sender, counts in zip(groups, data.signal_matrix()):
        writer.writerow([sender] + counts)
    return buffer.getvalue()


def process_transfers_csv(data: ProfilingData) -> str:
    """Per-process transfers: sender, receiver, signals, plus cycles rows."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["sender", "receiver", "signals"])
    for (sender, receiver), count in sorted(data.process_signals.items()):
        writer.writerow([sender, receiver, count])
    return buffer.getvalue()


def latency_csv(data: ProfilingData) -> str:
    """Per-signal delivery latency statistics."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["signal", "count", "mean_latency_ps", "max_latency_ps"])
    for signal in sorted(data.signal_latency):
        stats = data.signal_latency[signal]
        writer.writerow(
            [signal, stats.count, f"{stats.mean_ps:.1f}", stats.max_ps]
        )
    return buffer.getvalue()


def write_all_csv(data: ProfilingData, directory) -> List[str]:
    """Write every CSV into ``directory``; returns the written paths."""
    import os

    os.makedirs(directory, exist_ok=True)
    outputs = {
        "group_times.csv": group_times_csv(data),
        "signal_matrix.csv": signal_matrix_csv(data),
        "process_transfers.csv": process_transfers_csv(data),
        "latency.csv": latency_csv(data),
    }
    paths = []
    for name, content in outputs.items():
        path = os.path.join(directory, name)
        with open(path, "w", encoding="utf-8", newline="") as handle:
            handle.write(content)
        paths.append(path)
    return paths
