"""Profiling stage 3: combine the simulation log with group information.

Paper Section 4.4: "after simulation, the profiling data in the simulation
log-file and the process group information are combined and analyzed.  The
results are gathered to a profiling report."

:class:`ProfilingData` is the analysed result: execution time per process
group (Table 4a), the number of signals between groups (Table 4b), and the
finer-grained metrics the paper mentions ("other metrics, such as
transfers between individual application processes, are also available").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.simulation.logfile import LogFile
from repro.profiling.groupinfo import ENVIRONMENT_GROUP, ProcessGroupInfo


@dataclass
class LatencyStats:
    """Delivery-latency statistics of one signal population."""

    count: int = 0
    total_ps: int = 0
    max_ps: int = 0

    def observe(self, latency_ps: int) -> None:
        """Add one delivery-latency sample."""
        self.count += 1
        self.total_ps += latency_ps
        if latency_ps > self.max_ps:
            self.max_ps = latency_ps

    @property
    def mean_ps(self) -> float:
        """Arithmetic mean latency (0.0 on an empty population)."""
        return self.total_ps / self.count if self.count else 0.0


@dataclass
class FaultSummary:
    """Fault-injection ledger recovered from the log's META entries.

    The accounting identity ``injected == detected == recovered + residual``
    holds for campaigns that restrict injection to CRC-protected signals
    (see docs/fault_injection.md); ``by_kind`` breaks injections down by
    fault model.
    """

    seed: int = 0
    injected: int = 0
    detected: int = 0
    recovered: int = 0
    residual: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)

    @property
    def recovery_ratio(self) -> float:
        """Fraction of detected faults repaired (1.0 when nothing detected)."""
        return self.recovered / self.detected if self.detected else 1.0


def _fault_summary_from_meta(meta: Dict[str, str]) -> Optional[FaultSummary]:
    if "fault_injected" not in meta:
        return None
    by_kind: Dict[str, int] = {}
    kinds = meta.get("fault_kinds", "-")
    if kinds and kinds != "-":
        for entry in kinds.split(","):
            kind, _, count = entry.partition(":")
            by_kind[kind] = int(count or 0)
    return FaultSummary(
        seed=int(meta.get("fault_seed", "0")),
        injected=int(meta.get("fault_injected", "0")),
        detected=int(meta.get("fault_detected", "0")),
        recovered=int(meta.get("fault_recovered", "0")),
        residual=int(meta.get("fault_residual", "0")),
        by_kind=by_kind,
    )


@dataclass
class ProfilingData:
    """Joined and aggregated profiling metrics."""

    group_info: ProcessGroupInfo
    group_cycles: Dict[str, int] = field(default_factory=dict)
    process_cycles: Dict[str, int] = field(default_factory=dict)
    group_signals: Dict[Tuple[str, str], int] = field(default_factory=dict)
    process_signals: Dict[Tuple[str, str], int] = field(default_factory=dict)
    group_bytes: Dict[Tuple[str, str], int] = field(default_factory=dict)
    group_steps: Dict[str, int] = field(default_factory=dict)
    signal_latency: Dict[str, LatencyStats] = field(default_factory=dict)
    transport_latency: Dict[str, LatencyStats] = field(default_factory=dict)
    dropped_signals: int = 0
    end_time_ps: int = 0
    fault_stats: Optional[FaultSummary] = None

    # -- Table 4(a) ----------------------------------------------------------

    def total_cycles(self) -> int:
        """Total charged cycles across all groups."""
        return sum(self.group_cycles.values())

    def group_share(self, group_name: str) -> float:
        """Execution-time proportion of one group (0..1)."""
        total = self.total_cycles()
        if total == 0:
            return 0.0
        return self.group_cycles.get(group_name, 0) / total

    def shares(self) -> Dict[str, float]:
        """Execution-time proportion per group, Table 4(a)'s column."""
        return {
            group: self.group_share(group)
            for group in self.group_info.all_groups()
        }

    # -- Table 4(b) ----------------------------------------------------------

    def signal_matrix(self) -> List[List[int]]:
        """Square matrix of signal counts, rows=senders, cols=receivers,
        over ``group_info.all_groups()`` order."""
        groups = self.group_info.all_groups()
        return [
            [self.group_signals.get((sender, receiver), 0) for receiver in groups]
            for sender in groups
        ]

    def signals_between(self, sender_group: str, receiver_group: str) -> int:
        """Delivered signal count of one sender->receiver group pair."""
        return self.group_signals.get((sender_group, receiver_group), 0)

    # -- optimisation objectives ------------------------------------------------

    def external_signals(self) -> int:
        """Signals crossing group boundaries (the quantity the paper's
        grouping objective minimises)."""
        return sum(
            count
            for (sender, receiver), count in self.group_signals.items()
            if sender != receiver
        )

    def internal_signals(self) -> int:
        """Signals delivered within a single group."""
        return sum(
            count
            for (sender, receiver), count in self.group_signals.items()
            if sender == receiver
        )

    def external_bytes(self) -> int:
        """Bytes carried by group-crossing signals."""
        return sum(
            count
            for (sender, receiver), count in self.group_bytes.items()
            if sender != receiver
        )

    def busiest_group(self) -> str:
        """The group with the most charged cycles (name breaks ties)."""
        if not self.group_cycles:
            return ENVIRONMENT_GROUP
        return max(self.group_cycles, key=lambda g: (self.group_cycles[g], g))


def analyze(log: LogFile, group_info: ProcessGroupInfo) -> ProfilingData:
    """Join a parsed log-file with group info (profiling stage 3)."""
    data = ProfilingData(group_info=group_info, end_time_ps=log.end_time_ps)
    for group in group_info.all_groups():
        data.group_cycles.setdefault(group, 0)
        data.group_steps.setdefault(group, 0)
    for record in log.exec_records:
        group = group_info.group_of(record.process)
        data.group_cycles[group] = data.group_cycles.get(group, 0) + record.cycles
        data.group_steps[group] = data.group_steps.get(group, 0) + 1
        data.process_cycles[record.process] = (
            data.process_cycles.get(record.process, 0) + record.cycles
        )
    for record in log.signal_records:
        sender_group = group_info.group_of(record.sender)
        receiver_group = group_info.group_of(record.receiver)
        group_key = (sender_group, receiver_group)
        process_key = (record.sender, record.receiver)
        data.group_signals[group_key] = data.group_signals.get(group_key, 0) + 1
        data.process_signals[process_key] = (
            data.process_signals.get(process_key, 0) + 1
        )
        data.group_bytes[group_key] = (
            data.group_bytes.get(group_key, 0) + record.bytes
        )
        data.signal_latency.setdefault(record.signal, LatencyStats()).observe(
            record.latency_ps
        )
        data.transport_latency.setdefault(
            record.transport, LatencyStats()
        ).observe(record.latency_ps)
    data.dropped_signals = len(log.drop_records)
    data.fault_stats = _fault_summary_from_meta(log.meta)
    return data
