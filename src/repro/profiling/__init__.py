"""The profiling tool (paper Section 4.4).

Three stages, as in the paper:

1. :func:`group_info_from_xmi` — parse the model's XML for group info;
2. instrumentation — inserted by :mod:`repro.codegen` (C) and produced
   natively by :mod:`repro.simulation` (the log-file);
3. :func:`analyze` + :func:`render_report` — join log and group info into
   the profiling report (Table 4).

:func:`profile_run` is the one-call convenience covering stages 1 and 3.
"""

from repro.profiling.groupinfo import (
    ENVIRONMENT_GROUP,
    ProcessGroupInfo,
    group_info_from_model,
    group_info_from_xmi,
)
from repro.profiling.analysis import (
    FaultSummary,
    LatencyStats,
    ProfilingData,
    analyze,
)
from repro.profiling.export import (
    group_times_csv,
    latency_csv,
    process_transfers_csv,
    signal_matrix_csv,
    write_all_csv,
)
from repro.profiling.report import (
    execution_time_rows,
    render_fault_section,
    render_latency_detail,
    render_process_detail,
    render_report,
    render_table4a,
    render_table4b,
    signal_matrix_rows,
)


def profile_run(result, application):
    """Profile a simulation result against its application model.

    ``result`` is a :class:`~repro.simulation.SimulationResult`;
    ``application`` an :class:`~repro.application.ApplicationModel`.
    Stage 1 runs over the application's *serialised* model (through XMI),
    exactly as the paper's tool does.
    """
    from repro.uml.xmi import model_to_xml

    xml = model_to_xml(application.model)
    info = group_info_from_xmi(xml, profiles=[application.profile])
    return analyze(result.log, info)


__all__ = [
    "ENVIRONMENT_GROUP",
    "FaultSummary",
    "LatencyStats",
    "render_fault_section",
    "render_latency_detail",
    "group_times_csv",
    "latency_csv",
    "process_transfers_csv",
    "signal_matrix_csv",
    "write_all_csv",
    "ProcessGroupInfo",
    "ProfilingData",
    "analyze",
    "execution_time_rows",
    "group_info_from_model",
    "group_info_from_xmi",
    "profile_run",
    "render_process_detail",
    "render_report",
    "render_table4a",
    "render_table4b",
    "signal_matrix_rows",
]
