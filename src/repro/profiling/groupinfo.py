"""Profiling stage 1: gather process-group information from the model.

Paper Section 4.4: "First, the XML presentation of the UML 2.0 model is
parsed to gather process group information from the model."  This module
does exactly that — :func:`group_info_from_xmi` works on the serialised
document; :func:`group_info_from_model` on an in-memory model (both walk
the same stereotypes, so they agree by construction, which tests verify).

Processes that belong to no process group are attributed to the
``Environment`` pseudo-group, matching Table 4's Environment row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.uml.element import Element
from repro.uml.profile import Profile
from repro.uml.visitor import iter_tree
from repro.uml.xmi import xml_to_model
from repro.tutprofile import (
    APPLICATION_PROCESS,
    PROCESS_GROUP,
    PROCESS_GROUPING,
    TUT_PROFILE,
)

ENVIRONMENT_GROUP = "Environment"


@dataclass
class ProcessGroupInfo:
    """Which process belongs to which group."""

    process_to_group: Dict[str, str] = field(default_factory=dict)
    group_names: List[str] = field(default_factory=list)

    def group_of(self, process_name: str) -> str:
        """The group of a process (Environment when ungrouped)."""
        return self.process_to_group.get(process_name, ENVIRONMENT_GROUP)

    def members(self, group_name: str) -> List[str]:
        """Sorted names of the processes in one group."""
        return sorted(
            process
            for process, group in self.process_to_group.items()
            if group == group_name
        )

    def all_groups(self, include_environment: bool = True) -> List[str]:
        """Group names in declaration order, optionally plus Environment."""
        names = list(self.group_names)
        if include_environment and ENVIRONMENT_GROUP not in names:
            names.append(ENVIRONMENT_GROUP)
        return names

    @property
    def process_count(self) -> int:
        """Number of processes with a (possibly Environment) group."""
        return len(self.process_to_group)


def group_info_from_model(root: Element) -> ProcessGroupInfo:
    """Collect group info by walking a model's stereotyped elements."""
    info = ProcessGroupInfo()
    groups: List[str] = []
    processes: List[str] = []
    groupings = []
    for element in iter_tree(root):
        if element.has_stereotype(PROCESS_GROUP):
            name = getattr(element, "name", "")
            if name and name not in groups:
                groups.append(name)
        if element.has_stereotype(APPLICATION_PROCESS):
            name = getattr(element, "name", "")
            if name:
                processes.append(name)
        if element.has_stereotype(PROCESS_GROUPING):
            groupings.append(element)
    info.group_names = groups
    for process_name in processes:
        info.process_to_group[process_name] = ENVIRONMENT_GROUP
    for grouping in groupings:
        if len(grouping.clients) == 1 and len(grouping.suppliers) == 1:
            process_name = getattr(grouping.client, "name", "")
            group_name = getattr(grouping.supplier, "name", "")
            if process_name and group_name:
                info.process_to_group[process_name] = group_name
    return info


def group_info_from_xmi(
    text: str, profiles: Optional[Sequence[Profile]] = None
) -> ProcessGroupInfo:
    """Parse an XMI document and collect group info from it (stage 1)."""
    resolved = list(profiles) if profiles is not None else [TUT_PROFILE]
    model = xml_to_model(text, profiles=resolved)
    return group_info_from_model(model)
