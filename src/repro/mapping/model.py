"""Platform mapping (paper Section 3.3).

"When both an application and platform have been defined, each group of
application processes is mapped to a platform component instance.  Mapping
is performed by defining a dependency between a process group and a
platform component instance."

:class:`MappingModel` owns those «PlatformMapping» dependencies and answers
the central query of the whole flow: *which PE runs this process?*
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import MappingError
from repro.uml.dependency import Dependency
from repro.uml.packages import Package
from repro.tutprofile import PLATFORM_MAPPING, TUT_PROFILE
from repro.tutprofile.tags import process_runs_on
from repro.application.model import ApplicationModel, ENVIRONMENT_GROUP
from repro.platform.model import PlatformModel


class MappingModel:
    """Maps the process groups of an application onto platform instances."""

    def __init__(
        self,
        application: ApplicationModel,
        platform: PlatformModel,
        profile=None,
        view_name: str = "MappingView",
    ) -> None:
        self.application = application
        self.platform = platform
        self.profile = profile if profile is not None else TUT_PROFILE
        self.package = Package(view_name)
        # The mapping view lives in the application's model so one XMI file
        # can carry all three views (the profiling tool parses one document).
        self.application.model.add(self.package)
        self.mappings: Dict[str, Dependency] = {}  # group name -> dependency

    # ------------------------------------------------------------------
    # reconstruction from a (possibly XMI-parsed) UML model
    # ------------------------------------------------------------------

    @classmethod
    def from_model(
        cls,
        application: ApplicationModel,
        platform: PlatformModel,
        profile=None,
        view_name: str = "MappingView",
    ) -> "MappingModel":
        """Rebuild the mapping view from dependencies found in the model."""
        mapping = cls.__new__(cls)
        mapping.application = application
        mapping.platform = platform
        mapping.profile = profile if profile is not None else TUT_PROFILE
        package = application.model.member(view_name)
        if package is None:
            raise MappingError(f"model has no {view_name} package")
        mapping.package = package
        mapping.mappings = {}
        for dependency in package.members_of_type(Dependency):
            if not dependency.has_stereotype(PLATFORM_MAPPING):
                continue
            if len(dependency.clients) != 1 or len(dependency.suppliers) != 1:
                continue  # cross-model reference lost in serialisation
            mapping.mappings[dependency.client.name] = dependency
        return mapping

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def map(self, group_name: str, pe_name: str, fixed: bool = False) -> Dependency:
        """Map ``group_name`` onto ``pe_name`` (type-checked)."""
        group = self.application.groups.get(group_name)
        if group is None:
            raise MappingError(f"application has no process group {group_name!r}")
        if pe_name not in self.platform.processing_elements:
            raise MappingError(f"platform has no PE named {pe_name!r}")
        pe = self.platform.pe(pe_name)
        group_type = group.tag("ProcessGroup", "ProcessType", "general")
        if not process_runs_on(group_type, pe.spec.component_type):
            raise MappingError(
                f"group {group_name!r} ({group_type}) cannot run on "
                f"{pe_name!r} ({pe.spec.component_type})"
            )
        if group_name in self.mappings:
            raise MappingError(
                f"group {group_name!r} is already mapped; unmap it first"
            )
        dependency = Dependency(
            f"{group_name}_to_{pe_name}", client=group, supplier=pe.part
        )
        self.package.add(dependency)
        self.profile.apply(dependency, PLATFORM_MAPPING, Fixed=fixed)
        self.mappings[group_name] = dependency
        return dependency

    def unmap(self, group_name: str) -> None:
        """Remove a group's mapping; fixed mappings refuse (paper §3.3)."""
        dependency = self.mappings.get(group_name)
        if dependency is None:
            raise MappingError(f"group {group_name!r} is not mapped")
        if dependency.tag(PLATFORM_MAPPING, "Fixed", False):
            raise MappingError(
                f"mapping of {group_name!r} is fixed and cannot be changed "
                "automatically"
            )
        del self.mappings[group_name]
        self.package.disown(dependency)
        self.package.packaged_elements.remove(dependency)

    def remap(self, group_name: str, pe_name: str, fixed: bool = False) -> Dependency:
        """Move a (non-fixed) group to a different PE."""
        if group_name in self.mappings:
            self.unmap(group_name)
        return self.map(group_name, pe_name, fixed=fixed)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def pe_of_group(self, group_name: str) -> Optional[str]:
        dependency = self.mappings.get(group_name)
        if dependency is None:
            return None
        # supplier is the PE part; recover the instance name
        return dependency.supplier.name

    def pe_of_process(self, process_name: str) -> Optional[str]:
        """The PE a process executes on; ``None`` for environment processes."""
        process = self.application.find_process(process_name)
        if process.is_environment:
            return None
        group_name = self.application.group_of(process_name)
        if group_name is None:
            return None
        return self.pe_of_group(group_name)

    def groups_on(self, pe_name: str) -> List[str]:
        return sorted(
            group
            for group, dependency in self.mappings.items()
            if dependency.supplier.name == pe_name
        )

    def is_fixed(self, group_name: str) -> bool:
        dependency = self.mappings.get(group_name)
        return bool(
            dependency is not None and dependency.tag(PLATFORM_MAPPING, "Fixed", False)
        )

    def assignment(self) -> Dict[str, str]:
        """Mapping group name -> PE name for all mapped groups."""
        return {g: d.supplier.name for g, d in self.mappings.items()}

    def check_complete(self) -> None:
        """Raise unless every non-environment group with members is mapped."""
        missing = []
        for group_name in self.application.groups:
            if group_name == ENVIRONMENT_GROUP:
                continue
            if not self.application.processes_in(group_name):
                continue
            if group_name not in self.mappings:
                missing.append(group_name)
        unmapped_processes = [
            name
            for name, process in self.application.processes.items()
            if not process.is_environment
            and self.application.group_of(name) is None
        ]
        if missing or unmapped_processes:
            parts = []
            if missing:
                parts.append(f"unmapped groups: {', '.join(sorted(missing))}")
            if unmapped_processes:
                parts.append(
                    "ungrouped processes: " + ", ".join(sorted(unmapped_processes))
                )
            raise MappingError("; ".join(parts))

    def describe(self) -> str:
        lines = ["Platform mapping:"]
        for group_name in sorted(self.mappings):
            fixed = " (fixed)" if self.is_fixed(group_name) else ""
            lines.append(
                f"  {group_name} -> {self.pe_of_group(group_name)}{fixed}"
            )
        return "\n".join(lines)
