"""Mapping view: process groups onto platform component instances (Section 3.3)."""

from repro.mapping.model import MappingModel

__all__ = ["MappingModel"]
