"""Exception hierarchy for the TUT-Profile reproduction library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by the library with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ModelError(ReproError):
    """A UML model is structurally malformed or used incorrectly."""


class ValidationError(ModelError):
    """Raised when model validation finds blocking (error-severity) issues.

    The ``issues`` attribute carries the full list of
    :class:`repro.uml.validation.Issue` objects that triggered the error.
    """

    def __init__(self, message: str, issues=None):
        super().__init__(message)
        self.issues = list(issues) if issues is not None else []


class ProfileError(ModelError):
    """A stereotype or tagged value is defined or applied incorrectly."""


class ActionSyntaxError(ReproError):
    """The textual action language could not be parsed.

    Carries the offending ``text``, plus ``line`` and ``column`` (1-based)
    when they are known.
    """

    def __init__(self, message: str, text: str = "", line: int = 0, column: int = 0):
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.text = text
        self.line = line
        self.column = column


class ActionRuntimeError(ReproError):
    """Evaluation of an action or expression failed at simulation time."""


class AnalysisError(ReproError):
    """Static analysis (tutlint) found blocking error-severity findings.

    The ``findings`` attribute carries the full list of
    :class:`repro.analysis.Finding` objects that triggered the error.
    """

    def __init__(self, message: str, findings=None):
        super().__init__(message)
        self.findings = list(findings) if findings is not None else []


class LintConfigError(ReproError):
    """A lint configuration names rule ids that are not in the catalogue.

    ``unknown`` lists the offending ids, ``valid`` the registered ones, so
    callers (and the CLI) can print an actionable message.
    """

    def __init__(self, message: str, unknown=None, valid=None):
        super().__init__(message)
        self.unknown = list(unknown) if unknown is not None else []
        self.valid = list(valid) if valid is not None else []


class MappingError(ModelError):
    """A platform mapping is inconsistent (unmapped group, bad target, ...)."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an invalid state."""


class InvalidScheduleError(SimulationError, ValueError):
    """An event was scheduled with an invalid delay (e.g. into the past).

    Subclasses :class:`ValueError` so callers validating plain numeric
    arguments can catch it without importing the simulation package.
    """


class CheckpointError(ReproError):
    """A simulation snapshot could not be written, read or restored.

    Raised for corrupted or future-schema snapshot files, for restore
    attempts against a mismatching system (different model, missing
    tracer, different fault seed), and for replay divergence — a resumed
    run reaching a checkpointed instant with a different state hash than
    the original run recorded there."""


class SimulationInterrupted(ReproError):
    """A checkpointing run hit its interrupt budget and stopped mid-flight.

    Carries the ``snapshot`` taken at the interruption point so callers
    (tests, the CI resume-smoke job) can resume without scanning the
    store."""

    def __init__(self, message: str, snapshot=None):
        super().__init__(message)
        self.snapshot = snapshot


class ExplorationError(ReproError):
    """The design-space exploration engine was misconfigured.

    Raised e.g. when a candidate's builder is not importable by name but
    parallel evaluation (which must re-import it in worker processes) or
    result caching (which must hash it) was requested."""


class WorkerFaultError(ExplorationError):
    """An injected infrastructure fault fired inside a worker.

    Raised by the worker-fault harness
    (:mod:`repro.exploration.workerfaults`) for ``flaky``/``poison``
    injections — and for ``crash``/``hang`` injections in serial mode,
    where a real crash or hang would take the whole campaign down.  The
    supervisor treats it like any other worker failure: record, retry
    with backoff, quarantine after the failure budget."""


class ServiceError(ReproError):
    """The exploration service was misused or reported a failure.

    Raised by the job store for invalid job submissions or state
    transitions, and by the HTTP client for error responses; ``status``
    carries the HTTP status code when one is known (e.g. 404 for an
    unknown job, 429 for a saturated queue)."""

    def __init__(self, message: str, status=None):
        super().__init__(message)
        self.status = status


class JobCancelled(ServiceError):
    """A service job was cancelled while its campaign was running.

    Raised cooperatively from the worker's progress callback between
    candidate completions; the worker catches it, terminates the
    campaign cleanly (completed candidates stay in the result cache) and
    marks the job ``cancelled``."""


class CodegenError(ReproError):
    """Code generation could not translate a model construct."""


class GeneratorError(ReproError):
    """The synthetic-model generator was configured out of range.

    Raised by :class:`repro.genmodel.GeneratorConfig` validation, by
    defect injectors whose preconditions the configuration does not meet
    (e.g. ``S004`` needs at least two bridged segments), and by the
    factory module when a builder token does not decode to a
    configuration."""


class InvariantViolation(ReproError):
    """A cross-subsystem fuzz invariant failed on a generated model.

    Carries the pipeline ``stage`` that failed and the offending
    :class:`repro.genmodel.GeneratorConfig`, so harnesses can shrink the
    configuration and print a reproduction command."""

    def __init__(self, stage: str, message: str, config=None):
        super().__init__(f"[{stage}] {message}")
        self.stage = stage
        self.config = config


class XmiError(ModelError):
    """An XMI document could not be written or parsed."""
