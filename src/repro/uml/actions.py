"""AST and interpreter for the textual action language.

The paper models behaviour as "statechart diagrams combined with the UML 2.0
textual notation".  This module defines the small imperative language used in
transition effects, guards and state entry/exit actions:

* integer/boolean expressions with the usual operators and a conditional
  ``?:``
* assignments to EFSM variables
* ``send Signal(arg, ...) via port;`` statements
* ``if``/``else`` and (bounded) ``while``
* ``set_timer(name, expr);`` / ``reset_timer(name);``
* builtin calls: ``min``, ``max``, ``abs``, ``crc32``, ``rand16``

The same AST is interpreted by the simulator (:mod:`repro.simulation`) and
translated to C by the code generator (:mod:`repro.codegen`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import ActionRuntimeError

MAX_LOOP_ITERATIONS = 100_000


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Abstract expression node."""

    def unparse(self) -> str:
        raise NotImplementedError

    def children(self) -> Iterable["Expr"]:
        return ()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.unparse()})"

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self.unparse() == other.unparse()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.unparse()))


class IntLiteral(Expr):
    def __init__(self, value: int) -> None:
        self.value = int(value)

    def unparse(self) -> str:
        return str(self.value)


class BoolLiteral(Expr):
    def __init__(self, value: bool) -> None:
        self.value = bool(value)

    def unparse(self) -> str:
        return "true" if self.value else "false"


class Name(Expr):
    """A reference to an EFSM variable or a trigger parameter."""

    def __init__(self, identifier: str) -> None:
        self.identifier = identifier

    def unparse(self) -> str:
        return self.identifier


class UnaryOp(Expr):
    OPS = ("-", "!", "~")

    def __init__(self, op: str, operand: Expr) -> None:
        self.op = op
        self.operand = operand

    def children(self):
        return (self.operand,)

    def unparse(self) -> str:
        return f"({self.op}{self.operand.unparse()})"


class BinaryOp(Expr):
    ARITHMETIC = ("+", "-", "*", "/", "%", "<<", ">>", "&", "|", "^")
    COMPARISON = ("==", "!=", "<", "<=", ">", ">=")
    LOGICAL = ("&&", "||")
    OPS = ARITHMETIC + COMPARISON + LOGICAL

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        self.op = op
        self.left = left
        self.right = right

    def children(self):
        return (self.left, self.right)

    def unparse(self) -> str:
        return f"({self.left.unparse()} {self.op} {self.right.unparse()})"


class Conditional(Expr):
    """``condition ? then_value : else_value``."""

    def __init__(self, condition: Expr, then_value: Expr, else_value: Expr) -> None:
        self.condition = condition
        self.then_value = then_value
        self.else_value = else_value

    def children(self):
        return (self.condition, self.then_value, self.else_value)

    def unparse(self) -> str:
        return (
            f"({self.condition.unparse()} ? {self.then_value.unparse()}"
            f" : {self.else_value.unparse()})"
        )


class Call(Expr):
    BUILTINS = ("min", "max", "abs", "crc32", "rand16")

    def __init__(self, function: str, args: Sequence[Expr]) -> None:
        self.function = function
        self.args = list(args)

    def children(self):
        return tuple(self.args)

    def unparse(self) -> str:
        inner = ", ".join(arg.unparse() for arg in self.args)
        return f"{self.function}({inner})"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt:
    """Abstract statement node."""

    def unparse(self, indent: int = 0) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.unparse().strip()})"

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self.unparse() == other.unparse()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.unparse()))


def _pad(indent: int) -> str:
    return "    " * indent


class Assign(Stmt):
    def __init__(self, target: str, value: Expr) -> None:
        self.target = target
        self.value = value

    def unparse(self, indent: int = 0) -> str:
        return f"{_pad(indent)}{self.target} = {self.value.unparse()};"


class Send(Stmt):
    """``send Signal(arg, ...) via port;`` — port may be omitted."""

    def __init__(self, signal: str, args: Sequence[Expr], via: Optional[str] = None) -> None:
        self.signal = signal
        self.args = list(args)
        self.via = via

    def unparse(self, indent: int = 0) -> str:
        inner = ", ".join(arg.unparse() for arg in self.args)
        via = f" via {self.via}" if self.via else ""
        return f"{_pad(indent)}send {self.signal}({inner}){via};"


class If(Stmt):
    def __init__(
        self,
        condition: Expr,
        then_body: Sequence[Stmt],
        else_body: Sequence[Stmt] = (),
    ) -> None:
        self.condition = condition
        self.then_body = list(then_body)
        self.else_body = list(else_body)

    def unparse(self, indent: int = 0) -> str:
        lines = [f"{_pad(indent)}if ({self.condition.unparse()}) {{"]
        lines += [stmt.unparse(indent + 1) for stmt in self.then_body]
        if self.else_body:
            lines.append(f"{_pad(indent)}}} else {{")
            lines += [stmt.unparse(indent + 1) for stmt in self.else_body]
        lines.append(f"{_pad(indent)}}}")
        return "\n".join(lines)


class While(Stmt):
    def __init__(self, condition: Expr, body: Sequence[Stmt]) -> None:
        self.condition = condition
        self.body = list(body)

    def unparse(self, indent: int = 0) -> str:
        lines = [f"{_pad(indent)}while ({self.condition.unparse()}) {{"]
        lines += [stmt.unparse(indent + 1) for stmt in self.body]
        lines.append(f"{_pad(indent)}}}")
        return "\n".join(lines)


class SetTimer(Stmt):
    """Arm a named timer to fire after ``duration`` ticks."""

    def __init__(self, timer: str, duration: Expr) -> None:
        self.timer = timer
        self.duration = duration

    def unparse(self, indent: int = 0) -> str:
        return f"{_pad(indent)}set_timer({self.timer}, {self.duration.unparse()});"


class ResetTimer(Stmt):
    """Disarm a named timer if it is pending."""

    def __init__(self, timer: str) -> None:
        self.timer = timer

    def unparse(self, indent: int = 0) -> str:
        return f"{_pad(indent)}reset_timer({self.timer});"


def unparse_block(stmts: Sequence[Stmt], indent: int = 0) -> str:
    """Render a statement list back to action-language source."""
    return "\n".join(stmt.unparse(indent) for stmt in stmts)


def walk_statements(stmts: Sequence[Stmt]):
    """Yield every statement in a block, recursing into if/while bodies."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, If):
            yield from walk_statements(stmt.then_body)
            yield from walk_statements(stmt.else_body)
        elif isinstance(stmt, While):
            yield from walk_statements(stmt.body)


def walk_expressions(stmts: Sequence[Stmt]):
    """Yield every expression appearing in a block (pre-order)."""

    def expand(expr: Expr):
        yield expr
        for child in expr.children():
            yield from expand(child)

    for stmt in walk_statements(stmts):
        if isinstance(stmt, Assign):
            yield from expand(stmt.value)
        elif isinstance(stmt, Send):
            for arg in stmt.args:
                yield from expand(arg)
        elif isinstance(stmt, If):
            yield from expand(stmt.condition)
        elif isinstance(stmt, While):
            yield from expand(stmt.condition)
        elif isinstance(stmt, SetTimer):
            yield from expand(stmt.duration)


def sent_signal_names(stmts: Sequence[Stmt]):
    """All signal names this block may send (static over-approximation)."""
    return sorted(
        {stmt.signal for stmt in walk_statements(stmts) if isinstance(stmt, Send)}
    )


# ---------------------------------------------------------------------------
# Interpretation
# ---------------------------------------------------------------------------


class ActionEnvironment:
    """What the interpreter needs from its host (the simulator or tests).

    Subclasses override the hooks; the defaults implement an in-memory
    variable store and record sends/timer operations, which is enough for
    unit testing action semantics without a simulator.
    """

    def __init__(self, variables: Optional[Dict[str, int]] = None) -> None:
        self.variables: Dict[str, int] = dict(variables or {})
        self.parameters: Dict[str, int] = {}
        self.sent: List[tuple] = []
        self.timers_set: List[tuple] = []
        self.timers_reset: List[str] = []
        # program-order log of timer operations: ("set", name, duration) or
        # ("reset", name, 0) — set/reset interleaving matters semantically
        self.timer_ops: List[tuple] = []
        self._rand_state = 0x2F6E

    # -- variable access -----------------------------------------------------

    def read(self, name: str) -> int:
        if name in self.parameters:
            return self.parameters[name]
        if name in self.variables:
            return self.variables[name]
        raise ActionRuntimeError(f"undefined name {name!r}")

    def write(self, name: str, value: int) -> None:
        if name in self.parameters:
            raise ActionRuntimeError(f"cannot assign to trigger parameter {name!r}")
        self.variables[name] = value

    # -- effect hooks ----------------------------------------------------------

    def send(self, signal: str, args: List[int], via: Optional[str]) -> None:
        self.sent.append((signal, tuple(args), via))

    def set_timer(self, timer: str, duration: int) -> None:
        self.timers_set.append((timer, duration))
        self.timer_ops.append(("set", timer, duration))

    def reset_timer(self, timer: str) -> None:
        self.timers_reset.append(timer)
        self.timer_ops.append(("reset", timer, 0))

    # -- builtins ----------------------------------------------------------------

    def call_builtin(self, function: str, args: List[int]) -> int:
        if function == "min":
            return min(args)
        if function == "max":
            return max(args)
        if function == "abs":
            if len(args) != 1:
                raise ActionRuntimeError("abs() takes exactly one argument")
            return abs(args[0])
        if function == "crc32":
            if len(args) not in (1, 2):
                raise ActionRuntimeError("crc32() takes one or two arguments")
            from repro.util.crc import crc32_of_int

            seed = args[1] if len(args) == 2 else 0
            return crc32_of_int(args[0], seed)
        if function == "rand16":
            # deterministic 16-bit LCG, xorshifted per call
            self._rand_state = (self._rand_state * 75 + 74) % 65537
            return self._rand_state & 0xFFFF
        raise ActionRuntimeError(f"unknown builtin {function!r}")


def _as_bool(value) -> bool:
    return bool(value)


def evaluate(expr: Expr, env: ActionEnvironment) -> int:
    """Evaluate an expression; booleans are represented as 0/1."""
    if isinstance(expr, IntLiteral):
        return expr.value
    if isinstance(expr, BoolLiteral):
        return 1 if expr.value else 0
    if isinstance(expr, Name):
        return env.read(expr.identifier)
    if isinstance(expr, UnaryOp):
        value = evaluate(expr.operand, env)
        if expr.op == "-":
            return -value
        if expr.op == "!":
            return 0 if _as_bool(value) else 1
        if expr.op == "~":
            return ~value
        raise ActionRuntimeError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, BinaryOp):
        return _evaluate_binary(expr, env)
    if isinstance(expr, Conditional):
        if _as_bool(evaluate(expr.condition, env)):
            return evaluate(expr.then_value, env)
        return evaluate(expr.else_value, env)
    if isinstance(expr, Call):
        args = [evaluate(arg, env) for arg in expr.args]
        return env.call_builtin(expr.function, args)
    raise ActionRuntimeError(f"cannot evaluate {expr!r}")


def _evaluate_binary(expr: BinaryOp, env: ActionEnvironment) -> int:
    op = expr.op
    if op == "&&":
        return 1 if (_as_bool(evaluate(expr.left, env)) and _as_bool(evaluate(expr.right, env))) else 0
    if op == "||":
        return 1 if (_as_bool(evaluate(expr.left, env)) or _as_bool(evaluate(expr.right, env))) else 0
    left = evaluate(expr.left, env)
    right = evaluate(expr.right, env)
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ActionRuntimeError("division by zero")
        return int(left / right) if (left < 0) != (right < 0) else left // right
    if op == "%":
        if right == 0:
            raise ActionRuntimeError("modulo by zero")
        return left - right * (int(left / right) if (left < 0) != (right < 0) else left // right)
    if op == "<<":
        return left << right
    if op == ">>":
        return left >> right
    if op == "&":
        return left & right
    if op == "|":
        return left | right
    if op == "^":
        return left ^ right
    if op == "==":
        return 1 if left == right else 0
    if op == "!=":
        return 1 if left != right else 0
    if op == "<":
        return 1 if left < right else 0
    if op == "<=":
        return 1 if left <= right else 0
    if op == ">":
        return 1 if left > right else 0
    if op == ">=":
        return 1 if left >= right else 0
    raise ActionRuntimeError(f"unknown binary operator {op!r}")


def execute(stmts: Sequence[Stmt], env: ActionEnvironment) -> int:
    """Run a statement block in ``env``; returns the number of executed statements.

    The count approximates work done and feeds the simulator's cost model.
    ``while`` loops are bounded by :data:`MAX_LOOP_ITERATIONS` to keep model
    bugs from hanging the simulation.
    """
    executed = 0
    for stmt in stmts:
        executed += _execute_one(stmt, env)
    return executed


def _execute_one(stmt: Stmt, env: ActionEnvironment) -> int:
    if isinstance(stmt, Assign):
        env.write(stmt.target, evaluate(stmt.value, env))
        return 1
    if isinstance(stmt, Send):
        args = [evaluate(arg, env) for arg in stmt.args]
        env.send(stmt.signal, args, stmt.via)
        return 1
    if isinstance(stmt, If):
        if _as_bool(evaluate(stmt.condition, env)):
            return 1 + execute(stmt.then_body, env)
        return 1 + execute(stmt.else_body, env)
    if isinstance(stmt, While):
        executed = 0
        iterations = 0
        while _as_bool(evaluate(stmt.condition, env)):
            iterations += 1
            if iterations > MAX_LOOP_ITERATIONS:
                raise ActionRuntimeError(
                    f"while loop exceeded {MAX_LOOP_ITERATIONS} iterations"
                )
            executed += 1 + execute(stmt.body, env)
        return executed + 1
    if isinstance(stmt, SetTimer):
        duration = evaluate(stmt.duration, env)
        if duration < 0:
            raise ActionRuntimeError(f"negative timer duration {duration}")
        env.set_timer(stmt.timer, duration)
        return 1
    if isinstance(stmt, ResetTimer):
        env.reset_timer(stmt.timer)
        return 1
    raise ActionRuntimeError(f"cannot execute {stmt!r}")
