"""Packages and models: the namespaces that own everything else."""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.errors import ModelError
from repro.uml.classifier import Classifier, PrimitiveType
from repro.uml.element import NamedElement


class Package(NamedElement):
    """A namespace grouping packageable elements."""

    def __init__(self, name: str = "") -> None:
        super().__init__(name)
        self.packaged_elements: List[NamedElement] = []

    def add(self, element: NamedElement) -> NamedElement:
        """Add a packageable element, enforcing per-metaclass name uniqueness."""
        for existing in self.packaged_elements:
            if (
                existing.name
                and existing.name == element.name
                and type(existing) is type(element)
            ):
                raise ModelError(
                    f"package {self.name!r} already contains a "
                    f"{type(element).__name__} named {element.name!r}"
                )
        self.own(element)
        self.packaged_elements.append(element)
        return element

    def member(self, name: str) -> Optional[NamedElement]:
        """Direct member called ``name`` (first match)."""
        for element in self.packaged_elements:
            if element.name == name:
                return element
        return None

    def members_of_type(self, metatype) -> List[NamedElement]:
        return [e for e in self.packaged_elements if isinstance(e, metatype)]

    def subpackages(self) -> List["Package"]:
        return [e for e in self.packaged_elements if isinstance(e, Package)]

    def classifiers(self, recursive: bool = False) -> Iterator[Classifier]:
        for element in self.packaged_elements:
            if isinstance(element, Classifier):
                yield element
            if recursive and isinstance(element, Package):
                yield from element.classifiers(recursive=True)

    def find(self, qualified_name: str) -> Optional[NamedElement]:
        """Resolve a ``::``-separated path relative to this package."""
        head, _, rest = qualified_name.partition(NamedElement.SEPARATOR)
        member = self.member(head)
        if member is None or not rest:
            return member
        if isinstance(member, Package):
            return member.find(rest)
        if isinstance(member, Classifier):
            return _find_in_classifier(member, rest)
        return None


def _find_in_classifier(classifier: Classifier, path: str) -> Optional[NamedElement]:
    head, _, rest = path.partition(NamedElement.SEPARATOR)
    for child in classifier.owned_elements:
        if isinstance(child, NamedElement) and child.name == head:
            if not rest:
                return child
            if isinstance(child, Classifier):
                return _find_in_classifier(child, rest)
    return None


class Model(Package):
    """The root package of a UML model.

    A model carries a small library of predefined primitive types so signal
    parameters can be typed without boilerplate.
    """

    PREDEFINED_PRIMITIVES = (
        ("Bit", 1),
        ("Byte", 8),
        ("Int16", 16),
        ("Int32", 32),
        ("Int64", 64),
        ("Boolean", 1),
        ("Address", 32),
    )

    def __init__(self, name: str = "") -> None:
        super().__init__(name)
        self._primitives = {}
        types_package = Package("PrimitiveTypes")
        self.add(types_package)
        for type_name, bits in self.PREDEFINED_PRIMITIVES:
            primitive = PrimitiveType(type_name, bits)
            types_package.add(primitive)
            self._primitives[type_name] = primitive

    def primitive(self, name: str) -> PrimitiveType:
        try:
            return self._primitives[name]
        except KeyError:
            raise ModelError(f"unknown primitive type {name!r}") from None
