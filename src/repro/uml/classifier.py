"""Classifiers of the UML 2.0 subset: classes, data types, signals, interfaces.

The profile distinguishes *functional* components (active classes owning a
state-machine behaviour) from *structural* components (passive classes whose
composite structure wires parts together).  Both are :class:`Class` here; the
``is_active`` flag and ``classifier_behavior`` make the difference.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.errors import ModelError
from repro.uml.element import NamedElement


class Classifier(NamedElement):
    """Abstract classifier: named, generalisable, with attributes."""

    def __init__(self, name: str = "", is_abstract: bool = False) -> None:
        super().__init__(name)
        self.is_abstract = is_abstract
        self.generals: List[Classifier] = []
        self.attributes: List["Property"] = []  # noqa: F821

    # -- generalisation ------------------------------------------------------

    def add_generalization(self, general: "Classifier") -> None:
        """Make this classifier a specialisation of ``general``."""
        if general is self or self in general.all_generals():
            raise ModelError(
                f"generalization cycle between {self.name!r} and {general.name!r}"
            )
        if general not in self.generals:
            self.generals.append(general)

    def all_generals(self) -> Iterator["Classifier"]:
        """Transitive generalisations, nearest first (pre-order)."""
        for general in self.generals:
            yield general
            yield from general.all_generals()

    def conforms_to(self, other: "Classifier") -> bool:
        """True if ``self`` is ``other`` or (transitively) specialises it."""
        return other is self or other in self.all_generals()

    # -- attributes ----------------------------------------------------------

    def add_attribute(self, prop: "Property") -> "Property":  # noqa: F821
        self.own(prop)
        self.attributes.append(prop)
        return prop

    def attribute(self, name: str) -> Optional["Property"]:  # noqa: F821
        """Own or inherited attribute called ``name``."""
        for prop in self.all_attributes():
            if prop.name == name:
                return prop
        return None

    def all_attributes(self) -> Iterator["Property"]:  # noqa: F821
        """Own attributes, then inherited ones (nearest general first)."""
        yield from self.attributes
        for general in self.all_generals():
            yield from general.attributes


class DataType(Classifier):
    """A classifier whose instances are identified only by their value."""


class PrimitiveType(DataType):
    """A predefined atomic type with a bit width (used for signal sizing)."""

    def __init__(self, name: str, bits: int) -> None:
        super().__init__(name)
        if bits <= 0:
            raise ModelError(f"primitive type {name!r} needs a positive bit width")
        self.bits = bits

    def __repr__(self) -> str:
        return f"PrimitiveType({self.name!r}, bits={self.bits})"


class Enumeration(DataType):
    """A data type whose values are a fixed set of literals."""

    def __init__(self, name: str, literals=()) -> None:
        super().__init__(name)
        self.literals: List[str] = list(literals)

    def add_literal(self, literal: str) -> None:
        if literal in self.literals:
            raise ModelError(f"duplicate literal {literal!r} in {self.name!r}")
        self.literals.append(literal)


class Interface(Classifier):
    """A declared contract: the set of signal names an end may receive."""

    def __init__(self, name: str = "", signal_names=()) -> None:
        super().__init__(name)
        self.signal_names: List[str] = list(signal_names)


class Signal(Classifier):
    """An asynchronous message type exchanged between parts via ports.

    A signal's attributes are its parameters; each must be typed by a
    :class:`PrimitiveType` so the total transfer size is computable.  An
    optional ``payload_bits`` models an opaque data payload (an SDU body)
    on top of the typed parameters.
    """

    HEADER_BITS = 32  # fixed per-signal identification/bookkeeping overhead

    def __init__(self, name: str = "", payload_bits: int = 0) -> None:
        super().__init__(name)
        if payload_bits < 0:
            raise ModelError("payload_bits must be >= 0")
        self.payload_bits = payload_bits

    def parameter_names(self) -> List[str]:
        return [prop.name for prop in self.all_attributes()]

    def size_bits(self) -> int:
        """Total size of one instance on the wire."""
        bits = self.HEADER_BITS + self.payload_bits
        for prop in self.all_attributes():
            prop_type = prop.type
            if isinstance(prop_type, PrimitiveType):
                bits += prop_type.bits
            else:
                raise ModelError(
                    f"signal {self.name!r} parameter {prop.name!r} has no "
                    "primitive type; its wire size is undefined"
                )
        return bits

    def size_bytes(self) -> int:
        return (self.size_bits() + 7) // 8


class Class(Classifier):
    """A UML class, optionally active with a classifier behaviour.

    Composite structure (parts, ports, connectors) lives directly on the
    class, matching the UML 2.0 ``StructuredClassifier`` and
    ``EncapsulatedClassifier`` merge.
    """

    def __init__(self, name: str = "", is_active: bool = False) -> None:
        super().__init__(name)
        self.is_active = is_active
        self.parts: List["Property"] = []  # noqa: F821
        self.ports: List["Port"] = []  # noqa: F821
        self.connectors: List["Connector"] = []  # noqa: F821
        self.nested_classifiers: List[Classifier] = []
        self.classifier_behavior = None  # StateMachine, set via set_behavior()

    # -- composite structure -------------------------------------------------

    def add_part(self, part: "Property") -> "Property":  # noqa: F821
        part.aggregation = "composite"
        self.own(part)
        self.parts.append(part)
        return part

    def part(self, name: str) -> Optional["Property"]:  # noqa: F821
        for part in self.parts:
            if part.name == name:
                return part
        return None

    def add_port(self, port: "Port") -> "Port":  # noqa: F821
        self.own(port)
        self.ports.append(port)
        return port

    def port(self, name: str) -> Optional["Port"]:  # noqa: F821
        for port in self.all_ports():
            if port.name == name:
                return port
        return None

    def all_ports(self) -> Iterator["Port"]:  # noqa: F821
        yield from self.ports
        for general in self.all_generals():
            if isinstance(general, Class):
                yield from general.ports

    def add_connector(self, connector: "Connector") -> "Connector":  # noqa: F821
        self.own(connector)
        self.connectors.append(connector)
        return connector

    def add_nested(self, classifier: Classifier) -> Classifier:
        self.own(classifier)
        self.nested_classifiers.append(classifier)
        return classifier

    # -- behaviour -----------------------------------------------------------

    def set_behavior(self, machine) -> None:
        """Install ``machine`` as the classifier behaviour of this class."""
        if not self.is_active:
            raise ModelError(
                f"class {self.name!r} is passive; only active classes own a "
                "classifier behaviour"
            )
        self.own(machine)
        machine.context = self
        self.classifier_behavior = machine

    @property
    def is_functional(self) -> bool:
        """Paper terminology: active class with behaviour."""
        return self.is_active and self.classifier_behavior is not None

    @property
    def is_structural(self) -> bool:
        """Paper terminology: passive class defining composite structure."""
        return not self.is_active
