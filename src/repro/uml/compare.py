"""Semantic model fingerprinting (id-independent equality).

XMI ids depend on element creation order, so byte-identical round-trips are
not guaranteed; semantic equality is.  :func:`model_fingerprint` renders a
model to a canonical text that ignores ids and ordering artefacts — two
models with the same fingerprint are the same design.
"""

from __future__ import annotations

from typing import List

from repro.uml.classifier import (
    Class,
    Enumeration,
    Interface,
    PrimitiveType,
    Signal,
)
from repro.uml.dependency import Dependency
from repro.uml.element import NamedElement
from repro.uml.instance import InstanceSpecification
from repro.uml.packages import Package
from repro.uml.statemachine import SignalTrigger, StateMachine, TimerTrigger
from repro.uml.actions import unparse_block


def model_fingerprint(root: Package) -> str:
    """A canonical, id-free text rendering of a model."""
    lines: List[str] = []
    _package(root, lines, "")
    return "\n".join(lines)


def _stereotypes(element) -> str:
    parts = []
    for application in element.stereotype_applications:
        values = ",".join(
            f"{k}={application.values[k]!r}" for k in sorted(application.values)
        )
        parts.append(f"«{application.stereotype.name}»({values})")
    return " ".join(sorted(parts))


def _package(package: Package, lines: List[str], pad: str) -> None:
    lines.append(f"{pad}package {package.name} {_stereotypes(package)}".rstrip())
    for element in sorted(
        package.packaged_elements, key=lambda e: (type(e).__name__, e.name)
    ):
        _element(element, lines, pad + "  ")


def _element(element: NamedElement, lines: List[str], pad: str) -> None:
    if isinstance(element, Package):
        _package(element, lines, pad)
    elif isinstance(element, Signal):
        params = ",".join(
            f"{a.name}:{a.type.name if a.type else '?'}" for a in element.attributes
        )
        lines.append(
            f"{pad}signal {element.name}({params}) payload={element.payload_bits} "
            f"{_stereotypes(element)}".rstrip()
        )
    elif isinstance(element, PrimitiveType):
        lines.append(f"{pad}primitive {element.name}:{element.bits}")
    elif isinstance(element, Enumeration):
        lines.append(f"{pad}enum {element.name}[{','.join(element.literals)}]")
    elif isinstance(element, Interface):
        lines.append(
            f"{pad}interface {element.name}[{','.join(element.signal_names)}]"
        )
    elif isinstance(element, Class):
        _class(element, lines, pad)
    elif isinstance(element, Dependency):
        clients = ",".join(sorted(c.name for c in element.clients))
        suppliers = ",".join(sorted(s.name for s in element.suppliers))
        lines.append(
            f"{pad}dependency {element.name} {clients}->{suppliers} "
            f"{_stereotypes(element)}".rstrip()
        )
    elif isinstance(element, InstanceSpecification):
        classifier = element.classifier.name if element.classifier else "?"
        slots = ",".join(
            f"{k}={element.slots[k].value!r}" for k in sorted(element.slots)
        )
        lines.append(
            f"{pad}instance {element.name}:{classifier}({slots}) "
            f"{_stereotypes(element)}".rstrip()
        )
    else:
        lines.append(f"{pad}{type(element).__name__} {element.name}")


def _class(klass: Class, lines: List[str], pad: str) -> None:
    kind = "active" if klass.is_active else "passive"
    generals = ",".join(sorted(g.name for g in klass.generals))
    lines.append(
        f"{pad}class {klass.name} [{kind}] generals=({generals}) "
        f"{_stereotypes(klass)}".rstrip()
    )
    inner = pad + "  "
    for attribute in sorted(klass.attributes, key=lambda a: a.name):
        type_name = attribute.type.name if attribute.type else "?"
        lines.append(f"{inner}attr {attribute.name}:{type_name}")
    for part in sorted(klass.parts, key=lambda p: p.name):
        type_name = part.type.name if part.type else "?"
        lines.append(
            f"{inner}part {part.name}:{type_name} {_stereotypes(part)}".rstrip()
        )
    for port in sorted(klass.ports, key=lambda p: p.name):
        lines.append(
            f"{inner}port {port.name} provided=({','.join(sorted(port.provided))}) "
            f"required=({','.join(sorted(port.required))})"
        )
    connector_keys = sorted(
        tuple(sorted(end.describe() for end in c.ends)) for c in klass.connectors
    )
    for key in connector_keys:
        lines.append(f"{inner}connector {' -- '.join(key)}")
    for nested in sorted(klass.nested_classifiers, key=lambda n: n.name):
        _element(nested, lines, inner)
    if isinstance(klass.classifier_behavior, StateMachine):
        _machine(klass.classifier_behavior, lines, inner)


def _machine(machine: StateMachine, lines: List[str], pad: str) -> None:
    lines.append(f"{pad}machine {machine.name}")
    inner = pad + "  "
    for name in sorted(machine.variables):
        lines.append(f"{inner}var {name}={machine.variables[name]}")
    for state in machine.states:
        marker = "*" if state is machine.initial_state else ""
        final = "!" if state.is_final else ""
        nesting = ""
        if state.parent is not None:
            initial_sub = (
                "*" if state.parent.initial_substate is state else ""
            )
            nesting = f" in {state.parent.name}{initial_sub}"
        lines.append(f"{inner}state {marker}{state.name}{final}{nesting}")
        if state.entry:
            lines.append(f"{inner}  entry: {unparse_block(state.entry)!r}")
        if state.exit:
            lines.append(f"{inner}  exit: {unparse_block(state.exit)!r}")
    for transition in machine.transitions:
        trigger = transition.trigger
        if isinstance(trigger, SignalTrigger):
            trigger_text = f"sig:{trigger.signal_name}({','.join(trigger.parameter_names)})"
        elif isinstance(trigger, TimerTrigger):
            trigger_text = f"timer:{trigger.timer_name}"
        else:
            trigger_text = "completion"
        guard = transition.guard.unparse() if transition.guard else ""
        internal = " internal" if transition.internal else ""
        lines.append(
            f"{inner}transition {transition.source.name}->{transition.target.name} "
            f"on {trigger_text} [{guard}] p{transition.priority}{internal} "
            f"effect={unparse_block(transition.effect)!r}"
        )
