"""XMI-like XML serialisation of models, including stereotype applications.

The paper's profiling tool "parses the XML presentation of the UML 2.0
model to gather process group information" (Section 4.4).  This module
provides that XML presentation: :func:`write_model` emits a deterministic
document, :func:`read_model` reconstructs an equivalent model.  Round-trip
equality is covered by property-based tests.

The format follows XMI conventions (``packagedElement`` with ``xmi:type``
attributes, idrefs) without claiming schema conformance to OMG XMI — the
original tool chain (TAU G2) used its own dialect as well.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, List, Optional, Sequence

from repro.errors import XmiError
from repro.uml.classifier import (
    Class,
    Classifier,
    Enumeration,
    Interface,
    PrimitiveType,
    Signal,
)
from repro.uml.dependency import Dependency
from repro.uml.element import Element, NamedElement
from repro.uml.instance import InstanceSpecification
from repro.uml.packages import Model, Package
from repro.uml.profile import Profile
from repro.uml.statemachine import (
    CompletionTrigger,
    SignalTrigger,
    StateMachine,
    TimerTrigger,
)
from repro.uml.structure import Connector, ConnectorEnd, Port, Property
from repro.uml.actions import unparse_block
from repro.uml.visitor import iter_tree

XMI_VERSION = "2.1"


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------


class _Writer:
    def __init__(self, model: Model) -> None:
        self.model = model
        self.ids: Dict[int, str] = {}
        self._next = 1
        for element in iter_tree(model):
            self._assign(element)

    def _assign(self, element: Element) -> str:
        key = id(element)
        if key not in self.ids:
            self.ids[key] = f"id{self._next}"
            element.xmi_id = self.ids[key]
            self._next += 1
        return self.ids[key]

    def ref(self, element: Element) -> str:
        key = id(element)
        if key not in self.ids:
            # Cross-model reference (e.g. a mapping dependency pointing at a
            # platform owned by another model): emit a symbolic external ref.
            name = getattr(element, "qualified_name", "") or getattr(
                element, "name", ""
            )
            if not name:
                raise XmiError(
                    f"element {element!r} is neither owned by the model nor "
                    "nameable as an external reference"
                )
            return f"ext:{name}"
        return self.ids[key]

    # -- document ---------------------------------------------------------------

    def document(self) -> ET.Element:
        root = ET.Element("XMI", {"version": XMI_VERSION})
        model_node = self.package_node(self.model)
        model_node.set("type", "uml:Model")
        root.append(model_node)
        applications = ET.SubElement(root, "stereotypeApplications")
        for element in iter_tree(self.model):
            for application in element.stereotype_applications:
                node = ET.SubElement(
                    applications,
                    "apply",
                    {
                        "stereotype": application.stereotype.qualified_name,
                        "element": self.ref(element),
                    },
                )
                for tag_name in sorted(application.values):
                    value = application.values[tag_name]
                    ET.SubElement(
                        node,
                        "tag",
                        {
                            "name": tag_name,
                            "value": _value_to_text(value),
                            "kind": _value_kind(value),
                        },
                    )
        return root

    # -- element serialisers -------------------------------------------------------

    def package_node(self, package: Package) -> ET.Element:
        node = ET.Element("packagedElement", {"type": "uml:Package"})
        node.set("id", self.ref(package))
        node.set("name", package.name)
        self._attach_comments(node, package)
        for member in package.packaged_elements:
            child = self.packageable_node(member)
            if child is not None:
                node.append(child)
        return node

    def packageable_node(self, element: NamedElement) -> Optional[ET.Element]:
        if isinstance(element, Profile):
            # Profiles are definitions, not model content: referenced by name.
            return None
        if isinstance(element, Package):
            return self.package_node(element)
        if isinstance(element, Signal):
            return self.signal_node(element)
        if isinstance(element, PrimitiveType):
            node = self._named("packagedElement", element, "uml:PrimitiveType")
            node.set("bits", str(element.bits))
            return node
        if isinstance(element, Enumeration):
            node = self._named("packagedElement", element, "uml:Enumeration")
            for literal in element.literals:
                ET.SubElement(node, "ownedLiteral", {"name": literal})
            return node
        if isinstance(element, Interface):
            node = self._named("packagedElement", element, "uml:Interface")
            node.set("signals", ",".join(element.signal_names))
            return node
        if isinstance(element, Class):
            return self.class_node(element)
        if isinstance(element, Dependency):
            return self.dependency_node(element)
        if isinstance(element, InstanceSpecification):
            return self.instance_node(element)
        raise XmiError(f"cannot serialise packaged element {element!r}")

    def _named(self, tag: str, element: NamedElement, xmi_type: str) -> ET.Element:
        node = ET.Element(tag, {"type": xmi_type})
        node.set("id", self.ref(element))
        node.set("name", element.name)
        self._attach_comments(node, element)
        return node

    def _attach_comments(self, node: ET.Element, element: Element) -> None:
        for comment in element.comments:
            ET.SubElement(node, "ownedComment").text = comment.body

    def signal_node(self, signal: Signal) -> ET.Element:
        node = self._named("packagedElement", signal, "uml:Signal")
        node.set("payloadBits", str(signal.payload_bits))
        for attribute in signal.attributes:
            attr_node = ET.SubElement(node, "ownedAttribute", {"name": attribute.name})
            if attribute.type is not None:
                attr_node.set("typeName", attribute.type.name)
        return node

    def class_node(self, klass: Class) -> ET.Element:
        node = self._named("packagedElement", klass, "uml:Class")
        node.set("isActive", "true" if klass.is_active else "false")
        for general in klass.generals:
            ET.SubElement(node, "generalization", {"general": self.ref(general)})
        for attribute in klass.attributes:
            node.append(self.property_node(attribute, "ownedAttribute"))
        for part in klass.parts:
            node.append(self.property_node(part, "ownedPart"))
        for port in klass.ports:
            port_node = ET.SubElement(
                node,
                "ownedPort",
                {"id": self.ref(port), "name": port.name},
            )
            if port.provided:
                port_node.set("provided", ",".join(port.provided))
            if port.required:
                port_node.set("required", ",".join(port.required))
        for connector in klass.connectors:
            connector_node = ET.SubElement(
                node, "ownedConnector", {"name": connector.name}
            )
            for end in connector.ends:
                end_node = ET.SubElement(
                    connector_node, "end", {"port": self.ref(end.port)}
                )
                if end.part is not None:
                    end_node.set("part", self.ref(end.part))
        for nested in klass.nested_classifiers:
            nested_node = self.packageable_node(nested)
            if nested_node is not None:
                nested_node.tag = "nestedClassifier"
                node.append(nested_node)
        if klass.classifier_behavior is not None:
            node.append(self.machine_node(klass.classifier_behavior))
        return node

    def property_node(self, prop: Property, tag: str) -> ET.Element:
        node = ET.Element(tag, {"id": self.ref(prop), "name": prop.name})
        if prop.type is not None:
            node.set("typeRef", self.ref(prop.type))
        node.set("aggregation", prop.aggregation)
        node.set("lower", str(prop.lower))
        node.set("upper", str(prop.upper))
        if prop.default is not None:
            node.set("default", str(prop.default))
        return node

    def machine_node(self, machine: StateMachine) -> ET.Element:
        node = ET.Element(
            "ownedBehavior", {"type": "uml:StateMachine", "name": machine.name}
        )
        node.set("id", self.ref(machine))
        for name in sorted(machine.variables):
            ET.SubElement(
                node, "variable", {"name": name, "initial": str(machine.variables[name])}
            )
        for state in machine.states:
            state_node = ET.SubElement(node, "state", {"name": state.name})
            if state is machine.initial_state:
                state_node.set("initial", "true")
            if state.is_final:
                state_node.set("final", "true")
            if state.parent is not None:
                state_node.set("parent", state.parent.name)
                if state.parent.initial_substate is state:
                    state_node.set("initialSub", "true")
            if state.entry:
                ET.SubElement(state_node, "entry").text = unparse_block(state.entry)
            if state.exit:
                ET.SubElement(state_node, "exit").text = unparse_block(state.exit)
        for transition in machine.transitions:
            transition_node = ET.SubElement(
                node,
                "transition",
                {
                    "source": transition.source.name,
                    "target": transition.target.name,
                    "priority": str(transition.priority),
                },
            )
            if transition.internal:
                transition_node.set("internal", "true")
            trigger = transition.trigger
            if isinstance(trigger, SignalTrigger):
                transition_node.set("kind", "signal")
                transition_node.set("signal", trigger.signal_name)
                if trigger.parameter_names:
                    transition_node.set("params", ",".join(trigger.parameter_names))
            elif isinstance(trigger, TimerTrigger):
                transition_node.set("kind", "timer")
                transition_node.set("timer", trigger.timer_name)
            else:
                transition_node.set("kind", "completion")
            if transition.guard is not None:
                transition_node.set("guard", transition.guard.unparse())
            if transition.effect:
                ET.SubElement(transition_node, "effect").text = unparse_block(
                    transition.effect
                )
        return node

    def dependency_node(self, dependency: Dependency) -> ET.Element:
        node = self._named("packagedElement", dependency, "uml:Dependency")
        node.set("clients", ",".join(self.ref(c) for c in dependency.clients))
        node.set("suppliers", ",".join(self.ref(s) for s in dependency.suppliers))
        return node

    def instance_node(self, instance: InstanceSpecification) -> ET.Element:
        node = self._named(
            "packagedElement", instance, "uml:InstanceSpecification"
        )
        if instance.classifier is not None:
            node.set("classifier", self.ref(instance.classifier))
        for feature_name in sorted(instance.slots):
            slot = instance.slots[feature_name]
            ET.SubElement(
                node,
                "slot",
                {
                    "feature": feature_name,
                    "value": _value_to_text(slot.value),
                    "kind": _value_kind(slot.value),
                },
            )
        return node


def _value_kind(value) -> str:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "real"
    return "string"


def _value_to_text(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _text_to_value(text: str, kind: str):
    if kind == "bool":
        return text == "true"
    if kind == "int":
        return int(text)
    if kind == "real":
        return float(text)
    return text


def model_to_xml(model: Model) -> str:
    """Serialise ``model`` to an XMI-like XML string (deterministic)."""
    writer = _Writer(model)
    root = writer.document()
    _indent(root)
    return ET.tostring(root, encoding="unicode")


def write_model(model: Model, path) -> None:
    """Serialise ``model`` to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(model_to_xml(model))


def _indent(node: ET.Element, level: int = 0) -> None:
    pad = "\n" + "  " * level
    if len(node):
        if not node.text or not node.text.strip():
            node.text = pad + "  "
        for child in node:
            _indent(child, level + 1)
            if not child.tail or not child.tail.strip():
                child.tail = pad + "  "
        if not node[-1].tail or not node[-1].tail.strip():
            node[-1].tail = pad
    elif level and (not node.tail or not node.tail.strip()):
        node.tail = pad


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------


class _Reader:
    def __init__(self, profiles: Sequence[Profile]) -> None:
        self.profiles = list(profiles)
        self.by_id: Dict[str, Element] = {}
        self.pending: List = []  # deferred reference fixups

    def register(self, node: ET.Element, element: Element) -> None:
        xmi_id = node.get("id")
        if xmi_id:
            element.xmi_id = xmi_id
            self.by_id[xmi_id] = element

    def resolve(self, xmi_id: str) -> Element:
        try:
            return self.by_id[xmi_id]
        except KeyError:
            raise XmiError(f"dangling reference {xmi_id!r}") from None

    # -- parsing --------------------------------------------------------------------

    def read_document(self, root: ET.Element) -> Model:
        model_node = root.find("packagedElement")
        if model_node is None or model_node.get("type") != "uml:Model":
            raise XmiError("document has no uml:Model root element")
        model = Model(model_node.get("name", ""))
        self.register(model_node, model)
        for comment_node in model_node.findall("ownedComment"):
            model.add_comment(comment_node.text or "")
        # The Model constructor pre-creates PrimitiveTypes; drop them so the
        # document's own copies land in the same place without duplication.
        self._absorb_package(model, model_node)
        for fixup in self.pending:
            fixup()
        applications = root.find("stereotypeApplications")
        if applications is not None:
            for node in applications.findall("apply"):
                self._apply_stereotype(node)
        return model

    def _absorb_package(self, package: Package, node: ET.Element) -> None:
        for child in node:
            if child.tag != "packagedElement":
                continue
            element = self._read_packageable(child)
            if element is not None:
                existing = package.member(element.name)
                if existing is not None and type(existing) is type(element):
                    # Predefined content (e.g. PrimitiveTypes): merge by id.
                    if child.get("id"):
                        self.by_id[child.get("id")] = existing
                    if isinstance(element, Package) and isinstance(existing, Package):
                        self._merge_predefined(existing, element, child)
                    continue
                package.add(element)

    def _merge_predefined(
        self, existing: Package, parsed: Package, node: ET.Element
    ) -> None:
        """Fold a parsed package into a predefined one with the same name."""
        for child in node.findall("packagedElement"):
            name = child.get("name", "")
            member = existing.member(name)
            if member is not None:
                if child.get("id"):
                    self.by_id[child.get("id")] = member
            else:
                parsed_member = parsed.member(name)
                if parsed_member is not None:
                    parsed.disown(parsed_member)
                    parsed.packaged_elements.remove(parsed_member)
                    existing.add(parsed_member)

    def _read_packageable(self, node: ET.Element) -> Optional[NamedElement]:
        element = self._read_packageable_inner(node)
        if element is not None:
            for comment_node in node.findall("ownedComment"):
                element.add_comment(comment_node.text or "")
        return element

    def _read_packageable_inner(self, node: ET.Element) -> Optional[NamedElement]:
        xmi_type = node.get("type", "")
        name = node.get("name", "")
        if xmi_type == "uml:Package":
            package = Package(name)
            self.register(node, package)
            self._absorb_package(package, node)
            return package
        if xmi_type == "uml:PrimitiveType":
            primitive = PrimitiveType(name, int(node.get("bits", "32")))
            self.register(node, primitive)
            return primitive
        if xmi_type == "uml:Enumeration":
            literals = [l.get("name", "") for l in node.findall("ownedLiteral")]
            enumeration = Enumeration(name, literals)
            self.register(node, enumeration)
            return enumeration
        if xmi_type == "uml:Interface":
            signals_attr = node.get("signals", "")
            names = [s for s in signals_attr.split(",") if s]
            interface = Interface(name, names)
            self.register(node, interface)
            return interface
        if xmi_type == "uml:Signal":
            return self._read_signal(node)
        if xmi_type == "uml:Class":
            return self._read_class(node)
        if xmi_type == "uml:Dependency":
            return self._read_dependency(node)
        if xmi_type == "uml:InstanceSpecification":
            return self._read_instance(node)
        raise XmiError(f"unknown packaged element type {xmi_type!r}")

    def _read_signal(self, node: ET.Element) -> Signal:
        signal = Signal(node.get("name", ""), int(node.get("payloadBits", "0")))
        self.register(node, signal)
        for attr_node in node.findall("ownedAttribute"):
            prop = Property(attr_node.get("name", ""))
            type_name = attr_node.get("typeName")
            if type_name:
                self.pending.append(
                    lambda p=prop, t=type_name, s=signal: _bind_primitive(p, t, s)
                )
            signal.add_attribute(prop)
        return signal

    def _read_class(self, node: ET.Element) -> Class:
        klass = Class(node.get("name", ""), is_active=node.get("isActive") == "true")
        self.register(node, klass)
        for general_node in node.findall("generalization"):
            ref = general_node.get("general", "")
            self.pending.append(
                lambda k=klass, r=ref: k.add_generalization(self.resolve(r))
            )
        for attr_node in node.findall("ownedAttribute"):
            klass.add_attribute(self._read_property(attr_node))
        for part_node in node.findall("ownedPart"):
            klass.add_part(self._read_property(part_node))
        for port_node in node.findall("ownedPort"):
            provided = [s for s in port_node.get("provided", "").split(",") if s]
            required = [s for s in port_node.get("required", "").split(",") if s]
            port = Port(port_node.get("name", ""), provided, required)
            self.register(port_node, port)
            klass.add_port(port)
        for nested_node in node.findall("nestedClassifier"):
            nested = self._read_packageable(nested_node)
            if isinstance(nested, Classifier):
                klass.add_nested(nested)
        for connector_node in node.findall("ownedConnector"):
            self.pending.append(
                lambda k=klass, n=connector_node: self._finish_connector(k, n)
            )
        behavior_node = node.find("ownedBehavior")
        if behavior_node is not None:
            machine = self._read_machine(behavior_node)
            klass.set_behavior(machine)
        return klass

    def _read_property(self, node: ET.Element) -> Property:
        prop = Property(
            node.get("name", ""),
            aggregation=node.get("aggregation", "none"),
            lower=int(node.get("lower", "1")),
            upper=int(node.get("upper", "1")),
        )
        if node.get("default") is not None:
            prop.default = node.get("default")
        self.register(node, prop)
        type_ref = node.get("typeRef")
        if type_ref:
            self.pending.append(
                lambda p=prop, r=type_ref: setattr(p, "type", self.resolve(r))
            )
        return prop

    def _finish_connector(self, klass: Class, node: ET.Element) -> None:
        connector = Connector(node.get("name", ""))
        ends = []
        for end_node in node.findall("end"):
            port = self.resolve(end_node.get("port", ""))
            part_ref = end_node.get("part")
            part = self.resolve(part_ref) if part_ref else None
            ends.append(ConnectorEnd(port, part))
        if len(ends) != 2:
            raise XmiError(f"connector {connector.name!r} must have two ends")
        connector.set_ends(ends[0], ends[1])
        klass.add_connector(connector)

    def _read_machine(self, node: ET.Element) -> StateMachine:
        from repro.uml.action_lang import parse_actions, parse_expression

        machine = StateMachine(node.get("name", ""))
        self.register(node, machine)
        for variable_node in node.findall("variable"):
            machine.variable(
                variable_node.get("name", ""), int(variable_node.get("initial", "0"))
            )
        for state_node in node.findall("state"):
            if state_node.get("final") == "true":
                machine.final_state(state_node.get("name", "final"))
                continue
            entry_node = state_node.find("entry")
            exit_node = state_node.find("exit")
            parent_name = state_node.get("parent")
            if parent_name:
                machine.state(
                    state_node.get("name", ""),
                    entry=entry_node.text or "" if entry_node is not None else "",
                    exit=exit_node.text or "" if exit_node is not None else "",
                    initial=state_node.get("initialSub") == "true",
                    parent=parent_name,
                )
            else:
                machine.state(
                    state_node.get("name", ""),
                    entry=entry_node.text or "" if entry_node is not None else "",
                    exit=exit_node.text or "" if exit_node is not None else "",
                    initial=state_node.get("initial") == "true",
                )
        for transition_node in node.findall("transition"):
            kind = transition_node.get("kind", "completion")
            if kind == "signal":
                params = [
                    p for p in transition_node.get("params", "").split(",") if p
                ]
                trigger: object = SignalTrigger(
                    transition_node.get("signal", ""), params
                )
            elif kind == "timer":
                trigger = TimerTrigger(transition_node.get("timer", ""))
            else:
                trigger = CompletionTrigger()
            effect_node = transition_node.find("effect")
            transition = machine.transition(
                transition_node.get("source", ""),
                transition_node.get("target", ""),
                trigger=trigger,
                effect=effect_node.text or "" if effect_node is not None else "",
                priority=int(transition_node.get("priority", "0")),
                internal=transition_node.get("internal") == "true",
            )
            guard_text = transition_node.get("guard")
            if guard_text:
                transition.guard = parse_expression(guard_text)
        return machine

    def _read_dependency(self, node: ET.Element) -> Dependency:
        dependency = Dependency(node.get("name", ""))
        self.register(node, dependency)
        clients = [r for r in node.get("clients", "").split(",") if r]
        suppliers = [r for r in node.get("suppliers", "").split(",") if r]
        for ref in clients:
            if ref.startswith("ext:"):
                continue  # cross-model reference: unresolvable here by design
            self.pending.append(
                lambda d=dependency, r=ref: d.add_client(self.resolve(r))
            )
        for ref in suppliers:
            if ref.startswith("ext:"):
                continue
            self.pending.append(
                lambda d=dependency, r=ref: d.add_supplier(self.resolve(r))
            )
        return dependency

    def _read_instance(self, node: ET.Element) -> InstanceSpecification:
        instance = InstanceSpecification(node.get("name", ""))
        self.register(node, instance)
        classifier_ref = node.get("classifier")
        if classifier_ref:
            self.pending.append(
                lambda i=instance, r=classifier_ref: setattr(
                    i, "classifier", self.resolve(r)
                )
            )
        for slot_node in node.findall("slot"):
            value = _text_to_value(
                slot_node.get("value", ""), slot_node.get("kind", "string")
            )
            # bypass attribute checking: classifier may resolve later
            from repro.uml.instance import Slot

            instance.slots[slot_node.get("feature", "")] = Slot(
                slot_node.get("feature", ""), value
            )
        return instance

    def _apply_stereotype(self, node: ET.Element) -> None:
        qualified = node.get("stereotype", "")
        element = self.resolve(node.get("element", ""))
        profile, stereotype_name = self._find_stereotype(qualified)
        values = {}
        for tag_node in node.findall("tag"):
            values[tag_node.get("name", "")] = _text_to_value(
                tag_node.get("value", ""), tag_node.get("kind", "string")
            )
        profile.apply(element, stereotype_name, **values)

    def _find_stereotype(self, qualified: str):
        simple = qualified.rsplit(NamedElement.SEPARATOR, 1)[-1]
        for profile in self.profiles:
            if profile.stereotype(simple) is not None:
                return profile, simple
        raise XmiError(
            f"no registered profile defines stereotype {qualified!r}; "
            "pass the profile to read_model(profiles=...)"
        )


def _bind_primitive(prop: Property, type_name: str, signal: Signal) -> None:
    root = signal.root()
    if isinstance(root, Model):
        try:
            prop.type = root.primitive(type_name)
            return
        except Exception:  # fall through to a fresh primitive
            pass
    prop.type = PrimitiveType(type_name, 32)


def xml_to_model(text: str, profiles: Sequence[Profile] = ()) -> Model:
    """Parse an XMI-like XML string back into a :class:`Model`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise XmiError(f"malformed XML: {exc}") from exc
    if root.tag != "XMI":
        raise XmiError(f"expected XMI document, found <{root.tag}>")
    return _Reader(profiles).read_document(root)


def read_model(path, profiles: Sequence[Profile] = ()) -> Model:
    """Parse the XMI file at ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return xml_to_model(handle.read(), profiles)
