"""Well-formedness validation for the UML subset.

Validation is tool-style: it collects :class:`Issue` records rather than
raising on the first problem, so a designer sees everything wrong at once
(the behaviour of the UML tools the paper's flow relies on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import ValidationError
from repro.uml.classifier import Class, Signal
from repro.uml.element import Element
from repro.uml.statemachine import SignalTrigger, StateMachine
from repro.uml.structure import Connector, Port
from repro.uml.visitor import iter_instances

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


@dataclass
class Issue:
    """One validation finding."""

    severity: str
    rule: str
    message: str
    element: object = None

    def __str__(self) -> str:
        return f"[{self.severity}] {self.rule}: {self.message}"


@dataclass
class ValidationReport:
    """All findings from one validation run."""

    issues: List[Issue] = field(default_factory=list)

    def add(self, severity: str, rule: str, message: str, element=None) -> None:
        self.issues.append(Issue(severity, rule, message, element))

    def error(self, rule: str, message: str, element=None) -> None:
        self.add(SEVERITY_ERROR, rule, message, element)

    def warning(self, rule: str, message: str, element=None) -> None:
        self.add(SEVERITY_WARNING, rule, message, element)

    @property
    def errors(self) -> List[Issue]:
        return [i for i in self.issues if i.severity == SEVERITY_ERROR]

    @property
    def warnings(self) -> List[Issue]:
        return [i for i in self.issues if i.severity == SEVERITY_WARNING]

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_on_errors(self) -> None:
        if self.errors:
            summary = "; ".join(str(issue) for issue in self.errors[:5])
            raise ValidationError(
                f"{len(self.errors)} validation error(s): {summary}", self.errors
            )

    def render(self) -> str:
        if not self.issues:
            return "validation: ok (no issues)"
        return "\n".join(str(issue) for issue in self.issues)


def validate_model(root: Element) -> ValidationReport:
    """Run all well-formedness rules over the tree rooted at ``root``."""
    report = ValidationReport()
    _check_active_classes(root, report)
    _check_connectors(root, report)
    _check_state_machines(root, report)
    _check_required_tags(root, report)
    return report


def _check_active_classes(root: Element, report: ValidationReport) -> None:
    for klass in iter_instances(root, Class):
        if klass.is_active and klass.classifier_behavior is None:
            report.error(
                "active-class-behavior",
                f"active class {klass.qualified_name!r} has no classifier behaviour",
                klass,
            )
        if not klass.is_active and klass.classifier_behavior is not None:
            report.error(
                "passive-class-behavior",
                f"passive class {klass.qualified_name!r} owns a behaviour",
                klass,
            )


def _check_connector_compatibility(connector, report: ValidationReport, owner) -> None:
    """Warn when no signal can flow over an assembly connector.

    Both ends constrained and neither end's required set intersects the
    other's provided set ⇒ the connector is dead wiring.
    """
    if len(connector.ends) != 2 or not connector.is_assembly:
        return
    end1, end2 = connector.ends
    if not (end1.port.is_constrained and end2.port.is_constrained):
        return
    forward = set(end1.port.required) & set(end2.port.provided)
    backward = set(end2.port.required) & set(end1.port.provided)
    if not forward and not backward:
        report.warning(
            "connector-dead",
            f"connector {connector.describe()!r} in {owner.qualified_name!r} "
            "can carry no signal (required/provided sets are disjoint)",
            connector,
        )


def _check_connectors(root: Element, report: ValidationReport) -> None:
    for klass in iter_instances(root, Class):
        part_set = set(klass.parts)
        port_set = set(klass.all_ports())
        for connector in klass.connectors:
            _check_connector_compatibility(connector, report, klass)
            if len(connector.ends) != 2:
                report.error(
                    "connector-binary",
                    f"connector {connector.describe()!r} in "
                    f"{klass.qualified_name!r} must have exactly two ends",
                    connector,
                )
                continue
            for end in connector.ends:
                if end.part is None:
                    if end.port not in port_set:
                        report.error(
                            "connector-delegation-port",
                            f"connector {connector.describe()!r}: boundary end "
                            f"port {end.port.name!r} is not a port of "
                            f"{klass.qualified_name!r}",
                            connector,
                        )
                else:
                    if end.part not in part_set:
                        report.error(
                            "connector-part",
                            f"connector {connector.describe()!r}: part "
                            f"{end.part.name!r} is not a part of "
                            f"{klass.qualified_name!r}",
                            connector,
                        )
                        continue
                    part_type = end.part.type
                    if isinstance(part_type, Class):
                        if end.port not in set(part_type.all_ports()):
                            report.error(
                                "connector-port",
                                f"connector {connector.describe()!r}: "
                                f"{end.part.name!r} (a {part_type.name}) has no "
                                f"port {end.port.name!r}",
                                connector,
                            )


def _check_state_machines(root: Element, report: ValidationReport) -> None:
    model_root = root.root()
    declared_signals = {s.name for s in iter_instances(model_root, Signal)}
    for machine in iter_instances(root, StateMachine):
        if machine.initial_state is None:
            report.error(
                "machine-initial",
                f"state machine {machine.qualified_name!r} has no initial state",
                machine,
            )
        if not machine.states:
            report.error(
                "machine-states",
                f"state machine {machine.qualified_name!r} has no states",
                machine,
            )
        state_set = set(machine.states)
        for transition in machine.transitions:
            if transition.source not in state_set or transition.target not in state_set:
                report.error(
                    "transition-states",
                    f"transition {transition.describe()!r} references states "
                    f"outside machine {machine.qualified_name!r}",
                    transition,
                )
            if transition.source.is_final:
                report.error(
                    "transition-from-final",
                    f"transition {transition.describe()!r} leaves a final state",
                    transition,
                )
            trigger = transition.trigger
            if isinstance(trigger, SignalTrigger) and declared_signals:
                if trigger.signal_name not in declared_signals:
                    report.warning(
                        "trigger-signal-declared",
                        f"machine {machine.qualified_name!r} consumes undeclared "
                        f"signal {trigger.signal_name!r}",
                        transition,
                    )
        if declared_signals:
            for signal_name in machine.sent_signal_names():
                if signal_name not in declared_signals:
                    report.warning(
                        "send-signal-declared",
                        f"machine {machine.qualified_name!r} sends undeclared "
                        f"signal {signal_name!r}",
                        machine,
                    )
        for state in machine.states:
            if state.is_composite and state.initial_substate is None:
                report.warning(
                    "composite-initial",
                    f"composite state {state.name!r} in "
                    f"{machine.qualified_name!r} has no initial substate; "
                    "entering it directly activates no substate",
                    state,
                )
        reachable = _reachable_states(machine)
        for state in machine.states:
            if state not in reachable:
                report.warning(
                    "state-unreachable",
                    f"state {state.name!r} in {machine.qualified_name!r} is "
                    "unreachable from the initial state",
                    state,
                )


def reachable_states(machine: StateMachine):
    """States reachable from the initial state under hierarchical entry.

    Public because the static-analysis engine (:mod:`repro.analysis`)
    shares this reachability computation for its unreachable-state rule.
    """
    if machine.initial_state is None:
        return set(machine.states)
    reachable = set()
    frontier = [machine.initial_state]

    def absorb(state):
        """Entering ``state`` activates its ancestors and descends into the
        initial-substate chain; a leaf makes enclosing composites active."""
        added = []
        node = state
        while node is not None and node not in reachable:
            reachable.add(node)
            added.append(node)
            node = node.parent
        node = state
        while node.initial_substate is not None:
            node = node.initial_substate
            if node not in reachable:
                reachable.add(node)
                added.append(node)
        return added

    frontier = absorb(machine.initial_state)
    while frontier:
        state = frontier.pop()
        for transition in machine.transitions:
            if transition.source is state and transition.target not in reachable:
                frontier.extend(absorb(transition.target))
    return reachable


#: Backwards-compatible alias (the name this module used internally).
_reachable_states = reachable_states


def _check_required_tags(root: Element, report: ValidationReport) -> None:
    for element in iter_instances(root, Element):
        for application in element.stereotype_applications:
            for tag_name in application.missing_required_tags():
                report.error(
                    "required-tag",
                    f"«{application.stereotype.name}» on "
                    f"{getattr(element, 'qualified_name', element)!r} is missing "
                    f"required tag {tag_name!r}",
                    element,
                )
