"""UML 2.0 second-class extensibility: profiles, stereotypes, tagged values.

The paper deliberately restricts itself to second-class extensibility
(Section 2): stereotypes extend existing metaclasses, grouped in a profile,
with tag definitions supplying typed parameters.  This module implements
that mechanism generically; :mod:`repro.tutprofile` instantiates it.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.errors import ProfileError
from repro.uml.element import Element, NamedElement
from repro.uml.packages import Package


class TagType:
    """Value kinds a tag definition may declare."""

    STRING = "string"
    INT = "int"
    REAL = "real"
    BOOL = "bool"
    ENUM = "enum"

    ALL = (STRING, INT, REAL, BOOL, ENUM)


class TagDefinition:
    """One typed, optionally required, optionally defaulted tagged value."""

    def __init__(
        self,
        name: str,
        tag_type: str,
        description: str = "",
        enum_values: Sequence[str] = (),
        default=None,
        required: bool = False,
    ) -> None:
        if tag_type not in TagType.ALL:
            raise ProfileError(f"unknown tag type {tag_type!r} for tag {name!r}")
        if tag_type == TagType.ENUM and not enum_values:
            raise ProfileError(f"enum tag {name!r} needs enum_values")
        if tag_type != TagType.ENUM and enum_values:
            raise ProfileError(f"non-enum tag {name!r} must not list enum_values")
        self.name = name
        self.tag_type = tag_type
        self.description = description
        self.enum_values = list(enum_values)
        self.required = required
        self.default = self.validate(default) if default is not None else None

    def validate(self, value):
        """Coerce and check ``value`` against this definition; return it."""
        if self.tag_type == TagType.STRING:
            if not isinstance(value, str):
                raise ProfileError(f"tag {self.name!r} expects a string, got {value!r}")
            return value
        if self.tag_type == TagType.INT:
            if isinstance(value, bool) or not isinstance(value, int):
                raise ProfileError(f"tag {self.name!r} expects an int, got {value!r}")
            return value
        if self.tag_type == TagType.REAL:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ProfileError(f"tag {self.name!r} expects a number, got {value!r}")
            return float(value)
        if self.tag_type == TagType.BOOL:
            if not isinstance(value, bool):
                raise ProfileError(f"tag {self.name!r} expects a bool, got {value!r}")
            return value
        if self.tag_type == TagType.ENUM:
            if value not in self.enum_values:
                raise ProfileError(
                    f"tag {self.name!r} expects one of {self.enum_values}, "
                    f"got {value!r}"
                )
            return value
        raise ProfileError(f"unknown tag type {self.tag_type!r}")

    def __repr__(self) -> str:
        return f"TagDefinition({self.name}: {self.tag_type})"


class Stereotype(NamedElement):
    """An extension of a UML metaclass, with tag definitions.

    ``metaclasses`` names the metaclasses the stereotype may be applied to
    (e.g. ``("Class",)`` or ``("Dependency",)``).  A stereotype may
    specialise another, inheriting its metaclasses and tag definitions
    (used by the HIBI specialisations in the paper, Section 4.2).
    """

    def __init__(
        self,
        name: str,
        metaclasses: Optional[Sequence[str]] = None,
        description: str = "",
        specializes: Optional["Stereotype"] = None,
        is_abstract: bool = False,
    ) -> None:
        super().__init__(name)
        if metaclasses is None:
            # Default: extend Class, unless specialising (then inherit).
            metaclasses = () if specializes is not None else ("Class",)
        self.metaclasses = tuple(metaclasses)
        self.description = description
        self.specializes = specializes
        self.is_abstract = is_abstract
        self.tag_definitions: List[TagDefinition] = []

    # -- tags -------------------------------------------------------------------

    def define_tag(self, *args, **kwargs) -> TagDefinition:
        """Add a tag definition (arguments as for :class:`TagDefinition`)."""
        definition = TagDefinition(*args, **kwargs)
        if any(d.name == definition.name for d in self.tag_definitions):
            raise ProfileError(
                f"stereotype {self.name!r} already defines tag {definition.name!r}"
            )
        # Shadowing an *inherited* tag is allowed: a specialisation may
        # refine the default of a base tag (all_tag_definitions puts own
        # definitions first, so the refinement wins).
        self.tag_definitions.append(definition)
        return definition

    def all_tag_definitions(self) -> List[TagDefinition]:
        """Own tag definitions plus inherited ones (own first)."""
        definitions = list(self.tag_definitions)
        seen = {d.name for d in definitions}
        ancestor = self.specializes
        while ancestor is not None:
            for definition in ancestor.tag_definitions:
                if definition.name not in seen:
                    definitions.append(definition)
                    seen.add(definition.name)
            ancestor = ancestor.specializes
        return definitions

    def find_tag(self, name: str) -> Optional[TagDefinition]:
        for definition in self.all_tag_definitions():
            if definition.name == name:
                return definition
        return None

    # -- classification -----------------------------------------------------------

    def effective_metaclasses(self) -> Sequence[str]:
        """The metaclasses this stereotype extends, following specialisation."""
        if self.metaclasses:
            return self.metaclasses
        if self.specializes is not None:
            return self.specializes.effective_metaclasses()
        return ()

    def is_kind_of(self, name: str) -> bool:
        """True if this stereotype is named ``name`` or specialises it."""
        stereotype: Optional[Stereotype] = self
        while stereotype is not None:
            if stereotype.name == name:
                return True
            stereotype = stereotype.specializes
        return False

    def extends(self, element: Element) -> bool:
        """Can this stereotype be applied to ``element``?

        An empty metaclass list (after following specialisation) extends
        nothing; metaclass matching accepts subclasses, so a stereotype on
        ``Property`` also applies to ``Port``.
        """
        for metaclass_name in self.effective_metaclasses():
            for klass in type(element).__mro__:
                if klass.__name__ == metaclass_name:
                    return True
        return False


class StereotypeApplication:
    """A stereotype applied to a model element, with validated tagged values."""

    def __init__(self, element: Element, stereotype: Stereotype, values: Dict) -> None:
        self.element = element
        self.stereotype = stereotype
        self.values: Dict[str, object] = {}
        for name, value in values.items():
            self.set(name, value)

    def set(self, tag_name: str, value) -> None:
        definition = self.stereotype.find_tag(tag_name)
        if definition is None:
            raise ProfileError(
                f"stereotype {self.stereotype.name!r} has no tag {tag_name!r}"
            )
        self.values[tag_name] = definition.validate(value)

    def get(self, tag_name: str, default=None):
        if tag_name in self.values:
            return self.values[tag_name]
        definition = self.stereotype.find_tag(tag_name)
        if definition is not None and definition.default is not None:
            return definition.default
        return default

    def missing_required_tags(self) -> List[str]:
        return [
            definition.name
            for definition in self.stereotype.all_tag_definitions()
            if definition.required
            and definition.name not in self.values
            and definition.default is None
        ]

    def __repr__(self) -> str:
        return f"StereotypeApplication(«{self.stereotype.name}», {self.values})"


class Profile(Package):
    """A named collection of stereotypes."""

    def __init__(self, name: str = "") -> None:
        super().__init__(name)
        self.stereotypes: List[Stereotype] = []

    def add_stereotype(self, stereotype: Stereotype) -> Stereotype:
        if self.stereotype(stereotype.name) is not None:
            raise ProfileError(
                f"profile {self.name!r} already has stereotype {stereotype.name!r}"
            )
        self.add(stereotype)
        self.stereotypes.append(stereotype)
        return stereotype

    def stereotype(self, name: str) -> Optional[Stereotype]:
        for stereotype in self.stereotypes:
            if stereotype.name == name:
                return stereotype
        return None

    def iter_stereotypes(self) -> Iterator[Stereotype]:
        return iter(self.stereotypes)

    def apply(self, element: Element, stereotype_name: str, **tag_values) -> StereotypeApplication:
        """Apply a stereotype of this profile to ``element``.

        Checks metaclass compatibility, abstractness, double application,
        and validates tagged values (required tags may be filled in later
        and are checked by the design-rule checker).
        """
        stereotype = self.stereotype(stereotype_name)
        if stereotype is None:
            raise ProfileError(
                f"profile {self.name!r} has no stereotype {stereotype_name!r}"
            )
        if stereotype.is_abstract:
            raise ProfileError(
                f"stereotype {stereotype_name!r} is abstract and cannot be applied"
            )
        if not stereotype.extends(element):
            raise ProfileError(
                f"stereotype «{stereotype_name}» extends "
                f"{'/'.join(stereotype.effective_metaclasses())}, not "
                f"{element.metaclass_name()}"
            )
        if element.has_stereotype(stereotype_name):
            raise ProfileError(
                f"«{stereotype_name}» is already applied to this element"
            )
        application = StereotypeApplication(element, stereotype, tag_values)
        element.stereotype_applications.append(application)
        return application

    def unapply(self, element: Element, stereotype_name: str) -> None:
        application = element.stereotype_application(stereotype_name)
        if application is None:
            raise ProfileError(f"«{stereotype_name}» is not applied to this element")
        element.stereotype_applications.remove(application)
