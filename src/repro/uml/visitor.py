"""Model traversal helpers: iteration, lookup, filtering."""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Type, TypeVar

from repro.uml.element import Element, NamedElement

ElementT = TypeVar("ElementT", bound=Element)


def iter_tree(root: Element, include_root: bool = True) -> Iterator[Element]:
    """Depth-first pre-order iteration over the ownership tree."""
    if include_root:
        yield root
    yield from root.all_owned_elements()


def iter_instances(root: Element, metatype: Type[ElementT]) -> Iterator[ElementT]:
    """All elements in the tree that are instances of ``metatype``."""
    for element in iter_tree(root):
        if isinstance(element, metatype):
            yield element


def find_by_name(
    root: Element, name: str, metatype: Type[ElementT] = NamedElement
) -> Optional[ElementT]:
    """First element of ``metatype`` named ``name`` (pre-order)."""
    for element in iter_instances(root, metatype):
        if element.name == name:
            return element
    return None


def find_all_by_name(
    root: Element, name: str, metatype: Type[ElementT] = NamedElement
) -> List[ElementT]:
    return [e for e in iter_instances(root, metatype) if e.name == name]


def find_stereotyped(root: Element, stereotype_name: str) -> List[Element]:
    """All elements carrying the given stereotype (or a specialisation)."""
    return [e for e in iter_tree(root) if e.has_stereotype(stereotype_name)]


def select(root: Element, predicate: Callable[[Element], bool]) -> List[Element]:
    return [e for e in iter_tree(root) if predicate(e)]


def count_elements(root: Element) -> int:
    return sum(1 for _ in iter_tree(root))
