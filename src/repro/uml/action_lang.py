"""Tokenizer and recursive-descent parser for the textual action language.

Grammar (statements end with ``;``, blocks use braces)::

    block      := stmt*
    stmt       := assign | send | if | while | set_timer | reset_timer
    assign     := NAME '=' expr ';'
    send       := 'send' NAME '(' [expr {',' expr}] ')' ['via' NAME] ';'
    if         := 'if' '(' expr ')' '{' block '}' ['else' ('{' block '}' | if)]
    while      := 'while' '(' expr ')' '{' block '}'
    set_timer  := 'set_timer' '(' NAME ',' expr ')' ';'
    reset_timer:= 'reset_timer' '(' NAME ')' ';'
    expr       := ternary with C-like precedence:
                  ?: < || < && < |,^,& < ==,!= < <,<=,>,>= < <<,>> < +,- <
                  *,/,% < unary -,!,~ < call/primary
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import ActionSyntaxError
from repro.uml.actions import (
    Assign,
    BinaryOp,
    BoolLiteral,
    Call,
    Conditional,
    Expr,
    If,
    IntLiteral,
    Name,
    ResetTimer,
    Send,
    SetTimer,
    Stmt,
    UnaryOp,
    While,
)

KEYWORDS = {
    "send",
    "via",
    "if",
    "else",
    "while",
    "true",
    "false",
    "set_timer",
    "reset_timer",
}

_TWO_CHAR_OPS = ("==", "!=", "<=", ">=", "&&", "||", "<<", ">>")
_ONE_CHAR_OPS = "+-*/%<>=!&|^~?:(),;{}"


class Token:
    __slots__ = ("kind", "text", "line", "column")

    def __init__(self, kind: str, text: str, line: int, column: int) -> None:
        self.kind = kind  # 'int' | 'name' | 'keyword' | 'op' | 'eof'
        self.text = text
        self.line = line
        self.column = column

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r})"


def tokenize(source: str) -> List[Token]:
    """Split action-language source into tokens; ``//`` comments are skipped."""
    tokens: List[Token] = []
    line, column = 1, 1
    index = 0
    length = len(source)
    while index < length:
        char = source[index]
        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if source.startswith("//", index):
            start = index
            while index < length and source[index] != "\n":
                index += 1
            column += index - start
            continue
        if char.isdigit():
            start = index
            if source.startswith("0x", index) or source.startswith("0X", index):
                index += 2
                digits = index
                while index < length and source[index] in "0123456789abcdefABCDEF":
                    index += 1
                if index == digits:
                    raise ActionSyntaxError(
                        f"malformed hex literal {source[start:index]!r}",
                        text=source,
                        line=line,
                        column=column,
                    )
            else:
                while index < length and source[index].isdigit():
                    index += 1
            text = source[start:index]
            tokens.append(Token("int", text, line, column))
            column += index - start
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
            text = source[start:index]
            kind = "keyword" if text in KEYWORDS else "name"
            tokens.append(Token(kind, text, line, column))
            column += index - start
            continue
        two = source[index : index + 2]
        if two in _TWO_CHAR_OPS:
            tokens.append(Token("op", two, line, column))
            index += 2
            column += 2
            continue
        if char in _ONE_CHAR_OPS:
            tokens.append(Token("op", char, line, column))
            index += 1
            column += 1
            continue
        raise ActionSyntaxError(
            f"unexpected character {char!r}", text=source, line=line, column=column
        )
    tokens.append(Token("eof", "", line, column))
    return tokens


class _Parser:
    def __init__(self, source: str) -> None:
        self.source = source
        self.tokens = tokenize(source)
        self.position = 0

    # -- token helpers ---------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != "eof":
            self.position += 1
        return token

    def check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self.peek()
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.peek()
        if not self.check(kind, text):
            expected = text if text is not None else kind
            raise ActionSyntaxError(
                f"expected {expected!r}, found {token.text or token.kind!r}",
                text=self.source,
                line=token.line,
                column=token.column,
            )
        return self.advance()

    # -- statements -----------------------------------------------------------

    def parse_block(self) -> List[Stmt]:
        stmts: List[Stmt] = []
        while not self.check("eof") and not self.check("op", "}"):
            stmts.append(self.parse_statement())
        return stmts

    def parse_statement(self) -> Stmt:
        if self.check("keyword", "send"):
            return self._parse_send()
        if self.check("keyword", "if"):
            return self._parse_if()
        if self.check("keyword", "while"):
            return self._parse_while()
        if self.check("keyword", "set_timer"):
            return self._parse_set_timer()
        if self.check("keyword", "reset_timer"):
            return self._parse_reset_timer()
        if self.check("name"):
            return self._parse_assign()
        token = self.peek()
        raise ActionSyntaxError(
            f"expected a statement, found {token.text or token.kind!r}",
            text=self.source,
            line=token.line,
            column=token.column,
        )

    def _parse_assign(self) -> Stmt:
        target = self.expect("name").text
        self.expect("op", "=")
        value = self.parse_expression()
        self.expect("op", ";")
        return Assign(target, value)

    def _parse_send(self) -> Stmt:
        self.expect("keyword", "send")
        signal = self.expect("name").text
        self.expect("op", "(")
        args: List[Expr] = []
        if not self.check("op", ")"):
            args.append(self.parse_expression())
            while self.accept("op", ","):
                args.append(self.parse_expression())
        self.expect("op", ")")
        via = None
        if self.accept("keyword", "via"):
            via = self.expect("name").text
        self.expect("op", ";")
        return Send(signal, args, via)

    def _parse_if(self) -> Stmt:
        self.expect("keyword", "if")
        self.expect("op", "(")
        condition = self.parse_expression()
        self.expect("op", ")")
        self.expect("op", "{")
        then_body = self.parse_block()
        self.expect("op", "}")
        else_body: List[Stmt] = []
        if self.accept("keyword", "else"):
            if self.check("keyword", "if"):
                else_body = [self._parse_if()]
            else:
                self.expect("op", "{")
                else_body = self.parse_block()
                self.expect("op", "}")
        return If(condition, then_body, else_body)

    def _parse_while(self) -> Stmt:
        self.expect("keyword", "while")
        self.expect("op", "(")
        condition = self.parse_expression()
        self.expect("op", ")")
        self.expect("op", "{")
        body = self.parse_block()
        self.expect("op", "}")
        return While(condition, body)

    def _parse_set_timer(self) -> Stmt:
        self.expect("keyword", "set_timer")
        self.expect("op", "(")
        timer = self.expect("name").text
        self.expect("op", ",")
        duration = self.parse_expression()
        self.expect("op", ")")
        self.expect("op", ";")
        return SetTimer(timer, duration)

    def _parse_reset_timer(self) -> Stmt:
        self.expect("keyword", "reset_timer")
        self.expect("op", "(")
        timer = self.expect("name").text
        self.expect("op", ")")
        self.expect("op", ";")
        return ResetTimer(timer)

    # -- expressions (precedence climbing) -----------------------------------

    def parse_expression(self) -> Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> Expr:
        condition = self._parse_binary(0)
        if self.accept("op", "?"):
            then_value = self.parse_expression()
            self.expect("op", ":")
            else_value = self.parse_expression()
            return Conditional(condition, then_value, else_value)
        return condition

    _LEVELS: Sequence[Tuple[str, ...]] = (
        ("||",),
        ("&&",),
        ("|", "^", "&"),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    )

    def _parse_binary(self, level: int) -> Expr:
        if level >= len(self._LEVELS):
            return self._parse_unary()
        left = self._parse_binary(level + 1)
        while self.peek().kind == "op" and self.peek().text in self._LEVELS[level]:
            op = self.advance().text
            right = self._parse_binary(level + 1)
            left = BinaryOp(op, left, right)
        return left

    def _parse_unary(self) -> Expr:
        if self.peek().kind == "op" and self.peek().text in ("-", "!", "~"):
            op = self.advance().text
            return UnaryOp(op, self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self.peek()
        if token.kind == "int":
            self.advance()
            return IntLiteral(int(token.text, 0))
        if token.kind == "keyword" and token.text in ("true", "false"):
            self.advance()
            return BoolLiteral(token.text == "true")
        if token.kind == "name":
            self.advance()
            if self.accept("op", "("):
                args: List[Expr] = []
                if not self.check("op", ")"):
                    args.append(self.parse_expression())
                    while self.accept("op", ","):
                        args.append(self.parse_expression())
                self.expect("op", ")")
                return Call(token.text, args)
            return Name(token.text)
        if self.accept("op", "("):
            expr = self.parse_expression()
            self.expect("op", ")")
            return expr
        raise ActionSyntaxError(
            f"expected an expression, found {token.text or token.kind!r}",
            text=self.source,
            line=token.line,
            column=token.column,
        )


def parse_actions(source: str) -> List[Stmt]:
    """Parse a statement block; raises :class:`ActionSyntaxError` on bad input."""
    parser = _Parser(source)
    block = parser.parse_block()
    parser.expect("eof")
    return block


def parse_expression(source: str) -> Expr:
    """Parse a single expression (used for transition guards)."""
    parser = _Parser(source)
    expr = parser.parse_expression()
    parser.expect("eof")
    return expr
