"""UML 2.0 metamodel subset with second-class extensibility (profiles).

This package implements exactly the UML constructs TUT-Profile extends or
relies on: classes with composite structures (parts, ports, connectors),
signals, dependencies, state machines with a textual action language, and
the profile/stereotype/tagged-value mechanism, plus XMI-like serialisation
and well-formedness validation.
"""

from repro.uml.element import Comment, Element, NamedElement, reset_serial_counter
from repro.uml.classifier import (
    Class,
    Classifier,
    DataType,
    Enumeration,
    Interface,
    PrimitiveType,
    Signal,
)
from repro.uml.structure import Connector, ConnectorEnd, Port, Property
from repro.uml.packages import Model, Package
from repro.uml.dependency import Abstraction, Dependency, Realization, Usage
from repro.uml.instance import InstanceSpecification, Slot
from repro.uml.statemachine import (
    CompletionTrigger,
    FinalState,
    SignalTrigger,
    State,
    StateMachine,
    TimerTrigger,
    Transition,
    Trigger,
)
from repro.uml.profile import (
    Profile,
    Stereotype,
    StereotypeApplication,
    TagDefinition,
    TagType,
)
from repro.uml.action_lang import parse_actions, parse_expression
from repro.uml.actions import ActionEnvironment, evaluate, execute, unparse_block
from repro.uml.validation import Issue, ValidationReport, validate_model
from repro.uml.visitor import (
    count_elements,
    find_by_name,
    find_stereotyped,
    iter_instances,
    iter_tree,
)
from repro.uml.xmi import model_to_xml, read_model, write_model, xml_to_model

__all__ = [
    "Abstraction",
    "ActionEnvironment",
    "Class",
    "Classifier",
    "Comment",
    "CompletionTrigger",
    "Connector",
    "ConnectorEnd",
    "DataType",
    "Dependency",
    "Element",
    "Enumeration",
    "FinalState",
    "InstanceSpecification",
    "Interface",
    "Issue",
    "Model",
    "NamedElement",
    "Package",
    "Port",
    "PrimitiveType",
    "Profile",
    "Property",
    "Realization",
    "Signal",
    "SignalTrigger",
    "Slot",
    "State",
    "StateMachine",
    "Stereotype",
    "StereotypeApplication",
    "TagDefinition",
    "TagType",
    "TimerTrigger",
    "Transition",
    "Trigger",
    "Usage",
    "ValidationReport",
    "count_elements",
    "evaluate",
    "execute",
    "find_by_name",
    "find_stereotyped",
    "iter_instances",
    "iter_tree",
    "model_to_xml",
    "parse_actions",
    "parse_expression",
    "read_model",
    "reset_serial_counter",
    "unparse_block",
    "validate_model",
    "write_model",
    "xml_to_model",
]
