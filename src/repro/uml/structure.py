"""Composite structure: properties (parts), ports, connectors.

Composite structure diagrams are the backbone of TUT-Profile models: parts
(class instances) communicate with signals via ports, and connectors carry
the signals between ports (paper Section 4.1, Figure 5).
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ModelError
from repro.uml.classifier import Classifier
from repro.uml.element import NamedElement


class Property(NamedElement):
    """A typed structural feature: attribute of a classifier or part of a class."""

    AGGREGATIONS = ("none", "shared", "composite")

    def __init__(
        self,
        name: str = "",
        type: Optional[Classifier] = None,
        aggregation: str = "none",
        lower: int = 1,
        upper: int = 1,
        default=None,
    ) -> None:
        super().__init__(name)
        if aggregation not in self.AGGREGATIONS:
            raise ModelError(f"unknown aggregation kind {aggregation!r}")
        if lower < 0 or (upper != -1 and upper < lower):
            raise ModelError(f"bad multiplicity [{lower}..{upper}] on {name!r}")
        self.type = type
        self.aggregation = aggregation
        self.lower = lower
        self.upper = upper  # -1 encodes '*'
        self.default = default

    @property
    def is_part(self) -> bool:
        return self.aggregation == "composite"

    def multiplicity(self) -> str:
        upper = "*" if self.upper == -1 else str(self.upper)
        return f"[{self.lower}..{upper}]"

    def __repr__(self) -> str:
        type_name = self.type.name if self.type is not None else "<untyped>"
        return f"Property({self.name!r}: {type_name})"


class Port(Property):
    """An interaction point on a class through which signals flow.

    ``provided`` lists the signal names the owner *receives* through this
    port, ``required`` the names it *sends*.  A port declaring either list
    is *constrained*: it accepts exactly its provided signals and emits
    exactly its required ones.  A port declaring neither is a relay port
    (typical for structural-class boundaries) and passes any signal.
    """

    def __init__(
        self,
        name: str = "",
        provided=(),
        required=(),
        is_behavior: bool = True,
    ) -> None:
        super().__init__(name)
        self.provided: List[str] = list(provided)
        self.required: List[str] = list(required)
        self.is_behavior = is_behavior

    @property
    def is_constrained(self) -> bool:
        return bool(self.provided or self.required)

    def accepts(self, signal_name: str) -> bool:
        """Can the owner receive ``signal_name`` through this port?"""
        if self.is_constrained:
            return signal_name in self.provided
        return True

    def emits(self, signal_name: str) -> bool:
        """Can the owner send ``signal_name`` through this port?"""
        if self.is_constrained:
            return signal_name in self.required
        return True

    def __repr__(self) -> str:
        return f"Port({self.name!r})"


class ConnectorEnd:
    """One end of a connector: a port, optionally on a specific part.

    ``part`` is ``None`` when the end attaches to a port of the containing
    class itself (a delegation connector end).
    """

    def __init__(self, port: Port, part: Optional[Property] = None) -> None:
        if not isinstance(port, Port):
            raise ModelError("connector end must reference a Port")
        self.port = port
        self.part = part

    def describe(self) -> str:
        if self.part is not None:
            return f"{self.part.name}.{self.port.name}"
        return self.port.name

    def __repr__(self) -> str:
        return f"ConnectorEnd({self.describe()})"


class Connector(NamedElement):
    """A link between exactly two connector ends, carrying signals."""

    def __init__(
        self,
        name: str = "",
        end1: Optional[ConnectorEnd] = None,
        end2: Optional[ConnectorEnd] = None,
    ) -> None:
        super().__init__(name)
        self.ends: List[ConnectorEnd] = []
        if end1 is not None:
            self.ends.append(end1)
        if end2 is not None:
            self.ends.append(end2)

    def set_ends(self, end1: ConnectorEnd, end2: ConnectorEnd) -> None:
        self.ends = [end1, end2]

    @property
    def is_delegation(self) -> bool:
        """True when one end sits on the containing class boundary."""
        return len(self.ends) == 2 and any(end.part is None for end in self.ends)

    @property
    def is_assembly(self) -> bool:
        """True when both ends sit on parts."""
        return len(self.ends) == 2 and all(end.part is not None for end in self.ends)

    def other_end(self, end: ConnectorEnd) -> ConnectorEnd:
        if len(self.ends) != 2:
            raise ModelError(f"connector {self.name!r} is not binary")
        if end is self.ends[0]:
            return self.ends[1]
        if end is self.ends[1]:
            return self.ends[0]
        raise ModelError(f"end {end!r} does not belong to connector {self.name!r}")

    def describe(self) -> str:
        if len(self.ends) == 2:
            return f"{self.ends[0].describe()} -- {self.ends[1].describe()}"
        return self.name or "<unwired>"

    def __repr__(self) -> str:
        return f"Connector({self.describe()})"
