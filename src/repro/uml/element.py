"""Root of the UML 2.0 metamodel subset: elements, named elements, comments.

The subset implemented here covers exactly what a second-class-extensibility
profile (stereotypes + tagged values) needs: ownership, names, qualified
names, and stereotype application hooks.  Everything else in the metamodel
derives from :class:`Element` / :class:`NamedElement`.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional

_serial = itertools.count(1)


class Element:
    """Abstract root of the metamodel.

    Every element has an owner (or ``None`` for roots), a list of owned
    elements, and may carry stereotype applications.  A monotonically
    increasing ``serial`` gives a stable, deterministic creation order used
    for XMI ids and diagram layout.
    """

    def __init__(self) -> None:
        self.owner: Optional[Element] = None
        self.owned_elements: List[Element] = []
        self.stereotype_applications: List["StereotypeApplication"] = []  # noqa: F821
        self.comments: List[Comment] = []
        self.serial: int = next(_serial)
        self.xmi_id: Optional[str] = None

    # -- ownership ---------------------------------------------------------

    def own(self, element: "Element") -> "Element":
        """Attach ``element`` to this element's ownership tree and return it."""
        if element.owner is not None:
            element.owner.owned_elements.remove(element)
        element.owner = self
        self.owned_elements.append(element)
        return element

    def disown(self, element: "Element") -> None:
        """Detach a directly owned element."""
        self.owned_elements.remove(element)
        element.owner = None

    def all_owned_elements(self) -> Iterator["Element"]:
        """Depth-first iteration over the transitive ownership tree."""
        for child in self.owned_elements:
            yield child
            yield from child.all_owned_elements()

    def root(self) -> "Element":
        """The top of this element's ownership chain (usually the Model)."""
        node: Element = self
        while node.owner is not None:
            node = node.owner
        return node

    def owner_chain(self) -> Iterator["Element"]:
        """Owners from the immediate owner up to the root."""
        node = self.owner
        while node is not None:
            yield node
            node = node.owner

    # -- stereotypes ---------------------------------------------------------

    @property
    def applied_stereotypes(self):
        """Stereotypes applied to this element (in application order)."""
        return [app.stereotype for app in self.stereotype_applications]

    def stereotype_application(self, name: str):
        """The application of the stereotype called ``name``, or ``None``.

        Matches the stereotype's own name or any of its generalisations, so
        querying for a base stereotype finds specialised applications too.
        """
        for app in self.stereotype_applications:
            if app.stereotype.is_kind_of(name):
                return app
        return None

    def has_stereotype(self, name: str) -> bool:
        """True if a stereotype named ``name`` (or specialising it) is applied."""
        return self.stereotype_application(name) is not None

    def tag(self, stereotype_name: str, tag_name: str, default=None):
        """Tagged value ``tag_name`` of the applied stereotype, or ``default``."""
        app = self.stereotype_application(stereotype_name)
        if app is None:
            return default
        return app.get(tag_name, default)

    # -- misc ----------------------------------------------------------------

    def add_comment(self, body: str) -> "Comment":
        comment = Comment(body)
        self.own(comment)
        self.comments.append(comment)
        return comment

    def metaclass_name(self) -> str:
        """The UML metaclass this element instantiates (its class name)."""
        return type(self).__name__


class Comment(Element):
    """An annotation attached to an element."""

    def __init__(self, body: str = "") -> None:
        super().__init__()
        self.body = body

    def __repr__(self) -> str:
        return f"Comment({self.body!r})"


class NamedElement(Element):
    """An element with a (possibly empty) name and a qualified name."""

    SEPARATOR = "::"

    def __init__(self, name: str = "") -> None:
        super().__init__()
        self.name = name

    @property
    def qualified_name(self) -> str:
        """Names of all named owners joined with ``::`` (UML convention)."""
        parts = [self.name]
        for owner in self.owner_chain():
            if isinstance(owner, NamedElement) and owner.name:
                parts.append(owner.name)
        return self.SEPARATOR.join(reversed(parts))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


def reset_serial_counter() -> None:
    """Restart the deterministic element serial counter (for tests)."""
    global _serial
    _serial = itertools.count(1)
