"""State machines: the behaviour of functional application components.

The paper models behaviour as "asynchronous communicating Extended Finite
State Machines" (EFSM).  A :class:`StateMachine` owns states, transitions and
a set of integer variables.  Transitions fire on signal receptions or timer
expirations, optionally guarded, and run an effect written in the textual
action language.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import ModelError
from repro.uml.actions import Expr, Stmt
from repro.uml.action_lang import parse_actions, parse_expression
from repro.uml.element import NamedElement


class Trigger:
    """Abstract transition trigger."""

    def describe(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()})"


class SignalTrigger(Trigger):
    """Fires when a matching signal is consumed from the input queue.

    ``parameter_names`` binds the signal's arguments to read-only names
    visible in the transition guard and effect.
    """

    def __init__(self, signal_name: str, parameter_names: Sequence[str] = ()) -> None:
        self.signal_name = signal_name
        self.parameter_names = list(parameter_names)

    def describe(self) -> str:
        if self.parameter_names:
            return f"{self.signal_name}({', '.join(self.parameter_names)})"
        return self.signal_name


class TimerTrigger(Trigger):
    """Fires when the named timer (armed via ``set_timer``) expires."""

    def __init__(self, timer_name: str) -> None:
        self.timer_name = timer_name

    def describe(self) -> str:
        return f"timer {self.timer_name}"


class CompletionTrigger(Trigger):
    """Fires immediately after the source state's entry actions complete."""

    def describe(self) -> str:
        return "completion"


class State(NamedElement):
    """A state with optional entry/exit actions, possibly composite.

    A state becomes composite by owning substates (``parent`` back-links).
    Entering a composite state descends into its ``initial_substate``;
    signals unhandled by the active leaf bubble up through its ancestors
    (UML hierarchical state machine semantics).
    """

    def __init__(self, name: str, entry: Sequence[Stmt] = (), exit: Sequence[Stmt] = ()) -> None:
        super().__init__(name)
        self.entry: List[Stmt] = list(entry)
        self.exit: List[Stmt] = list(exit)
        self.is_final = False
        self.parent: Optional["State"] = None
        self.substates: List["State"] = []
        self.initial_substate: Optional["State"] = None

    @property
    def is_composite(self) -> bool:
        return bool(self.substates)

    def ancestors(self) -> List["State"]:
        """Enclosing states, innermost first."""
        chain: List[State] = []
        node = self.parent
        while node is not None:
            chain.append(node)
            node = node.parent
        return chain

    def path_from_root(self) -> List["State"]:
        """Root-most enclosing state down to (and including) this state."""
        return list(reversed([self] + self.ancestors()))

    def contains(self, other: "State") -> bool:
        """True if ``other`` is this state or nested (transitively) in it."""
        node: Optional[State] = other
        while node is not None:
            if node is self:
                return True
            node = node.parent
        return False

    def enter_target(self) -> "State":
        """The leaf reached when this state is entered (initial descent)."""
        node: State = self
        while node.initial_substate is not None:
            node = node.initial_substate
        return node


class FinalState(State):
    """A state that terminates the machine when entered."""

    def __init__(self, name: str = "final") -> None:
        super().__init__(name)
        self.is_final = True


class Transition(NamedElement):
    """A guarded, triggered transition with an action-language effect."""

    def __init__(
        self,
        source: State,
        target: State,
        trigger: Optional[Trigger] = None,
        guard: Optional[Expr] = None,
        effect: Sequence[Stmt] = (),
        priority: int = 0,
        internal: bool = False,
    ) -> None:
        super().__init__()
        if internal and source is not target:
            raise ModelError(
                "internal transitions must have the same source and target "
                f"state, got {source.name!r} -> {target.name!r}"
            )
        self.source = source
        self.target = target
        self.trigger = trigger if trigger is not None else CompletionTrigger()
        self.guard = guard
        self.effect: List[Stmt] = list(effect)
        # Lower value = tried first among transitions sharing a trigger.
        self.priority = priority
        # Internal transitions run their effect without leaving the state:
        # no exit/entry actions execute (UML internal transition semantics).
        self.internal = internal

    def describe(self) -> str:
        guard = f" [{self.guard.unparse()}]" if self.guard is not None else ""
        arrow = "--(internal)" if self.internal else "--"
        return (
            f"{self.source.name} {arrow}{self.trigger.describe()}{guard}--> "
            f"{self.target.name}"
        )

    def __repr__(self) -> str:
        return f"Transition({self.describe()})"


class StateMachine(NamedElement):
    """An EFSM: states, transitions, integer variables, and an initial state.

    The builder-style API (:meth:`state`, :meth:`transition`,
    :meth:`variable`) accepts action-language source strings and parses them
    eagerly, so syntax errors surface at model-construction time.
    """

    def __init__(self, name: str = "") -> None:
        super().__init__(name)
        self.context = None  # owning Class, set by Class.set_behavior
        self.states: List[State] = []
        self.transitions: List[Transition] = []
        self.variables: Dict[str, int] = {}
        self.initial_state: Optional[State] = None

    # -- construction ---------------------------------------------------------

    def variable(self, name: str, initial: int = 0) -> None:
        """Declare an EFSM variable with its initial value."""
        if name in self.variables:
            raise ModelError(f"variable {name!r} already declared in {self.name!r}")
        self.variables[name] = initial

    def state(
        self,
        name: str,
        entry: str = "",
        exit: str = "",
        initial: bool = False,
        parent=None,
    ) -> State:
        """Add a state; ``entry``/``exit`` are action-language source.

        With ``parent`` (a state or its name) the new state becomes a
        substate of that composite state; ``initial=True`` then marks it as
        the parent's initial substate instead of the machine's initial
        state.
        """
        if self.find_state(name) is not None:
            raise ModelError(f"state {name!r} already exists in {self.name!r}")
        new_state = State(name, parse_actions(entry), parse_actions(exit))
        self.own(new_state)
        self.states.append(new_state)
        if parent is not None:
            parent_state = self._resolve(parent)
            if parent_state.is_final:
                raise ModelError("final states cannot contain substates")
            new_state.parent = parent_state
            parent_state.substates.append(new_state)
            if initial:
                if parent_state.initial_substate is not None:
                    raise ModelError(
                        f"composite state {parent_state.name!r} already has an "
                        "initial substate"
                    )
                parent_state.initial_substate = new_state
        elif initial:
            if self.initial_state is not None:
                raise ModelError(f"machine {self.name!r} already has an initial state")
            self.initial_state = new_state
        return new_state

    def final_state(self, name: str = "final") -> FinalState:
        final = FinalState(name)
        self.own(final)
        self.states.append(final)
        return final

    def transition(
        self,
        source,
        target,
        trigger: Optional[Trigger] = None,
        guard: str = "",
        effect: str = "",
        priority: int = 0,
        internal: bool = False,
    ) -> Transition:
        """Add a transition; ``source``/``target`` may be names or states."""
        source_state = self._resolve(source)
        target_state = self._resolve(target)
        guard_expr = parse_expression(guard) if guard else None
        new_transition = Transition(
            source_state,
            target_state,
            trigger=trigger,
            guard=guard_expr,
            effect=parse_actions(effect),
            priority=priority,
            internal=internal,
        )
        self.own(new_transition)
        self.transitions.append(new_transition)
        return new_transition

    def on_signal(
        self,
        source,
        target,
        signal: str,
        params: Sequence[str] = (),
        guard: str = "",
        effect: str = "",
        priority: int = 0,
        internal: bool = False,
    ) -> Transition:
        """Shorthand for a signal-triggered transition."""
        return self.transition(
            source,
            target,
            trigger=SignalTrigger(signal, params),
            guard=guard,
            effect=effect,
            priority=priority,
            internal=internal,
        )

    def on_timer(
        self,
        source,
        target,
        timer: str,
        guard: str = "",
        effect: str = "",
        priority: int = 0,
        internal: bool = False,
    ) -> Transition:
        """Shorthand for a timer-triggered transition."""
        return self.transition(
            source,
            target,
            trigger=TimerTrigger(timer),
            guard=guard,
            effect=effect,
            priority=priority,
            internal=internal,
        )

    def _resolve(self, state) -> State:
        if isinstance(state, State):
            if state not in self.states:
                raise ModelError(
                    f"state {state.name!r} does not belong to machine {self.name!r}"
                )
            return state
        found = self.find_state(state)
        if found is None:
            raise ModelError(f"no state named {state!r} in machine {self.name!r}")
        return found

    # -- queries ----------------------------------------------------------------

    def find_state(self, name: str) -> Optional[State]:
        for state in self.states:
            if state.name == name:
                return state
        return None

    def outgoing(self, state: State) -> List[Transition]:
        """Transitions leaving ``state``, in priority then declaration order."""
        candidates = [t for t in self.transitions if t.source is state]
        candidates.sort(key=lambda t: (t.priority, t.serial))
        return candidates

    def received_signal_names(self) -> List[str]:
        """All signal names the machine consumes (its input alphabet)."""
        names = {
            t.trigger.signal_name
            for t in self.transitions
            if isinstance(t.trigger, SignalTrigger)
        }
        return sorted(names)

    def timer_names(self) -> List[str]:
        names = {
            t.trigger.timer_name
            for t in self.transitions
            if isinstance(t.trigger, TimerTrigger)
        }
        return sorted(names)

    def sent_signal_names(self) -> List[str]:
        """All signal names the machine may emit (static over-approximation)."""
        from repro.uml.actions import sent_signal_names

        blocks: List[Stmt] = []
        for state in self.states:
            blocks.extend(state.entry)
            blocks.extend(state.exit)
        for transition in self.transitions:
            blocks.extend(transition.effect)
        return sent_signal_names(blocks)
