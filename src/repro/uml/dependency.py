"""Dependencies between named elements.

TUT-Profile stereotypes two dependency kinds: ``«ProcessGrouping»`` (an
application process depends on its process group) and ``«PlatformMapping»``
(a process group depends on the platform component instance it runs on).
"""

from __future__ import annotations

from typing import List

from repro.errors import ModelError
from repro.uml.element import NamedElement


class Dependency(NamedElement):
    """A client/supplier relationship between named elements."""

    def __init__(self, name: str = "", client=None, supplier=None) -> None:
        super().__init__(name)
        self.clients: List[NamedElement] = []
        self.suppliers: List[NamedElement] = []
        if client is not None:
            self.add_client(client)
        if supplier is not None:
            self.add_supplier(supplier)

    def add_client(self, element: NamedElement) -> None:
        if not isinstance(element, NamedElement):
            raise ModelError("dependency client must be a NamedElement")
        self.clients.append(element)

    def add_supplier(self, element: NamedElement) -> None:
        if not isinstance(element, NamedElement):
            raise ModelError("dependency supplier must be a NamedElement")
        self.suppliers.append(element)

    @property
    def client(self) -> NamedElement:
        """The single client, for the binary dependencies the profile uses."""
        if len(self.clients) != 1:
            raise ModelError(f"dependency {self.name!r} has {len(self.clients)} clients")
        return self.clients[0]

    @property
    def supplier(self) -> NamedElement:
        """The single supplier, for the binary dependencies the profile uses."""
        if len(self.suppliers) != 1:
            raise ModelError(
                f"dependency {self.name!r} has {len(self.suppliers)} suppliers"
            )
        return self.suppliers[0]

    def describe(self) -> str:
        client_names = ", ".join(c.name for c in self.clients) or "<none>"
        supplier_names = ", ".join(s.name for s in self.suppliers) or "<none>"
        return f"{client_names} --> {supplier_names}"

    def __repr__(self) -> str:
        return f"Dependency({self.describe()})"


class Usage(Dependency):
    """A dependency in which the client requires the supplier."""


class Abstraction(Dependency):
    """A dependency relating two representations of the same concept."""


class Realization(Abstraction):
    """A specification/implementation relationship."""
