"""Instance specifications: concrete instances of classifiers with slot values.

Platform component instances (``processor1 : Nios``) are modelled as parts in
composite structures, but the XMI layer and the platform library also use
plain instance specifications to describe configured library entries.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import ModelError
from repro.uml.classifier import Classifier
from repro.uml.element import NamedElement


class Slot:
    """A value bound to one structural feature of an instance."""

    def __init__(self, feature_name: str, value) -> None:
        self.feature_name = feature_name
        self.value = value

    def __repr__(self) -> str:
        return f"Slot({self.feature_name}={self.value!r})"


class InstanceSpecification(NamedElement):
    """An instance of a classifier with per-attribute slot values."""

    def __init__(self, name: str = "", classifier: Optional[Classifier] = None) -> None:
        super().__init__(name)
        self.classifier = classifier
        self.slots: Dict[str, Slot] = {}

    def set_slot(self, feature_name: str, value) -> Slot:
        """Bind ``value`` to ``feature_name``; the feature must exist if typed."""
        if self.classifier is not None:
            if self.classifier.attribute(feature_name) is None:
                raise ModelError(
                    f"classifier {self.classifier.name!r} has no attribute "
                    f"{feature_name!r}"
                )
        slot = Slot(feature_name, value)
        self.slots[feature_name] = slot
        return slot

    def value(self, feature_name: str, default=None):
        slot = self.slots.get(feature_name)
        if slot is not None:
            return slot.value
        if self.classifier is not None:
            attribute = self.classifier.attribute(feature_name)
            if attribute is not None and attribute.default is not None:
                return attribute.default
        return default

    def describe(self) -> str:
        classifier_name = self.classifier.name if self.classifier else "<untyped>"
        return f"{self.name} : {classifier_name}"

    def __repr__(self) -> str:
        return f"InstanceSpecification({self.describe()})"
