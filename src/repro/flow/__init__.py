"""The Figure 2 design and profiling flow, end to end."""

from repro.flow.design_flow import (
    FLOW_INVENTORY,
    FLOW_STEPS,
    FlowResult,
    StepFailure,
    run_design_flow,
)

__all__ = [
    "FLOW_INVENTORY",
    "FLOW_STEPS",
    "FlowResult",
    "StepFailure",
    "run_design_flow",
]
