"""The end-to-end design and profiling flow (paper Figures 1 and 2).

``run_design_flow`` executes every box of Figure 2 in order:

1. validate the UML model (well-formedness + TUT-Profile design rules);
2. serialise the model to XMI (the document external tools parse);
3. profiling stage 1 — model parsing → process-group information;
4. automatic code generation (C project with instrumentation);
5. simulation → simulation log-file;
6. profiling stage 3 — combine log + group info → profiling report.

Artefacts land in a work directory; the returned :class:`FlowResult`
carries both the file paths and the in-memory analysis objects so callers
(e.g. the improvement loop) can continue without re-reading files.

Every step runs under error capture.  By default a failing step aborts the
flow by re-raising, exactly as before; with ``continue_on_error=True`` the
failure is recorded in :attr:`FlowResult.failures`, steps that depend on
the missing artefact are recorded as skipped, and independent steps still
run — so one broken stage yields a partial result instead of nothing.

With ``explore_factory`` the flow closes the Figure 2 loop: after
profiling it runs the profiling-guided mapping improvement loop on the
exploration engine (cache-aware via ``explore_cache_dir``) and writes the
accepted-move history to ``exploration.json``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.application.model import ApplicationModel
from repro.codegen.project import GeneratedProject, generate_project
from repro.mapping.model import MappingModel
from repro.platform.model import PlatformModel
from repro.profiling.analysis import ProfilingData, analyze
from repro.profiling.groupinfo import group_info_from_xmi
from repro.profiling.report import render_report
from repro.simulation.system import SimulationResult, SystemSimulation
from repro.tutprofile.rules import check_design_rules
from repro.uml.validation import validate_model
from repro.uml.xmi import model_to_xml
from repro.util.fsio import ensure_parent

#: The mandatory Figure 2 steps.  The optional "lint" step (``lint=True``)
#: runs between validation and XMI export and is not required for
#: :attr:`FlowResult.succeeded`.
FLOW_STEPS = (
    "validate",
    "export-xmi",
    "parse-group-info",
    "generate-code",
    "simulate",
    "profile",
)

#: Figure 1's inventory: the tools and target of the TUT-Profile flow and
#: our stand-in for each (documented substitutions, see DESIGN.md §2).
FLOW_INVENTORY = {
    "TUT-Profile": "repro.tutprofile",
    "Telelogic TAU G2": "repro.uml (metamodel + XMI + validation)",
    "UML Profiling tool": "repro.profiling",
    "Code generation": "repro.codegen",
    "Simulation": "repro.simulation",
    "Altera FPGA prototype": "repro.platform + repro.simulation (HIBI model)",
}


@dataclass
class StepFailure:
    """One failed (or dependency-skipped) flow step."""

    step: str
    error: str
    exception: Optional[BaseException] = None
    skipped: bool = False

    def __str__(self) -> str:
        prefix = "skipped" if self.skipped else "failed"
        return f"{self.step}: {prefix}: {self.error}"


@dataclass
class FlowResult:
    """Artefacts and analyses of one flow execution.

    With ``continue_on_error`` some fields may be ``None`` (the producing
    step failed or was skipped); :attr:`failures` lists what went wrong and
    :attr:`succeeded` is True only for a clean full run.
    """

    work_directory: str
    xmi_path: Optional[str] = None
    log_path: Optional[str] = None
    report_path: Optional[str] = None
    code_directory: Optional[str] = None
    simulation: Optional[SimulationResult] = None
    profiling: Optional[ProfilingData] = None
    report_text: Optional[str] = None
    lint_report: Optional[object] = None  # repro.analysis.LintReport when lint=True
    # repro.exploration.MappingCandidate history when explore_factory is set
    exploration: Optional[list] = None
    # repro.observability.MetricsReport when trace=True
    metrics: Optional[object] = None
    steps_run: tuple = ()
    artifacts: Dict[str, str] = field(default_factory=dict)
    failures: List[StepFailure] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        return not self.failures and set(FLOW_STEPS) <= set(self.steps_run)

    def failure_for(self, step: str) -> Optional[StepFailure]:
        for failure in self.failures:
            if failure.step == step:
                return failure
        return None


class _FlowRunner:
    """Per-step error capture shared by all six steps."""

    def __init__(self, continue_on_error: bool) -> None:
        self.continue_on_error = continue_on_error
        self.steps_run: List[str] = []
        self.failures: List[StepFailure] = []

    def failed(self, step: str) -> bool:
        return any(f.step == step for f in self.failures)

    def run(self, step: str, thunk, *, requires: tuple = ()):
        """Run one step; returns its value, or None when it failed/skipped."""
        broken = [dep for dep in requires if self.failed(dep)]
        if broken:
            self.failures.append(
                StepFailure(
                    step=step,
                    error=f"dependency step {broken[0]!r} did not complete",
                    skipped=True,
                )
            )
            return None
        try:
            value = thunk()
        except Exception as exc:  # noqa: BLE001 — the point is capture
            if not self.continue_on_error:
                raise
            self.failures.append(
                StepFailure(step=step, error=f"{type(exc).__name__}: {exc}", exception=exc)
            )
            return None
        self.steps_run.append(step)
        return value


def run_design_flow(
    application: ApplicationModel,
    platform: PlatformModel,
    mapping: MappingModel,
    work_directory: str,
    duration_us: int = 100_000,
    generate_c: bool = True,
    strict: bool = True,
    continue_on_error: bool = False,
    faults=None,
    lint: bool = False,
    lint_config=None,
    trace: bool = False,
    explore_factory=None,
    explore_cache_dir: Optional[str] = None,
    explore_duration_us: int = 20_000,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every_events: int = 5_000,
) -> FlowResult:
    """Run the complete Figure 2 flow; artefacts go to ``work_directory``.

    ``faults`` is an optional :class:`repro.faults.FaultPlan` handed to the
    simulator; ``continue_on_error`` records step failures in the result
    instead of raising, still running whatever does not depend on them.
    ``lint=True`` inserts a tutlint static-analysis step after validation:
    error-severity findings abort the flow (via :class:`AnalysisError`)
    before any code is generated or simulated; ``lint_config`` (a
    :class:`repro.analysis.LintConfig`) tunes that step's rule selection
    and severities.
    ``trace=True`` runs the simulation under an observability tracer and
    adds a "trace" step that writes ``trace.json`` (Chrome-trace JSON,
    loadable in ui.perfetto.dev) and ``metrics.json`` (the aggregated
    :class:`~repro.observability.metrics.MetricsReport` in the shared CLI
    envelope) next to the other artefacts.
    ``explore_factory`` (a fresh-``(application, platform)`` builder, see
    :mod:`repro.exploration.spec`) appends an optional "explore" step that
    improves the mapping from the profiling feedback and records the move
    history as the ``exploration`` artefact.
    ``checkpoint_dir`` makes the simulate step resumable: the simulation
    snapshots every ``checkpoint_every_events`` dispatched events (tag
    ``flow``) and, when the directory already holds a snapshot, *resumes*
    from the latest one — the continued run's artefacts are byte-identical
    to an uninterrupted flow (see ``docs/checkpoint.md``).
    """
    os.makedirs(work_directory, exist_ok=True)
    runner = _FlowRunner(continue_on_error)

    # 1. validation
    def _validate() -> bool:
        wellformed = validate_model(application.model)
        rules = check_design_rules(application.model)
        if platform.model is not application.model:
            platform_report = check_design_rules(platform.model)
            rules.issues.extend(platform_report.issues)
        if strict:
            wellformed.raise_on_errors()
            rules.raise_on_errors()
        return True

    runner.run("validate", _validate)

    # 1b. optional static analysis (tutlint) — fail fast before codegen.
    lint_report = None
    if lint:
        def _lint():
            from repro.analysis import run_lint
            from repro.errors import AnalysisError

            report = run_lint(application, platform, mapping, config=lint_config)
            if report.errors:
                summary = "; ".join(str(f) for f in report.errors[:5])
                raise AnalysisError(
                    f"{len(report.errors)} lint error(s): {summary}",
                    report.errors,
                )
            return report

        lint_report = runner.run("lint", _lint, requires=("validate",))

    # 2. XMI export
    def _export_xmi() -> str:
        xmi_text = model_to_xml(application.model)
        path = os.path.join(work_directory, "model.xmi")
        with open(ensure_parent(path), "w", encoding="utf-8") as handle:
            handle.write(xmi_text)
        return xmi_text

    xmi_text = runner.run("export-xmi", _export_xmi)
    xmi_path = (
        os.path.join(work_directory, "model.xmi") if xmi_text is not None else None
    )

    # 3. profiling stage 1: parse the XML presentation for group info
    group_info = runner.run(
        "parse-group-info",
        lambda: group_info_from_xmi(xmi_text, profiles=[application.profile]),
        requires=("export-xmi",),
    )

    # 4. code generation (with instrumentation)
    code_directory = os.path.join(work_directory, "generated")

    def _generate() -> Optional[GeneratedProject]:
        if not generate_c:
            return None
        project = generate_project(application, code_directory, instrument=True)
        project.write()
        return project

    # A failed lint blocks code generation: that is the point of linting
    # before codegen (the satellites downstream of it still depend on the
    # artefacts, so they cascade as skipped).
    runner.run("generate-code", _generate, requires=("lint",) if lint else ())
    if runner.failed("generate-code"):
        code_directory = None

    # 5. simulation → log-file
    log_path = os.path.join(work_directory, "simulation.tutlog")
    tracer = None
    if trace:
        from repro.observability import Tracer

        tracer = Tracer()

    def _simulate() -> SimulationResult:
        simulation = SystemSimulation(
            application, platform, mapping, faults=faults, tracer=tracer
        )
        checkpointer = None
        if checkpoint_dir is not None:
            from repro.checkpoint import (
                Checkpointer,
                CheckpointStore,
                EveryEvents,
                resume_simulation,
            )

            store = CheckpointStore(checkpoint_dir)
            snapshot = store.latest("flow")
            if snapshot is not None:
                resume_simulation(simulation, snapshot)
            checkpointer = Checkpointer(
                store, EveryEvents(checkpoint_every_events), tag="flow"
            )
            checkpointer.attach(simulation)
        try:
            result = simulation.run(duration_us)
        finally:
            if checkpointer is not None:
                checkpointer.detach()
        result.writer.write(log_path)
        return result

    result = runner.run("simulate", _simulate)
    if result is None:
        log_path = None

    # 5b. optional observability export: trace.json + metrics.json
    metrics_report = None
    trace_path = metrics_path = None
    if trace:
        trace_path = os.path.join(work_directory, "trace.json")
        metrics_path = os.path.join(work_directory, "metrics.json")

        def _trace():
            from repro.observability import collect_metrics, write_chrome_trace
            from repro.util.jsonout import envelope

            write_chrome_trace(
                tracer,
                trace_path,
                metadata={
                    "application": application.top.name,
                    "platform": platform.top.name,
                },
            )
            group_of = (
                dict(group_info.process_to_group)
                if group_info is not None
                else None
            )
            report = collect_metrics(
                tracer, result.end_time_ps, group_of=group_of
            )
            with open(ensure_parent(metrics_path), "w", encoding="utf-8") as handle:
                json.dump(
                    envelope("trace-metrics", report.to_dict()),
                    handle,
                    indent=2,
                    sort_keys=True,
                )
                handle.write("\n")
            return report

        metrics_report = runner.run("trace", _trace, requires=("simulate",))
        if metrics_report is None:
            trace_path = metrics_path = None

    # 6. profiling stage 3: combine and report
    report_path = os.path.join(work_directory, "profiling_report.txt")

    def _profile():
        profiling = analyze(result.log, group_info)
        report_text = render_report(
            profiling, title=f"Profiling report: {application.top.name}"
        )
        with open(ensure_parent(report_path), "w", encoding="utf-8") as handle:
            handle.write(report_text + "\n")
        return profiling, report_text

    profiled = runner.run(
        "profile", _profile, requires=("parse-group-info", "simulate")
    )
    if profiled is not None:
        profiling, report_text = profiled
    else:
        profiling, report_text, report_path = None, None, None

    # 7. optional exploration: close the Figure 2 loop (profile → remap)
    exploration = None
    exploration_path = None
    if explore_factory is not None:
        exploration_path = os.path.join(work_directory, "exploration.json")
        engine_runs: list = []

        def _explore():
            from repro.exploration import improvement_loop

            history = improvement_loop(
                explore_factory,
                mapping.assignment(),
                duration_us=explore_duration_us,
                cache_dir=explore_cache_dir,
                runs_out=engine_runs,
            )
            counters: Dict[str, int] = {}
            for engine_run in engine_runs:
                for key, value in engine_run.supervisor_counters().items():
                    counters[key] = counters.get(key, 0) + value
            payload = {
                "initial_assignment": mapping.assignment(),
                "steps": [
                    {
                        "assignment": candidate.assignment,
                        "cost": candidate.cost,
                        "bus_bytes": candidate.result.bus_bytes,
                        "max_pe_utilization": candidate.result.max_pe_utilization,
                    }
                    for candidate in history
                ],
                "supervisor": counters,
            }
            with open(ensure_parent(exploration_path), "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            return history

        exploration = runner.run("explore", _explore, requires=("simulate",))
        if exploration is None:
            exploration_path = None
        elif metrics_report is not None and metrics_path is not None:
            # surface the campaign's fault-tolerance counters through the
            # observability report and refresh the already-written artefact
            from repro.util.jsonout import envelope

            for engine_run in engine_runs:
                for key, value in engine_run.supervisor_counters().items():
                    metrics_report.campaign[key] = (
                        metrics_report.campaign.get(key, 0) + value
                    )
            with open(ensure_parent(metrics_path), "w", encoding="utf-8") as handle:
                json.dump(
                    envelope("trace-metrics", metrics_report.to_dict()),
                    handle,
                    indent=2,
                    sort_keys=True,
                )
                handle.write("\n")

    artifacts: Dict[str, str] = {}
    if exploration_path is not None:
        artifacts["exploration"] = exploration_path
    if xmi_path is not None:
        artifacts["xmi"] = xmi_path
    if log_path is not None:
        artifacts["log"] = log_path
    if trace_path is not None:
        artifacts["trace"] = trace_path
    if metrics_path is not None:
        artifacts["metrics"] = metrics_path
    if report_path is not None:
        artifacts["report"] = report_path
    if code_directory is not None:
        artifacts["code"] = code_directory

    return FlowResult(
        work_directory=work_directory,
        xmi_path=xmi_path,
        log_path=log_path,
        report_path=report_path,
        code_directory=code_directory,
        simulation=result,
        profiling=profiling,
        report_text=report_text,
        lint_report=lint_report,
        exploration=exploration,
        metrics=metrics_report,
        steps_run=tuple(runner.steps_run),
        artifacts=artifacts,
        failures=runner.failures,
    )
