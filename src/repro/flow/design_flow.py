"""The end-to-end design and profiling flow (paper Figures 1 and 2).

``run_design_flow`` executes every box of Figure 2 in order:

1. validate the UML model (well-formedness + TUT-Profile design rules);
2. serialise the model to XMI (the document external tools parse);
3. profiling stage 1 — model parsing → process-group information;
4. automatic code generation (C project with instrumentation);
5. simulation → simulation log-file;
6. profiling stage 3 — combine log + group info → profiling report.

Artefacts land in a work directory; the returned :class:`FlowResult`
carries both the file paths and the in-memory analysis objects so callers
(e.g. the improvement loop) can continue without re-reading files.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.application.model import ApplicationModel
from repro.codegen.project import GeneratedProject, generate_project
from repro.mapping.model import MappingModel
from repro.platform.model import PlatformModel
from repro.profiling.analysis import ProfilingData, analyze
from repro.profiling.groupinfo import group_info_from_xmi
from repro.profiling.report import render_report
from repro.simulation.system import SimulationResult, SystemSimulation
from repro.tutprofile.rules import check_design_rules
from repro.uml.validation import validate_model
from repro.uml.xmi import model_to_xml

FLOW_STEPS = (
    "validate",
    "export-xmi",
    "parse-group-info",
    "generate-code",
    "simulate",
    "profile",
)

#: Figure 1's inventory: the tools and target of the TUT-Profile flow and
#: our stand-in for each (documented substitutions, see DESIGN.md §2).
FLOW_INVENTORY = {
    "TUT-Profile": "repro.tutprofile",
    "Telelogic TAU G2": "repro.uml (metamodel + XMI + validation)",
    "UML Profiling tool": "repro.profiling",
    "Code generation": "repro.codegen",
    "Simulation": "repro.simulation",
    "Altera FPGA prototype": "repro.platform + repro.simulation (HIBI model)",
}


@dataclass
class FlowResult:
    """Artefacts and analyses of one flow execution."""

    work_directory: str
    xmi_path: str
    log_path: str
    report_path: str
    code_directory: str
    simulation: SimulationResult
    profiling: ProfilingData
    report_text: str
    steps_run: tuple = FLOW_STEPS
    artifacts: Dict[str, str] = field(default_factory=dict)


def run_design_flow(
    application: ApplicationModel,
    platform: PlatformModel,
    mapping: MappingModel,
    work_directory: str,
    duration_us: int = 100_000,
    generate_c: bool = True,
    strict: bool = True,
) -> FlowResult:
    """Run the complete Figure 2 flow; artefacts go to ``work_directory``."""
    os.makedirs(work_directory, exist_ok=True)

    # 1. validation
    wellformed = validate_model(application.model)
    rules = check_design_rules(application.model)
    if platform.model is not application.model:
        platform_report = check_design_rules(platform.model)
        rules.issues.extend(platform_report.issues)
    if strict:
        wellformed.raise_on_errors()
        rules.raise_on_errors()

    # 2. XMI export
    xmi_text = model_to_xml(application.model)
    xmi_path = os.path.join(work_directory, "model.xmi")
    with open(xmi_path, "w", encoding="utf-8") as handle:
        handle.write(xmi_text)

    # 3. profiling stage 1: parse the XML presentation for group info
    group_info = group_info_from_xmi(xmi_text, profiles=[application.profile])

    # 4. code generation (with instrumentation)
    code_directory = os.path.join(work_directory, "generated")
    if generate_c:
        project: Optional[GeneratedProject] = generate_project(
            application, code_directory, instrument=True
        )
        project.write()
    else:
        project = None

    # 5. simulation → log-file
    simulation = SystemSimulation(application, platform, mapping)
    result = simulation.run(duration_us)
    log_path = os.path.join(work_directory, "simulation.tutlog")
    result.writer.write(log_path)

    # 6. profiling stage 3: combine and report
    profiling = analyze(result.log, group_info)
    report_text = render_report(
        profiling, title=f"Profiling report: {application.top.name}"
    )
    report_path = os.path.join(work_directory, "profiling_report.txt")
    with open(report_path, "w", encoding="utf-8") as handle:
        handle.write(report_text + "\n")

    return FlowResult(
        work_directory=work_directory,
        xmi_path=xmi_path,
        log_path=log_path,
        report_path=report_path,
        code_directory=code_directory,
        simulation=result,
        profiling=profiling,
        report_text=report_text,
        artifacts={
            "xmi": xmi_path,
            "log": log_path,
            "report": report_path,
            "code": code_directory,
        },
    )
