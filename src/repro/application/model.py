"""Designer-facing application view (paper Section 3.1).

:class:`ApplicationModel` wraps a UML model with the TUT-Profile applied:
a top-level «Application» class composed of functional
(«ApplicationComponent», active) and structural (passive) components,
process instances («ApplicationProcess» parts), process groups and
«ProcessGrouping» dependencies.

The class also resolves the composite-structure wiring into a routing
table: for every (process, port, signal) it computes the receiving process
by following assembly connectors and descending through delegation
connectors of structural components — the information the simulator and
code generator need.

Restriction (documented): each structural component class is instantiated
at most once in the application, which holds for TUTMAC and keeps process
identity flat (the paper, too, names processes uniquely).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ModelError
from repro.uml.classifier import Class, Signal
from repro.uml.dependency import Dependency
from repro.uml.instance import InstanceSpecification
from repro.uml.packages import Model, Package
from repro.uml.statemachine import StateMachine
from repro.uml.structure import Connector, ConnectorEnd, Port, Property
from repro.tutprofile import (
    APPLICATION,
    APPLICATION_COMPONENT,
    APPLICATION_PROCESS,
    PROCESS_GROUP,
    PROCESS_GROUPING,
    TUT_PROFILE,
)

ENVIRONMENT_GROUP = "Environment"

#: Comment prefix persisting environment boundary bindings in the model.
BINDING_COMMENT_PREFIX = "tut-boundary-binding: "


class ProcessInstance:
    """One runnable application process: a stereotyped part plus context."""

    def __init__(
        self,
        name: str,
        part: Property,
        component: Class,
        container: Class,
        container_part: Optional[Property],
        is_environment: bool = False,
    ) -> None:
        self.name = name
        self.part = part
        self.component = component
        self.container = container          # class whose structure holds the part
        self.container_part = container_part  # part instantiating the container, or None
        self.is_environment = is_environment

    @property
    def behavior(self) -> StateMachine:
        machine = self.component.classifier_behavior
        if machine is None:
            raise ModelError(f"component {self.component.name!r} has no behaviour")
        return machine

    def priority(self) -> int:
        return self.part.tag(APPLICATION_PROCESS, "Priority", 0)

    def process_type(self) -> str:
        return self.part.tag(APPLICATION_PROCESS, "ProcessType", "general")

    def __repr__(self) -> str:
        return f"ProcessInstance({self.name} : {self.component.name})"


class ApplicationModel:
    """Builder and query facade for one TUT-Profile application."""

    def __init__(self, name: str, model: Optional[Model] = None, profile=None) -> None:
        self.profile = profile if profile is not None else TUT_PROFILE
        self.model = model if model is not None else Model(f"{name}Model")
        self.package = Package("ApplicationView")
        self.model.add(self.package)
        self.signals_package = Package("Signals")
        self.package.add(self.signals_package)
        self.grouping_package = Package("Grouping")
        self.package.add(self.grouping_package)
        self.top = Class(name)
        self.package.add(self.top)
        self.profile.apply(self.top, APPLICATION)
        self.components: Dict[str, Class] = {}
        self.structurals: Dict[str, Class] = {}
        self.signals: Dict[str, Signal] = {}
        self.processes: Dict[str, ProcessInstance] = {}
        self.groups: Dict[str, InstanceSpecification] = {}
        self.groupings: List[Dependency] = []
        self.testbench = Class("Environment")
        self.package.add(self.testbench)
        # boundary port name -> (environment process, its port)
        self.boundary_bindings: Dict[str, Tuple[str, str]] = {}
        self._routing: Optional[Dict] = None

    # ------------------------------------------------------------------
    # reconstruction from a (possibly XMI-parsed) UML model
    # ------------------------------------------------------------------

    @classmethod
    def from_model(cls, model: Model, profile=None) -> "ApplicationModel":
        """Rebuild the facade from a model built earlier (e.g. parsed XMI).

        Discovers the application view from its stereotypes: the
        «Application» top class, «ApplicationComponent» classes, signal
        declarations, «ApplicationProcess» parts, groups and groupings,
        plus persisted environment boundary bindings.  The result is a
        fully functional :class:`ApplicationModel` — it routes, simulates
        and generates code like the original.
        """
        from repro.tutprofile import (
            APPLICATION as APP_ST,
            APPLICATION_COMPONENT as COMP_ST,
            APPLICATION_PROCESS as PROC_ST,
            PROCESS_GROUP as GROUP_ST,
            PROCESS_GROUPING as GROUPING_ST,
        )

        app = cls.__new__(cls)
        app.profile = profile if profile is not None else TUT_PROFILE
        app.model = model
        package = model.member("ApplicationView")
        if not isinstance(package, Package):
            raise ModelError("model has no ApplicationView package")
        app.package = package
        signals_package = package.member("Signals")
        grouping_package = package.member("Grouping")
        if not isinstance(signals_package, Package) or not isinstance(
            grouping_package, Package
        ):
            raise ModelError("ApplicationView lacks Signals/Grouping packages")
        app.signals_package = signals_package
        app.grouping_package = grouping_package

        tops = [
            e for e in package.members_of_type(Class) if e.has_stereotype(APP_ST)
        ]
        if len(tops) != 1:
            raise ModelError(
                f"expected exactly one «Application» class, found {len(tops)}"
            )
        app.top = tops[0]
        testbench = package.member("Environment")
        if not isinstance(testbench, Class):
            raise ModelError("ApplicationView lacks the Environment testbench class")
        app.testbench = testbench

        app.signals = {
            s.name: s for s in signals_package.members_of_type(Signal)
        }
        app.components = {}
        app.structurals = {}
        for klass in package.members_of_type(Class):
            if klass is app.top or klass is testbench:
                continue
            if klass.has_stereotype(COMP_ST):
                app.components[klass.name] = klass
            elif klass.is_structural:
                app.structurals[klass.name] = klass

        app.processes = {}
        containers = [app.top] + list(app.structurals.values())
        for container in containers:
            for part in container.parts:
                if part.has_stereotype(PROC_ST) and isinstance(part.type, Class):
                    app.processes[part.name] = ProcessInstance(
                        part.name, part, part.type, container, None, False
                    )
        for part in testbench.parts:
            if isinstance(part.type, Class):
                app.processes[part.name] = ProcessInstance(
                    part.name, part, part.type, testbench, None, True
                )

        app.groups = {
            g.name: g
            for g in grouping_package.members_of_type(InstanceSpecification)
            if g.has_stereotype(GROUP_ST)
        }
        app.groupings = [
            d
            for d in grouping_package.members_of_type(Dependency)
            if d.has_stereotype(GROUPING_ST)
        ]

        app.boundary_bindings = {}
        for comment in app.top.comments:
            body = comment.body
            if body.startswith(BINDING_COMMENT_PREFIX):
                fields = body[len(BINDING_COMMENT_PREFIX):].split()
                if len(fields) == 3:
                    app.boundary_bindings[fields[0]] = (fields[1], fields[2])
        app._routing = None
        return app

    # ------------------------------------------------------------------
    # signals
    # ------------------------------------------------------------------

    def signal(
        self,
        name: str,
        params: Sequence[Tuple[str, str]] = (),
        payload_bits: int = 0,
    ) -> Signal:
        """Declare a signal with named primitive-typed parameters."""
        if name in self.signals:
            raise ModelError(f"signal {name!r} already declared")
        new_signal = Signal(name, payload_bits=payload_bits)
        for param_name, type_name in params:
            new_signal.add_attribute(
                Property(param_name, self.model.primitive(type_name))
            )
        self.signals_package.add(new_signal)
        self.signals[name] = new_signal
        return new_signal

    def find_signal(self, name: str) -> Signal:
        try:
            return self.signals[name]
        except KeyError:
            raise ModelError(f"signal {name!r} is not declared") from None

    # ------------------------------------------------------------------
    # components
    # ------------------------------------------------------------------

    def component(
        self,
        name: str,
        code_memory: int = 0,
        data_memory: int = 0,
        real_time: str = "none",
    ) -> Class:
        """Declare a functional component: an active «ApplicationComponent»."""
        if name in self.components or name in self.structurals:
            raise ModelError(f"component {name!r} already declared")
        component = Class(name, is_active=True)
        self.package.add(component)
        self.profile.apply(
            component,
            APPLICATION_COMPONENT,
            CodeMemory=code_memory,
            DataMemory=data_memory,
            RealTimeType=real_time,
        )
        self.components[name] = component
        return component

    def structural(self, name: str) -> Class:
        """Declare a structural component: a passive class with parts only."""
        if name in self.components or name in self.structurals:
            raise ModelError(f"component {name!r} already declared")
        structural = Class(name, is_active=False)
        self.package.add(structural)
        self.structurals[name] = structural
        return structural

    def behavior(self, component: Class, machine_name: str = "") -> StateMachine:
        """Create and install the EFSM behaviour of a functional component."""
        machine = StateMachine(machine_name or f"{component.name}Behavior")
        component.set_behavior(machine)
        return machine

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------

    def part(self, container: Class, name: str, component: Class) -> Property:
        """Add an unstereotyped part (used for structural components)."""
        return container.add_part(Property(name, component))

    def process(
        self,
        container: Class,
        name: str,
        component: Class,
        priority: int = 0,
        process_type: str = "general",
        real_time: str = "none",
        environment: bool = False,
    ) -> ProcessInstance:
        """Instantiate a functional component as an «ApplicationProcess» part.

        ``environment`` marks testbench processes that run outside the
        platform (they consume no platform cycles; paper Table 4 reports
        the Environment row with 0 cycles).
        """
        if name in self.processes:
            raise ModelError(f"process {name!r} already exists")
        if component.name not in self.components:
            raise ModelError(
                f"{component.name!r} is not a functional component of this "
                "application"
            )
        part = container.add_part(Property(name, component))
        if not environment:
            # Environment parts stay unstereotyped: they are outside the
            # system and never appear in grouping or mapping views.
            self.profile.apply(
                part,
                APPLICATION_PROCESS,
                Priority=priority,
                ProcessType=process_type,
                RealTimeType=real_time,
            )
        container_part = self._part_instantiating(container)
        instance = ProcessInstance(
            name, part, component, container, container_part, environment
        )
        self.processes[name] = instance
        self._routing = None
        return instance

    def _part_instantiating(self, container: Class) -> Optional[Property]:
        if container is self.top:
            return None
        for part in self.top.parts:
            if part.type is container:
                return part
        return None  # may be wired later; resolved lazily in routing

    def environment_process(
        self, name: str, component: Class, priority: int = 0
    ) -> ProcessInstance:
        """Instantiate a testbench process outside the system boundary.

        Environment processes model the world around the system (traffic
        sources, the radio channel).  They execute at zero platform cost —
        paper Table 4 reports the Environment row at 0 cycles — and they
        talk to the application exclusively through boundary ports of the
        top-level class (see :meth:`bind_boundary`).
        """
        return self.process(
            self.testbench,
            name,
            component,
            priority=priority,
            environment=True,
        )

    def bind_boundary(
        self, boundary_port: str, env_process: str, env_port: str
    ) -> None:
        """Attach an environment process's port to a top-level boundary port."""
        if self.top.port(boundary_port) is None:
            raise ModelError(
                f"application class {self.top.name!r} has no boundary port "
                f"{boundary_port!r}"
            )
        process = self.find_process(env_process)
        if not process.is_environment:
            raise ModelError(
                f"{env_process!r} is not an environment process"
            )
        if process.component.port(env_port) is None:
            raise ModelError(
                f"environment component {process.component.name!r} has no port "
                f"{env_port!r}"
            )
        if boundary_port in self.boundary_bindings:
            raise ModelError(
                f"boundary port {boundary_port!r} is already bound"
            )
        self.boundary_bindings[boundary_port] = (env_process, env_port)
        # persist the binding in the UML model (as an owned comment on the
        # top-level class) so it survives XMI round-trips
        self.top.add_comment(
            f"{BINDING_COMMENT_PREFIX}{boundary_port} {env_process} {env_port}"
        )
        self._routing = None

    def connect(
        self,
        container: Class,
        end1: Tuple[Optional[str], str],
        end2: Tuple[Optional[str], str],
        name: str = "",
    ) -> Connector:
        """Wire two ports inside ``container``.

        Each end is ``(part_name_or_None, port_name)``; ``None`` makes the
        end a delegation end on the container's own boundary port.
        """
        resolved = []
        for part_name, port_name in (end1, end2):
            if part_name is None:
                port = container.port(port_name)
                if port is None:
                    raise ModelError(
                        f"class {container.name!r} has no port {port_name!r}"
                    )
                resolved.append(ConnectorEnd(port, None))
            else:
                part = container.part(part_name)
                if part is None:
                    raise ModelError(
                        f"class {container.name!r} has no part {part_name!r}"
                    )
                part_type = part.type
                if not isinstance(part_type, Class):
                    raise ModelError(f"part {part_name!r} has no class type")
                port = part_type.port(port_name)
                if port is None:
                    raise ModelError(
                        f"class {part_type.name!r} has no port {port_name!r}"
                    )
                resolved.append(ConnectorEnd(port, part))
        connector = Connector(name, resolved[0], resolved[1])
        container.add_connector(connector)
        self._routing = None
        return connector

    # ------------------------------------------------------------------
    # grouping (paper Section 3.1 "Process grouping")
    # ------------------------------------------------------------------

    def group(
        self, name: str, fixed: bool = False, process_type: str = "general"
    ) -> InstanceSpecification:
        """Create a «ProcessGroup»."""
        if name in self.groups:
            raise ModelError(f"process group {name!r} already exists")
        group = InstanceSpecification(name)
        self.grouping_package.add(group)
        self.profile.apply(
            group, PROCESS_GROUP, Fixed=fixed, ProcessType=process_type
        )
        self.groups[name] = group
        return group

    def assign(self, process_name: str, group_name: str, fixed: bool = False) -> Dependency:
        """Assign a process to a group via a «ProcessGrouping» dependency."""
        process = self.find_process(process_name)
        group = self.groups.get(group_name)
        if group is None:
            raise ModelError(f"process group {group_name!r} does not exist")
        existing = self.group_of(process_name)
        if existing is not None:
            raise ModelError(
                f"process {process_name!r} is already in group {existing!r}"
            )
        grouping = Dependency(
            f"{process_name}_in_{group_name}", client=process.part, supplier=group
        )
        self.grouping_package.add(grouping)
        self.profile.apply(grouping, PROCESS_GROUPING, Fixed=fixed)
        self.groupings.append(grouping)
        return grouping

    def unassign(self, process_name: str) -> None:
        """Remove a process's grouping (fails if the grouping is fixed)."""
        process = self.find_process(process_name)
        for grouping in list(self.groupings):
            if grouping.client is process.part:
                if grouping.tag(PROCESS_GROUPING, "Fixed", False):
                    raise ModelError(
                        f"grouping of {process_name!r} is fixed and cannot be "
                        "changed"
                    )
                self.groupings.remove(grouping)
                self.grouping_package.disown(grouping)
                self.grouping_package.packaged_elements.remove(grouping)
                return
        raise ModelError(f"process {process_name!r} is not grouped")

    def group_of(self, process_name: str) -> Optional[str]:
        """Name of the group holding ``process_name`` (None for ungrouped)."""
        process = self.find_process(process_name)
        for grouping in self.groupings:
            if grouping.client is process.part:
                return grouping.supplier.name
        return None

    def processes_in(self, group_name: str) -> List[ProcessInstance]:
        members = []
        for grouping in self.groupings:
            if grouping.supplier.name == group_name:
                member = self.processes.get(grouping.client.name)
                if member is not None:
                    members.append(member)
        return members

    def group_assignment(self) -> Dict[str, str]:
        """Mapping process name -> group name (environment processes map to
        the pseudo-group ``Environment``)."""
        assignment = {}
        for name, process in self.processes.items():
            if process.is_environment:
                assignment[name] = ENVIRONMENT_GROUP
            else:
                assignment[name] = self.group_of(name) or ENVIRONMENT_GROUP
        return assignment

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def find_process(self, name: str) -> ProcessInstance:
        try:
            return self.processes[name]
        except KeyError:
            raise ModelError(f"no process named {name!r}") from None

    def functional_processes(self) -> List[ProcessInstance]:
        return [p for p in self.processes.values() if not p.is_environment]

    def environment_processes(self) -> List[ProcessInstance]:
        return [p for p in self.processes.values() if p.is_environment]

    # ------------------------------------------------------------------
    # routing (composite structure resolution)
    # ------------------------------------------------------------------

    def _resolver(self) -> "_RoutingResolver":
        if self._routing is None:
            self._routing = _RoutingResolver(self)
        return self._routing

    def routing_table(self) -> Dict[Tuple[str, str, str], Tuple[str, str]]:
        """All resolvable routes ``(sender, port, signal) -> (receiver, port)``.

        Only constrained ports (with a declared ``required`` list) are
        enumerated; relay ports route at :meth:`route` time.
        """
        resolver = self._resolver()
        table: Dict[Tuple[str, str, str], Tuple[str, str]] = {}
        for name, process in self.processes.items():
            for port in process.component.all_ports():
                if not port.is_constrained:
                    continue
                for signal_name in port.required:
                    destinations = resolver.destinations(name, port, signal_name)
                    if len(destinations) == 1:
                        table[(name, port.name, signal_name)] = destinations[0]
        return table

    def send_destinations(
        self, sender: str, signal_name: str, via: Optional[str] = None
    ) -> List[Tuple[str, str]]:
        """All ``(process, port)`` destinations a send may reach (maybe none).

        The static, non-raising variant of :meth:`route`: it enumerates every
        resolvable destination instead of requiring uniqueness, which is what
        the signal-flow analysis (:mod:`repro.analysis.sigflow`) needs to
        build the send/receive matrix and flag unrouted or ambiguous sends.
        A ``via`` port the component does not own simply yields no routes.
        """
        process = self.find_process(sender)
        resolver = self._resolver()
        if via is not None:
            port = process.component.port(via)
            ports = [] if port is None else [port]
        else:
            ports = [
                p for p in process.component.all_ports() if p.emits(signal_name)
            ]
        destinations: List[Tuple[str, str]] = []
        for port in ports:
            for destination in resolver.destinations(sender, port, signal_name):
                if destination not in destinations:
                    destinations.append(destination)
        return destinations

    def route(
        self, sender: str, signal_name: str, via: Optional[str] = None
    ) -> Tuple[str, str]:
        """Destination ``(process, port)`` for a send.

        With ``via`` the named port is used; otherwise every sender port that
        may emit ``signal_name`` is searched.  The route must be unique.
        """
        process = self.find_process(sender)
        if via is not None and process.component.port(via) is None:
            raise ModelError(
                f"component {process.component.name!r} has no port {via!r}"
            )
        destinations = self.send_destinations(sender, signal_name, via)
        if not destinations:
            raise ModelError(
                f"no route for signal {signal_name!r} from process {sender!r}"
                + (f" via port {via!r}" if via else "")
            )
        if len(destinations) > 1:
            rendered = ", ".join(f"{p}.{q}" for p, q in destinations)
            raise ModelError(
                f"signal {signal_name!r} from process {sender!r} is ambiguous: "
                f"{rendered}"
            )
        return destinations[0]


class _RoutingResolver:
    """Signal-aware composite-structure routing.

    Routes are found by depth-first search over connector ends: from a
    sender's port, cross a connector, then either terminate on a functional
    part whose port accepts the signal, descend into a structural part
    (delegation inward), ascend through the instantiating part (delegation
    outward), or cross the system boundary to a bound environment process.
    Each connector is crossed at most once per search, so connector cycles
    terminate.
    """

    def __init__(self, application: ApplicationModel) -> None:
        self.application = application
        self.process_by_part = {
            id(p.part): name for name, p in application.processes.items()
        }
        # (environment process, port) -> boundary port name
        self.binding_of_env = {
            binding: boundary
            for boundary, binding in application.boundary_bindings.items()
        }
        self._check_single_instantiation()
        self._cache: Dict[Tuple[str, str, str], List[Tuple[str, str]]] = {}

    # -- public ---------------------------------------------------------------

    def destinations(
        self, process_name: str, port: Port, signal_name: str
    ) -> List[Tuple[str, str]]:
        """All (receiver, port) destinations for a signal leaving ``port``."""
        key = (process_name, port.name, signal_name)
        if key in self._cache:
            return self._cache[key]
        process = self.application.processes[process_name]
        if not port.emits(signal_name):
            results: List[Tuple[str, str]] = []
        elif process.is_environment:
            results = self._from_environment(process, port, signal_name)
        else:
            container = self._container_of_part(process.part)
            results = self._search(
                container, process.part, port, signal_name, frozenset()
            )
        unique: List[Tuple[str, str]] = []
        for destination in results:
            if destination not in unique:
                unique.append(destination)
        self._cache[key] = unique
        return unique

    # -- search ----------------------------------------------------------------

    def _from_environment(
        self, process: ProcessInstance, port: Port, signal_name: str
    ) -> List[Tuple[str, str]]:
        boundary_name = self.binding_of_env.get((process.name, port.name))
        if boundary_name is None:
            return []
        top = self.application.top
        boundary_port = top.port(boundary_name)
        if boundary_port is None or not boundary_port.accepts(signal_name):
            return []
        return self._search(top, None, boundary_port, signal_name, frozenset())

    def _search(
        self,
        container: Class,
        part: Optional[Property],
        port: Port,
        signal_name: str,
        crossed: frozenset,
    ) -> List[Tuple[str, str]]:
        results: List[Tuple[str, str]] = []
        for connector in container.connectors:
            if id(connector) in crossed or len(connector.ends) != 2:
                continue
            for end in connector.ends:
                if end.port is port and end.part is part:
                    other = connector.other_end(end)
                    results.extend(
                        self._resolve_end(
                            other,
                            container,
                            signal_name,
                            crossed | {id(connector)},
                        )
                    )
        return results

    def _resolve_end(
        self,
        end: ConnectorEnd,
        container: Class,
        signal_name: str,
        crossed: frozenset,
    ) -> List[Tuple[str, str]]:
        if end.part is None:
            # A boundary port of ``container``.
            if not end.port.emits(signal_name) and not end.port.accepts(signal_name):
                return []
            if container is self.application.top:
                binding = self.application.boundary_bindings.get(end.port.name)
                if binding is None:
                    return []
                env_name, env_port_name = binding
                env = self.application.processes.get(env_name)
                if env is None:
                    return []
                env_port = env.component.port(env_port_name)
                if env_port is not None and env_port.accepts(signal_name):
                    return [binding]
                return []
            instantiating = self._part_instantiating(container)
            if instantiating is None:
                return []
            outer_container = self._container_of_part(instantiating)
            return self._search(
                outer_container, instantiating, end.port, signal_name, crossed
            )
        target_part = end.part
        if id(target_part) in self.process_by_part:
            if end.port.accepts(signal_name):
                return [(self.process_by_part[id(target_part)], end.port.name)]
            return []
        target_type = target_part.type
        if isinstance(target_type, Class) and target_type.is_structural:
            if not end.port.accepts(signal_name) and not end.port.emits(signal_name):
                return []
            return self._search(target_type, None, end.port, signal_name, crossed)
        return []

    # -- helpers ------------------------------------------------------------------

    def _check_single_instantiation(self) -> None:
        counts: Dict[int, int] = {}
        for container in self._containers():
            for part in container.parts:
                if isinstance(part.type, Class) and part.type.is_structural:
                    counts[id(part.type)] = counts.get(id(part.type), 0) + 1
        for structural in self.application.structurals.values():
            if counts.get(id(structural), 0) > 1:
                raise ModelError(
                    f"structural component {structural.name!r} is instantiated "
                    "more than once; flat process routing requires single "
                    "instantiation"
                )

    def _containers(self) -> Iterable[Class]:
        yield self.application.top
        yield from self.application.structurals.values()

    def _container_of_part(self, part: Property) -> Class:
        owner = part.owner
        if isinstance(owner, Class):
            return owner
        raise ModelError(f"part {part.name!r} has no owning class")

    def _part_instantiating(self, structural: Class) -> Optional[Property]:
        for container in self._containers():
            for part in container.parts:
                if part.type is structural:
                    return part
        return None
