"""Application view: components, processes, behaviours, groups (Section 3.1)."""

from repro.application.model import (
    ApplicationModel,
    ENVIRONMENT_GROUP,
    ProcessInstance,
)

__all__ = ["ApplicationModel", "ENVIRONMENT_GROUP", "ProcessInstance"]
