"""Platform- and mapping-view blueprint generation.

Lays out HIBI topologies beyond the paper's two bridged segments:

* ``single`` — one segment, no bridge;
* ``paper``  — two segments joined by one bridge (Figure 7's shape);
* ``chain``  — ``n_segments`` segments, a bridge between each pair of
  neighbours (a pipeline of bus domains);
* ``star``   — every segment attached to one central bridge;
* ``mesh``   — a bridge for every segment pair (full interconnect).

Processing elements alternate NiosCPU/NiosDSP when the configuration is
heterogeneous and are attached round-robin, so every topology keeps a
valid transfer path between any two PEs.  The mapping view assigns each
generated group to a uniformly drawn *compatible* PE.
"""

from __future__ import annotations

from random import Random
from typing import Dict, List

from repro.genmodel.config import GeneratorConfig

PLATFORM_NAME = "GenPlatform"

#: Address stride between attached agents (wrapper bus addresses).
ADDRESS_STRIDE = 0x100


def _segment_count(config: GeneratorConfig) -> int:
    if config.topology == "single":
        return 1
    if config.topology == "paper":
        return 2
    return config.n_segments


def platform_blueprint(
    config: GeneratorConfig, rng: Random
) -> Dict[str, object]:
    """Draw the platform view: PEs, segments, bridges, attachments."""
    segment_total = _segment_count(config)
    segments = [
        {"name": f"seg{index}", "type": "HIBISegment"}
        for index in range(segment_total)
    ]
    attachments: List[Dict[str, object]] = []
    next_address = ADDRESS_STRIDE

    def attach(agent: str, segment: str) -> None:
        nonlocal next_address
        attachments.append(
            {"agent": agent, "segment": segment, "address": next_address}
        )
        next_address += ADDRESS_STRIDE

    pes: List[Dict[str, object]] = []
    types = (
        ("NiosCPU", "NiosDSP") if config.heterogeneous else ("NiosCPU",)
    )
    for index in range(config.n_pes):
        pes.append(
            {
                "name": f"pe{index}",
                "type": types[index % len(types)],
                "priority": index,
            }
        )
        attach(f"pe{index}", f"seg{index % segment_total}")

    bridges: List[Dict[str, object]] = []

    def bridge(name: str, joined: List[str]) -> None:
        bridges.append({"name": name, "type": "HIBIBridgeSegment"})
        for segment_name in joined:
            attach(segment_name, name)

    if config.topology == "paper":
        bridge("br0", ["seg0", "seg1"])
    elif config.topology == "chain":
        for index in range(segment_total - 1):
            bridge(f"br{index}", [f"seg{index}", f"seg{index + 1}"])
    elif config.topology == "star":
        bridge("br0", [f"seg{index}" for index in range(segment_total)])
    elif config.topology == "mesh":
        for left in range(segment_total):
            for right in range(left + 1, segment_total):
                bridge(f"br{left}_{right}", [f"seg{left}", f"seg{right}"])
    return {
        "name": PLATFORM_NAME,
        "pes": pes,
        "segments": segments + bridges,
        "attachments": attachments,
    }


#: Which PE component types can execute a "general" process group — the
#: generator only emits general groups, so compatibility is static.
GENERAL_CAPABLE_TYPES = ("NiosCPU", "NiosDSP")


def mapping_blueprint(
    config: GeneratorConfig,
    rng: Random,
    application: Dict[str, object],
    platform: Dict[str, object],
) -> Dict[str, object]:
    """Draw a random-but-valid «PlatformMapping» assignment."""
    compatible = [
        pe["name"]
        for pe in platform["pes"]
        if pe["type"] in GENERAL_CAPABLE_TYPES
    ]
    assignments = [
        [group["name"], rng.choice(compatible)]
        for group in application["groups"]
    ]
    return {"assignments": assignments, "duplicates": []}
