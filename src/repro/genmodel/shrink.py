"""Greedy deterministic shrinking of failing generator configurations.

When a fuzz invariant fails, the raw configuration is rarely the story —
the interesting question is the *smallest* configuration that still
fails.  :func:`shrink_config` walks the knobs in a fixed order, trying
the largest reductions first (jump to the knob's floor, then repeated
halvings toward it), keeping any reduction under which the caller's
predicate still reports failure.  The walk is purely a function of the
starting configuration and the predicate, so a shrink is reproducible
from a bug report.

:func:`repro_command` renders the one-line ``repro generate-model``
invocation that regenerates a configuration — the string CI prints next
to every failing seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Tuple

from repro.errors import GeneratorError
from repro.genmodel.config import KNOB_BOUNDS, GeneratorConfig

#: Knob walk order: structure first (usually the biggest wins), then
#: behavioural detail, then the platform.
SHRINK_ORDER = (
    "n_processes",
    "request_reply",
    "efsm_depth",
    "fanout",
    "n_variables",
    "guard_terms",
    "n_groups",
    "n_pes",
    "n_segments",
    "drive_period_us",
)

#: Safety valve: predicate invocations per shrink.
MAX_ATTEMPTS = 200


@dataclass
class ShrinkResult:
    """Outcome of one shrink: the minimal config and the search effort."""

    config: GeneratorConfig
    attempts: int
    reductions: int

    def summary(self) -> str:
        return (
            f"shrunk to size {self.config.size()} in {self.attempts} "
            f"attempt(s) ({self.reductions} reduction(s)): "
            + repro_command(self.config)
        )


def _knob_steps(value: int, floor: int) -> Iterator[int]:
    """Candidate reductions, most aggressive first, each tried once."""
    if value <= floor:
        return
    yield floor
    seen = {floor}
    current = value
    while current > floor:
        current = (current + floor) // 2
        if current not in seen and current < value:
            seen.add(current)
            yield current


def _candidates(config: GeneratorConfig) -> Iterator[GeneratorConfig]:
    """Every single-step reduction of ``config``, deterministic order."""
    if config.topology != "single":
        yield config.replace(topology="single", n_segments=1)
    for knob in SHRINK_ORDER:
        floor = KNOB_BOUNDS[knob][0]
        for value in _knob_steps(getattr(config, knob), floor):
            yield config.replace(**{knob: value})
    for index in range(len(config.inject_defects)):
        remaining = (
            config.inject_defects[:index] + config.inject_defects[index + 1:]
        )
        yield config.replace(inject_defects=remaining)


def shrink_config(
    config: GeneratorConfig,
    still_fails: Callable[[GeneratorConfig], bool],
    max_attempts: int = MAX_ATTEMPTS,
) -> ShrinkResult:
    """Minimise ``config`` while ``still_fails`` keeps returning True.

    ``still_fails`` must treat *any* outcome other than the original
    failure as success (shrinking chases one bug, not just any bug); it
    is never called on the starting configuration.
    """
    attempts = 0
    reductions = 0
    current = config
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for candidate in _candidates(current):
            if attempts >= max_attempts:
                break
            try:
                candidate = GeneratorConfig.from_dict(candidate.to_dict())
            except GeneratorError:
                continue
            attempts += 1
            try:
                failing = still_fails(candidate)
            except GeneratorError:
                continue
            if failing:
                current = candidate
                reductions += 1
                progress = True
                break
    return ShrinkResult(config=current, attempts=attempts, reductions=reductions)


def repro_command(config: GeneratorConfig) -> str:
    """The CLI line that regenerates exactly this configuration."""
    defaults = GeneratorConfig()
    parts: List[str] = ["python -m repro generate-model"]
    parts.append(f"--seed {config.seed}")
    flags: List[Tuple[str, str]] = [
        ("n_processes", "--processes"),
        ("efsm_depth", "--depth"),
        ("fanout", "--fanout"),
        ("n_variables", "--variables"),
        ("guard_terms", "--guard-terms"),
        ("request_reply", "--request-reply"),
        ("drive_period_us", "--drive-period-us"),
        ("n_segments", "--segments"),
        ("n_pes", "--pes"),
        ("n_groups", "--groups"),
    ]
    if config.topology != defaults.topology:
        parts.append(f"--topology {config.topology}")
    for field_name, flag in flags:
        value = getattr(config, field_name)
        if value != getattr(defaults, field_name):
            parts.append(f"{flag} {value}")
    if not config.heterogeneous:
        parts.append("--homogeneous")
    if config.inject_defects:
        parts.append("--defects " + ",".join(config.inject_defects))
    return " ".join(parts)
