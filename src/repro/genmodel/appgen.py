"""Application-view blueprint generation (EFSMs, signals, topology).

The generator never touches UML objects directly: it first draws a plain
``dict`` blueprint from a :class:`random.Random` seeded by the
configuration, and the builder (:mod:`repro.genmodel.build`) turns that
blueprint into model objects.  Canonical-JSON-dumping the blueprint is
therefore the model's byte identity — two equal configurations yield the
identical dump in any process.

The generated application is a *token ring* with optional request-reply
chains layered on top:

* every process periodically injects a token carrying a TTL and forwards
  incoming tokens while their TTL lasts, so the model is live under any
  mapping and its traffic is proportional to the simulated duration;
* each EFSM has a hierarchical ``hub`` state (completion-chained
  substates to the configured depth), guarded token-handling
  alternatives (the fan-out knob), and bounded-interval scratch
  variables, constructed so the model is lint-clean by design;
* request-reply chains add client/server port pairs where the client
  blocks in a wait state until the reply arrives.
"""

from __future__ import annotations

from random import Random
from typing import Dict, List

from repro.genmodel.config import GeneratorConfig

APPLICATION_NAME = "GenApp"

#: Scratch variables are updated modulo this, keeping their interval tight.
VAR_MODULUS = 7

#: Token payload sizes drawn per ring signal (bits).
TOKEN_PAYLOADS = (0, 64, 256)

#: Request/reply payload sizes (bits).
RR_PAYLOADS = (0, 32)

#: Generated groups carry this justification for suppressing S004: the
#: request-reply FIFO-deadlock heuristic cannot bite because every
#: generated client blocks in its wait state until the reply arrives, and
#: ring tokens are consumed by internal transitions without blocking.
S004_SUPPRESSION = (
    "tutlint: disable=S004 -- generated request-reply clients block in a "
    "wait state until the reply arrives (one request in flight per chain) "
    "and ring tokens never block, so the cross-segment FIFO deadlock "
    "cannot occur by construction."
)


def _guard(rng: Random, config: GeneratorConfig, param: str) -> str:
    """A satisfiable guard of ``guard_terms`` comparisons.

    Every term is feasible under the interval domain (``param`` is
    unbounded from the analysis's view; counters stay in known ranges),
    so the clean generator never produces an A001 finding.
    """
    terms: List[str] = []
    for _ in range(config.guard_terms):
        kind = rng.randrange(3)
        if kind == 0:
            modulus = rng.randrange(2, 5)
            terms.append(f"{param} % {modulus} == {rng.randrange(modulus)}")
        elif kind == 1:
            modulus = rng.randrange(2, 5)
            terms.append(f"count % {modulus} == {rng.randrange(modulus)}")
        else:
            index = rng.randrange(config.n_variables)
            terms.append(f"v{index} < {rng.randrange(1, VAR_MODULUS)}")
    joiner = rng.choice((" && ", " || "))
    return joiner.join(terms)


def _update(rng: Random, config: GeneratorConfig, param: str = "") -> str:
    """One scratch-variable update statement (reads what it writes)."""
    index = rng.randrange(config.n_variables)
    deltas = ["1", "2", "count % 5"]
    if param:
        deltas.append(f"{param} % 5")
    delta = rng.choice(deltas)
    return f"v{index} = (v{index} + {delta}) % {VAR_MODULUS};"


def _machine_blueprint(
    rng: Random,
    config: GeneratorConfig,
    index: int,
    token_in: str,
    token_out: str,
    client_chains: List[int],
    server_chains: List[int],
) -> Dict[str, object]:
    """The EFSM blueprint of process ``index``."""
    ttl = rng.randrange(1, min(config.n_processes, 4) + 1)
    entry = [f"set_timer(t_drive, {config.drive_period_us});"]
    rr_periods = {
        chain: config.drive_period_us * rng.randrange(2, 5)
        for chain in client_chains
    }
    for chain in client_chains:
        entry.append(f"set_timer(t_rr{chain}, {rr_periods[chain]});")

    variables = [["count", 0]]
    for v_index in range(config.n_variables):
        variables.append([f"v{v_index}", rng.randrange(VAR_MODULUS)])

    states: List[Dict[str, object]] = [
        {
            "name": "hub",
            "initial": True,
            "parent": None,
            "entry": " ".join(entry),
        }
    ]
    # hierarchical depth: a completion-chained substate ladder under hub
    substates = config.efsm_depth - 1
    for level in range(substates):
        states.append(
            {
                # each ladder state is the initial substate of its parent,
                # so entering hub descends the whole chain
                "name": f"d{level}",
                "initial": True,
                "parent": "hub" if level == 0 else f"d{level - 1}",
                "entry": _update(rng, config),
            }
        )

    transitions: List[Dict[str, object]] = []
    # drive timer: external hub self-loop re-arms every timer on re-entry.
    # It also touches every scratch variable: a variable that is never
    # assigned keeps a degenerate (constant) interval under the value
    # analysis, and a drawn guard like "v3 < 2" over it could be provably
    # infeasible — a spurious A001 on a model meant to be clean.
    touch = " ".join(
        f"v{v_index} = (v{v_index} + 1) % {VAR_MODULUS};"
        for v_index in range(config.n_variables)
    )
    transitions.append(
        {
            "source": "hub",
            "target": "hub",
            "trigger": {"kind": "timer", "timer": "t_drive"},
            "guard": "",
            "effect": (
                f"count = count + 1; send {token_out}({ttl}) via rout; "
                + touch
            ),
            "priority": 0,
            "internal": False,
        }
    )
    # token forwarding while the TTL lasts (keeps ring traffic bounded)
    transitions.append(
        {
            "source": "hub",
            "target": "hub",
            "trigger": {"kind": "signal", "signal": token_in, "params": ["n"]},
            "guard": "n > 0",
            "effect": (
                f"count = count + 1; send {token_out}(n - 1) via rout;"
            ),
            "priority": 0,
            "internal": True,
        }
    )
    # guarded handling alternatives (the fan-out knob), then a fallback
    for alt in range(config.fanout):
        transitions.append(
            {
                "source": "hub",
                "target": "hub",
                "trigger": {
                    "kind": "signal",
                    "signal": token_in,
                    "params": ["n"],
                },
                "guard": _guard(rng, config, "n"),
                "effect": _update(rng, config, "n"),
                "priority": 1 + alt,
                "internal": True,
            }
        )
    transitions.append(
        {
            "source": "hub",
            "target": "hub",
            "trigger": {"kind": "signal", "signal": token_in, "params": ["n"]},
            "guard": "",
            "effect": _update(rng, config),
            "priority": 1 + config.fanout,
            "internal": True,
        }
    )
    # request-reply client: fire a request, block until the reply arrives
    for chain in client_chains:
        states.append(
            {
                "name": f"wait{chain}",
                "initial": False,
                "parent": None,
                "entry": _update(rng, config),
            }
        )
        transitions.append(
            {
                "source": "hub",
                "target": f"wait{chain}",
                "trigger": {"kind": "timer", "timer": f"t_rr{chain}"},
                "guard": "",
                "effect": f"send req{chain}(count) via rr{chain};",
                "priority": 0,
                "internal": False,
            }
        )
        transitions.append(
            {
                "source": f"wait{chain}",
                "target": "hub",
                "trigger": {
                    "kind": "signal",
                    "signal": f"rep{chain}",
                    "params": ["x"],
                },
                "guard": "",
                "effect": _update(rng, config, "x"),
                "priority": 0,
                "internal": False,
            }
        )
    # request-reply server: answer immediately from the hub
    for chain in server_chains:
        transitions.append(
            {
                "source": "hub",
                "target": "hub",
                "trigger": {
                    "kind": "signal",
                    "signal": f"req{chain}",
                    "params": ["x"],
                },
                "guard": "",
                "effect": (
                    f"send rep{chain}(x) via rs{chain}; "
                    + _update(rng, config, "x")
                ),
                "priority": 0,
                "internal": True,
            }
        )
    return {
        "variables": variables,
        "states": states,
        "transitions": transitions,
    }


def application_blueprint(
    config: GeneratorConfig, rng: Random
) -> Dict[str, object]:
    """Draw the application view: signals, components, ring, groups."""
    count = config.n_processes
    signals: List[Dict[str, object]] = []
    for index in range(count):
        signals.append(
            {
                "name": f"tok{index}",
                "params": [["n", "Int32"]],
                "payload_bits": rng.choice(TOKEN_PAYLOADS),
            }
        )

    # request-reply chains pair disjoint (client, server) processes
    chain_members = rng.sample(range(count), 2 * config.request_reply)
    clients_of: Dict[int, List[int]] = {}
    servers_of: Dict[int, List[int]] = {}
    for chain in range(config.request_reply):
        client = chain_members[2 * chain]
        server = chain_members[2 * chain + 1]
        clients_of.setdefault(client, []).append(chain)
        servers_of.setdefault(server, []).append(chain)
        payload = rng.choice(RR_PAYLOADS)
        signals.append(
            {
                "name": f"req{chain}",
                "params": [["x", "Int32"]],
                "payload_bits": payload,
            }
        )
        signals.append(
            {
                "name": f"rep{chain}",
                "params": [["x", "Int32"]],
                "payload_bits": payload,
            }
        )

    components: List[Dict[str, object]] = []
    processes: List[Dict[str, object]] = []
    connectors: List[List[List[str]]] = []
    for index in range(count):
        token_in = f"tok{(index - 1) % count}"
        token_out = f"tok{index}"
        ports = [
            {"name": "rin", "provided": [token_in], "required": []},
            {"name": "rout", "provided": [], "required": [token_out]},
        ]
        for chain in clients_of.get(index, []):
            ports.append(
                {
                    "name": f"rr{chain}",
                    "provided": [f"rep{chain}"],
                    "required": [f"req{chain}"],
                }
            )
        for chain in servers_of.get(index, []):
            ports.append(
                {
                    "name": f"rs{chain}",
                    "provided": [f"req{chain}"],
                    "required": [f"rep{chain}"],
                }
            )
        components.append(
            {
                "name": f"C{index}",
                "ports": ports,
                "machine": _machine_blueprint(
                    rng,
                    config,
                    index,
                    token_in,
                    token_out,
                    clients_of.get(index, []),
                    servers_of.get(index, []),
                ),
            }
        )
        processes.append(
            {
                "name": f"p{index}",
                "component": f"C{index}",
                "priority": rng.randrange(4),
            }
        )
        connectors.append(
            [[f"p{index}", "rout"], [f"p{(index + 1) % count}", "rin"]]
        )
    for chain in range(config.request_reply):
        client = chain_members[2 * chain]
        server = chain_members[2 * chain + 1]
        connectors.append(
            [[f"p{client}", f"rr{chain}"], [f"p{server}", f"rs{chain}"]]
        )

    # partition processes into non-empty groups, round-robin on a shuffle
    group_count = min(config.n_groups, count)
    order = list(range(count))
    rng.shuffle(order)
    members: List[List[str]] = [[] for _ in range(group_count)]
    for position, process_index in enumerate(order):
        members[position % group_count].append(f"p{process_index}")
    groups = [
        {
            "name": f"g{group_index}",
            "process_type": "general",
            "members": sorted(
                member_list, key=lambda name: int(name[1:])
            ),
            "comments": [S004_SUPPRESSION],
        }
        for group_index, member_list in enumerate(members)
    ]
    return {
        "name": APPLICATION_NAME,
        "signals": signals,
        "components": components,
        "processes": processes,
        "connectors": connectors,
        "groups": groups,
    }
