"""Blueprint → UML model construction, and the top-level generator entry.

:func:`generate_blueprint` draws the plain-dict blueprint (application,
platform, mapping, plus any injected defects) from the configuration's
seed; :func:`build_from_blueprint` turns a blueprint into live
``ApplicationModel`` / ``PlatformModel`` / ``MappingModel`` views sharing
one UML model (so a single XMI document carries the whole system, like
the hand-built TUTWLAN case); :func:`generate_model` composes the two.

Byte identity: ``blueprint_json(generate_blueprint(config))`` is the
model's canonical serialized form.  It depends only on the configuration
— never on process state, dict ordering or wall-clock — which the
determinism tests assert across subprocess boundaries.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from random import Random
from typing import Dict, Optional

from repro.application.model import ApplicationModel
from repro.genmodel.appgen import application_blueprint
from repro.genmodel.config import GeneratorConfig
from repro.genmodel.platgen import mapping_blueprint, platform_blueprint
from repro.mapping.model import MappingModel
from repro.platform.library import standard_library
from repro.platform.model import PlatformModel
from repro.tutprofile import PLATFORM_MAPPING
from repro.uml import Port
from repro.uml.dependency import Dependency
from repro.uml.statemachine import SignalTrigger, TimerTrigger, Trigger

BLUEPRINT_SCHEMA = "repro.genmodel/1"


@dataclass
class GeneratedModel:
    """One generated system: the three views plus their blueprint."""

    config: GeneratorConfig
    blueprint: Dict[str, object]
    application: ApplicationModel
    platform: PlatformModel
    mapping: MappingModel


def generate_blueprint(config: GeneratorConfig) -> Dict[str, object]:
    """The complete, deterministic blueprint for ``config``."""
    rng = Random(config.seed)
    application = application_blueprint(config, rng)
    platform = platform_blueprint(config, rng)
    mapping = mapping_blueprint(config, rng, application, platform)
    blueprint: Dict[str, object] = {
        "schema": BLUEPRINT_SCHEMA,
        "config": config.to_dict(),
        "application": application,
        "platform": platform,
        "mapping": mapping,
    }
    if config.inject_defects:
        from repro.genmodel.defects import apply_defects

        apply_defects(blueprint, config.inject_defects)
    return blueprint


def blueprint_json(blueprint: Dict[str, object]) -> str:
    """The canonical JSON dump — the model's byte-identical form."""
    return json.dumps(blueprint, sort_keys=True, separators=(",", ":"))


def _trigger_from_dict(data: Optional[Dict[str, object]]) -> Optional[Trigger]:
    if data is None:
        return None
    kind = data["kind"]
    if kind == "signal":
        return SignalTrigger(data["signal"], list(data.get("params", [])))
    if kind == "timer":
        return TimerTrigger(data["timer"])
    return None  # "completion"


def build_application(blueprint: Dict[str, object]) -> ApplicationModel:
    """Instantiate the application view of ``blueprint``."""
    data = blueprint["application"]
    app = ApplicationModel(data["name"])
    for signal in data["signals"]:
        app.signal(
            signal["name"],
            [tuple(param) for param in signal["params"]],
            payload_bits=signal["payload_bits"],
        )
    for component_data in data["components"]:
        component = app.component(component_data["name"])
        for port in component_data["ports"]:
            component.add_port(
                Port(
                    port["name"],
                    provided=list(port["provided"]),
                    required=list(port["required"]),
                )
            )
        machine = app.behavior(component)
        machine_data = component_data["machine"]
        for name, initial_value in machine_data["variables"]:
            machine.variable(name, initial_value)
        for state in machine_data["states"]:
            machine.state(
                state["name"],
                initial=state["initial"],
                parent=state["parent"],
                entry=state.get("entry", ""),
                exit=state.get("exit", ""),
            )
        for transition in machine_data["transitions"]:
            machine.transition(
                transition["source"],
                transition["target"],
                trigger=_trigger_from_dict(transition["trigger"]),
                guard=transition.get("guard", ""),
                effect=transition.get("effect", ""),
                priority=transition.get("priority", 0),
                internal=transition.get("internal", False),
            )
    for process in data["processes"]:
        app.process(
            app.top,
            process["name"],
            app.components[process["component"]],
            priority=process.get("priority", 0),
        )
    for (left_part, left_port), (right_part, right_port) in (
        (tuple(end) for end in connector) for connector in data["connectors"]
    ):
        app.connect(
            app.top, (left_part, left_port), (right_part, right_port)
        )
    for group_data in data["groups"]:
        group = app.group(
            group_data["name"], process_type=group_data["process_type"]
        )
        for comment in group_data.get("comments", []):
            group.add_comment(comment)
        for member in group_data["members"]:
            app.assign(member, group_data["name"])
    return app


def build_platform(
    blueprint: Dict[str, object], application: ApplicationModel
) -> PlatformModel:
    """Instantiate the platform view into the application's UML model."""
    data = blueprint["platform"]
    platform = PlatformModel(
        data["name"],
        standard_library(profile=application.profile),
        model=application.model,
        profile=application.profile,
    )
    for pe in data["pes"]:
        platform.instantiate(pe["name"], pe["type"], priority=pe["priority"])
    for segment in data["segments"]:
        platform.segment(segment["name"], segment["type"])
    for attachment in data["attachments"]:
        platform.attach(
            attachment["agent"],
            attachment["segment"],
            address=attachment["address"],
        )
    return platform


def build_mapping(
    blueprint: Dict[str, object],
    application: ApplicationModel,
    platform: PlatformModel,
) -> MappingModel:
    """Instantiate the mapping view (including injected M005 duplicates)."""
    data = blueprint["mapping"]
    mapping = MappingModel(application, platform)
    for group_name, pe_name in data["assignments"]:
        mapping.map(group_name, pe_name)
    for group_name, pe_name in data.get("duplicates", []):
        # a second «PlatformMapping» for an already-mapped group; only the
        # M005 defect injector emits these, bypassing map()'s refusal
        group = application.groups[group_name]
        pe = platform.pe(pe_name)
        duplicate = Dependency(
            f"{group_name}_to_{pe_name}_dup", client=group, supplier=pe.part
        )
        mapping.package.add(duplicate)
        mapping.profile.apply(duplicate, PLATFORM_MAPPING, Fixed=False)
    return mapping


def build_from_blueprint(
    blueprint: Dict[str, object],
    config: Optional[GeneratorConfig] = None,
) -> GeneratedModel:
    """All three views of ``blueprint``, sharing one UML model."""
    if config is None:
        config = GeneratorConfig.from_dict(blueprint["config"])
    application = build_application(blueprint)
    platform = build_platform(blueprint, application)
    mapping = build_mapping(blueprint, application, platform)
    return GeneratedModel(
        config=config,
        blueprint=blueprint,
        application=application,
        platform=platform,
        mapping=mapping,
    )


def generate_model(config: GeneratorConfig) -> GeneratedModel:
    """Generate the blueprint for ``config`` and build its model views."""
    return build_from_blueprint(generate_blueprint(config), config=config)
