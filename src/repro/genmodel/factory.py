"""Exploration-builder factory for generated models.

The exploration engine resolves candidate builders by dotted reference
(``module:attribute``) so worker subprocesses can rebuild systems without
pickling UML objects.  Generated models get the same treatment through a
*token*: the configuration's canonical JSON, base32-packed into an
attribute name this module resolves dynamically via ``__getattr__``.

    token = builder_token(config)          # "repro.genmodel.factory:gen_..."
    spec = CandidateSpec.make(token, mapping, ...)

Any process that can import ``repro`` can resolve the token — the whole
model rides inside the reference, so generated candidates work with the
multiprocess campaign runner and the on-disk result cache unchanged.
"""

from __future__ import annotations

import base64
import json

from repro.errors import GeneratorError
from repro.genmodel.config import GeneratorConfig

MODULE = "repro.genmodel.factory"
PREFIX = "gen_"


def encode_config(config: GeneratorConfig) -> str:
    """Pack a configuration into a base32 attribute suffix."""
    raw = config.canonical_json().encode("ascii")
    return base64.b32encode(raw).decode("ascii").rstrip("=").lower()


def decode_config(suffix: str) -> GeneratorConfig:
    """Inverse of :func:`encode_config`."""
    padded = suffix.upper()
    padded += "=" * (-len(padded) % 8)
    try:
        raw = base64.b32decode(padded).decode("ascii")
        data = json.loads(raw)
    except Exception as exc:
        raise GeneratorError(f"malformed generator token: {exc}") from exc
    return GeneratorConfig.from_dict(data)


def builder_token(config: GeneratorConfig) -> str:
    """The ``module:attribute`` builder reference for ``config``."""
    return f"{MODULE}:{PREFIX}{encode_config(config)}"


def _make_builder(config: GeneratorConfig):
    def builder(grouping=None, arq=False):
        if grouping is not None or arq:
            raise GeneratorError(
                "generated builders fix their grouping in the "
                "GeneratorConfig; grouping/arq overrides are not supported"
            )
        from repro.genmodel.build import generate_model

        generated = generate_model(config)
        return generated.application, generated.platform

    builder.__name__ = f"{PREFIX}{encode_config(config)}"
    builder.__qualname__ = builder.__name__
    builder.generator_config = config
    return builder


def __getattr__(name: str):
    if name.startswith(PREFIX):
        return _make_builder(decode_config(name[len(PREFIX):]))
    raise AttributeError(f"module {MODULE!r} has no attribute {name!r}")
