"""Seeded synthetic-model generation and the differential fuzz pipeline.

The TUTWLAN/TUTMAC cases exercise one hand-built shape; this package
generates *families* of well-formed TUT-Profile systems — EFSM
applications, HIBI platform topologies and «PlatformMapping» groupings —
deterministically from a :class:`GeneratorConfig` seed, and drives them
through the whole flow (validate → lint → simulate → checkpoint/resume →
explore → prune) checking the cross-subsystem invariants the tools
promise.  See ``docs/model_generator.md``.

Entry points:

* :func:`generate_model` / ``repro generate-model`` — one seeded system;
* :func:`repro.genmodel.pipeline.run_pipeline` — the invariant pipeline;
* :func:`repro.genmodel.shrink.shrink_config` — failing-config minimiser;
* :func:`config_for_seed` — the fuzz campaign's seed → configuration map.
"""

from repro.genmodel.build import (
    BLUEPRINT_SCHEMA,
    GeneratedModel,
    blueprint_json,
    build_from_blueprint,
    generate_blueprint,
    generate_model,
)
from repro.genmodel.config import KNOB_BOUNDS, TOPOLOGIES, GeneratorConfig
from repro.genmodel.defects import apply_defects, known_defects
from repro.genmodel.factory import builder_token, decode_config, encode_config
from repro.genmodel.pipeline import run_pipeline
from repro.genmodel.shrink import ShrinkResult, repro_command, shrink_config

__all__ = [
    "BLUEPRINT_SCHEMA",
    "GeneratedModel",
    "GeneratorConfig",
    "KNOB_BOUNDS",
    "TOPOLOGIES",
    "ShrinkResult",
    "apply_defects",
    "blueprint_json",
    "build_from_blueprint",
    "builder_token",
    "config_for_seed",
    "decode_config",
    "encode_config",
    "generate_blueprint",
    "generate_model",
    "known_defects",
    "repro_command",
    "run_pipeline",
    "shrink_config",
]


def config_for_seed(seed: int) -> GeneratorConfig:
    """The fuzz campaign's deterministic seed → configuration spread.

    Cycles the knobs so a contiguous seed range covers every topology,
    several ring sizes, hierarchy depths and request-reply densities —
    the same function the CI smoke job and a local repro use, so a
    failing seed number alone identifies the model.
    """
    topologies = ("single", "paper", "chain", "star", "mesh")
    topology = topologies[seed % len(topologies)]
    n_processes = 2 + (seed % 5)
    return GeneratorConfig(
        seed=seed,
        n_processes=n_processes,
        efsm_depth=1 + (seed % 3),
        fanout=1 + (seed % 3),
        n_variables=1 + (seed % 4),
        guard_terms=1 + (seed % 3),
        request_reply=min(seed % 2, n_processes // 2),
        drive_period_us=100 + 50 * (seed % 4),
        topology=topology,
        n_segments=1 if topology == "single" else 2 + (seed % 2),
        n_pes=2 + (seed % 4),
        heterogeneous=bool(seed % 2 == 0),
        n_groups=2 + (seed % 3),
    )
