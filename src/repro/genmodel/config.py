"""Generator configuration: the seeded knob set of the synthetic models.

A :class:`GeneratorConfig` is the *complete* input of the generator: the
same configuration always produces the byte-identical model blueprint
(see :mod:`repro.genmodel.appgen`).  Every knob is a plain JSON value so
a configuration round-trips losslessly through :meth:`to_dict` /
:meth:`from_dict` and the canonical-JSON encoding the factory tokens and
the determinism tests are built on.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields
from typing import Dict, Tuple

from repro.errors import GeneratorError

#: Platform topologies the generator can lay out (docs/model_generator.md).
TOPOLOGIES = ("single", "paper", "chain", "star", "mesh")

#: Inclusive (low, high) bounds per scalar knob, enforced at construction.
KNOB_BOUNDS: Dict[str, Tuple[int, int]] = {
    "n_processes": (2, 64),
    "efsm_depth": (1, 8),
    "fanout": (1, 8),
    "n_variables": (1, 16),
    "guard_terms": (1, 6),
    "request_reply": (0, 8),
    "drive_period_us": (10, 100_000),
    "n_segments": (1, 8),
    "n_pes": (1, 24),
    "n_groups": (1, 64),
}


@dataclass(frozen=True)
class GeneratorConfig:
    """All knobs of one synthetic model; hashable and JSON-round-trippable.

    ``seed`` drives every random choice; the remaining knobs bound the
    shapes drawn from it.  ``inject_defects`` names lint rules
    (``E001``…``M005``) whose trigger constructions are spliced into the
    otherwise-clean model (see :mod:`repro.genmodel.defects`).
    """

    seed: int = 0
    # -- application shape --------------------------------------------------
    n_processes: int = 4       # ring length (one process per component)
    efsm_depth: int = 2        # state-hierarchy depth of each hub state
    fanout: int = 2            # guarded token-handling alternatives per EFSM
    n_variables: int = 2       # scratch variables beyond the token counter
    guard_terms: int = 2       # comparison terms per generated guard
    request_reply: int = 1     # client/server request-reply chains
    drive_period_us: int = 200  # token-injection timer period
    # -- platform shape -----------------------------------------------------
    topology: str = "paper"    # one of TOPOLOGIES
    n_segments: int = 2        # HIBI segments (chain/star/mesh topologies)
    n_pes: int = 3             # processing elements, round-robin on segments
    heterogeneous: bool = True  # alternate NiosCPU/NiosDSP vs. all NiosCPU
    # -- mapping shape ------------------------------------------------------
    n_groups: int = 3          # process groups (clamped to n_processes)
    # -- defect injection ---------------------------------------------------
    inject_defects: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int):
            raise GeneratorError(f"seed must be an int, got {self.seed!r}")
        for name, (low, high) in KNOB_BOUNDS.items():
            value = getattr(self, name)
            if not isinstance(value, int) or not low <= value <= high:
                raise GeneratorError(
                    f"{name} must be an int in [{low}, {high}], got {value!r}"
                )
        if self.topology not in TOPOLOGIES:
            raise GeneratorError(
                f"topology must be one of {', '.join(TOPOLOGIES)}, "
                f"got {self.topology!r}"
            )
        if self.topology in ("chain", "star", "mesh") and self.n_segments < 2:
            raise GeneratorError(
                f"{self.topology!r} topology needs n_segments >= 2"
            )
        if self.topology == "mesh" and self.n_segments > 5:
            raise GeneratorError("mesh topology is bounded to 5 segments")
        if self.request_reply > self.n_processes // 2:
            raise GeneratorError(
                "request_reply chains need two distinct processes each: "
                f"{self.request_reply} chains exceed {self.n_processes} "
                "processes"
            )
        # normalise the defect tuple so equal configs encode identically
        object.__setattr__(
            self, "inject_defects", tuple(self.inject_defects)
        )
        for rule in self.inject_defects:
            if not isinstance(rule, str):
                raise GeneratorError(f"defect rule ids are strings: {rule!r}")

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """A plain-JSON encoding carrying every field."""
        data = asdict(self)
        data["inject_defects"] = list(self.inject_defects)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "GeneratorConfig":
        """Rebuild from :meth:`to_dict` output; unknown keys are rejected."""
        names = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - names)
        if unknown:
            raise GeneratorError(
                f"unknown GeneratorConfig field(s): {', '.join(unknown)}"
            )
        kwargs = dict(data)
        if "inject_defects" in kwargs:
            kwargs["inject_defects"] = tuple(kwargs["inject_defects"])
        return cls(**kwargs)

    def canonical_json(self) -> str:
        """The canonical (sorted, separator-free) JSON encoding.

        This string *is* the configuration's identity: factory tokens,
        cache digests and the byte-identity tests all derive from it.
        """
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def replace(self, **changes) -> "GeneratorConfig":
        """A copy with ``changes`` applied (validation re-runs)."""
        data = self.to_dict()
        data.update(changes)
        return self.from_dict(data)

    def size(self) -> int:
        """A scalar complexity measure the shrinker minimises."""
        return (
            self.n_processes
            + self.efsm_depth
            + self.fanout
            + self.n_variables
            + self.guard_terms
            + self.request_reply
            + self.n_segments
            + self.n_pes
            + self.n_groups
            + (0 if self.topology == "single" else 1)
        )
