"""Seeded defect injection: one constructive trigger per lint rule.

Each injector splices a small, self-contained defect construction into an
otherwise-clean blueprint — an extra component/process/group, a mapping
override, or a duplicate «PlatformMapping» — built so its target rule
*must* fire.  The lint-coverage suite drives every rule in the E/D/S/A/M
catalogues through these, proving no rule is dead code against
non-TUTMAC input.

Injected machines are deliberately minimal: a timer-driven ``idle``
self-loop (so the machine itself stays clean) plus the rule's trigger
construction.  Injectors may produce *additional* findings beyond their
target (e.g. an arity-mismatched send also fails signal-flow checks);
coverage tests assert the target rule is present, not that it is alone.

The ``A001``/``A003`` constructions are *sound* defects: the flagged
guard is infeasible by construction, so a concrete simulation can never
take it — which is exactly what the fuzz soundness invariant checks.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.errors import GeneratorError
from repro.genmodel.platgen import GENERAL_CAPABLE_TYPES

Blueprint = Dict[str, object]


def _timer(timer: str) -> Dict[str, object]:
    return {"kind": "timer", "timer": timer}


def _signal(name: str, params: Sequence[str]) -> Dict[str, object]:
    return {"kind": "signal", "signal": name, "params": list(params)}


def _transition(
    source: str,
    target: str,
    trigger: Dict[str, object],
    guard: str = "",
    effect: str = "",
    priority: int = 0,
    internal: bool = False,
) -> Dict[str, object]:
    return {
        "source": source,
        "target": target,
        "trigger": trigger,
        "guard": guard,
        "effect": effect,
        "priority": priority,
        "internal": internal,
    }


def _machine(
    entry_extra: str = "",
    variables: Sequence[Tuple[str, int]] = (),
    states: Sequence[Dict[str, object]] = (),
    transitions: Sequence[Dict[str, object]] = (),
    driver_priority: int = 0,
) -> Dict[str, object]:
    """A clean timer-driven base machine plus the defect construction."""
    entry = "set_timer(t, 100);"
    if entry_extra:
        entry = f"{entry} {entry_extra}"
    return {
        "variables": [["k", 0]] + [list(item) for item in variables],
        "states": [
            {"name": "idle", "initial": True, "parent": None, "entry": entry}
        ]
        + list(states),
        "transitions": [
            _transition(
                "idle",
                "idle",
                _timer("t"),
                effect="k = (k + 1) % 5;",
                priority=driver_priority,
            )
        ]
        + list(transitions),
    }


def _add_component(
    blueprint: Blueprint,
    name: str,
    machine: Dict[str, object],
    ports: Sequence[Dict[str, object]] = (),
    grouped: bool = True,
    pe: str = "",
) -> str:
    """Register a defect component/process (and its group + mapping)."""
    application = blueprint["application"]
    application["components"].append(
        {"name": name, "ports": list(ports), "machine": machine}
    )
    process_name = f"p_{name}"
    application["processes"].append(
        {"name": process_name, "component": name, "priority": 0}
    )
    if grouped:
        group_name = f"g_{name}"
        application["groups"].append(
            {
                "name": group_name,
                "process_type": "general",
                "members": [process_name],
                "comments": [],
            }
        )
        target = pe or blueprint["platform"]["pes"][0]["name"]
        blueprint["mapping"]["assignments"].append([group_name, target])
    return process_name


def _declare(blueprint: Blueprint, name: str, params: int, bits: int = 0):
    blueprint["application"]["signals"].append(
        {
            "name": name,
            "params": [[f"a{i}", "Int32"] for i in range(params)],
            "payload_bits": bits,
        }
    )


def _split_pes(blueprint: Blueprint, rule: str) -> Tuple[str, str]:
    """Two general-capable PEs on different (bridged) segments."""
    segment_of = {
        attachment["agent"]: attachment["segment"]
        for attachment in blueprint["platform"]["attachments"]
    }
    by_segment: Dict[str, str] = {}
    for pe in blueprint["platform"]["pes"]:
        if pe["type"] not in GENERAL_CAPABLE_TYPES:
            continue
        by_segment.setdefault(segment_of[pe["name"]], pe["name"])
    if len(by_segment) < 2:
        raise GeneratorError(
            f"defect {rule} needs processing elements on two bridged "
            "segments; use a multi-segment topology with n_pes >= 2"
        )
    names = sorted(by_segment)
    return by_segment[names[0]], by_segment[names[1]]


# ----------------------------------------------------------------------
# EFSM structure (E001-E006)
# ----------------------------------------------------------------------


def _inject_e001(blueprint: Blueprint) -> None:
    machine = _machine(
        states=[
            {"name": "orphan", "initial": False, "parent": None, "entry": ""}
        ]
    )
    _add_component(blueprint, "DefE001", machine)


def _inject_e002(blueprint: Blueprint) -> None:
    machine = _machine(
        driver_priority=1,
        transitions=[
            _transition("idle", "idle", _timer("t"), guard="1 == 0")
        ],
    )
    _add_component(blueprint, "DefE002", machine)


def _inject_e003(blueprint: Blueprint) -> None:
    # the base driver is unguarded at priority 0; a later transition on
    # the same timer can never be reached
    machine = _machine(
        transitions=[
            _transition(
                "idle", "idle", _timer("t"), effect="k = 0;", priority=1
            )
        ]
    )
    _add_component(blueprint, "DefE003", machine)


def _inject_e004(blueprint: Blueprint) -> None:
    machine = _machine(
        entry_extra="set_timer(t2, 500);",
        states=[
            {"name": "trap", "initial": False, "parent": None, "entry": ""}
        ],
        transitions=[_transition("idle", "trap", _timer("t2"))],
    )
    _add_component(blueprint, "DefE004", machine)


def _inject_e005(blueprint: Blueprint) -> None:
    machine = _machine(entry_extra="set_timer(t_orphan, 50);")
    _add_component(blueprint, "DefE005", machine)


def _inject_e006(blueprint: Blueprint) -> None:
    machine = _machine(
        transitions=[
            _transition("idle", "idle", _timer("t_never"), effect="k = 1;")
        ]
    )
    _add_component(blueprint, "DefE006", machine)


# ----------------------------------------------------------------------
# action-language dataflow (D001-D007)
# ----------------------------------------------------------------------


def _inject_d001(blueprint: Blueprint) -> None:
    machine = _machine(
        entry_extra="set_timer(t2, 300);",
        transitions=[
            _transition(
                "idle",
                "idle",
                _timer("t2"),
                effect="k = (undeclared_name + 1) % 5;",
            )
        ],
    )
    _add_component(blueprint, "DefD001", machine)


def _inject_d002(blueprint: Blueprint) -> None:
    machine = _machine(
        entry_extra="set_timer(t2, 300);",
        transitions=[
            _transition(
                "idle",
                "idle",
                _timer("t2"),
                guard="k == 0",
                effect="tmp = 1; k = (k + tmp) % 5;",
            ),
            _transition(
                "idle",
                "idle",
                _timer("t2"),
                effect="k = (k + tmp) % 5;",
                priority=1,
            ),
        ],
    )
    _add_component(blueprint, "DefD002", machine)


def _inject_d003(blueprint: Blueprint) -> None:
    machine = _machine(variables=[("dead_store", 3)])
    _add_component(blueprint, "DefD003", machine)


def _inject_d004(blueprint: Blueprint) -> None:
    _declare(blueprint, "d4sig", params=1)
    sender = _machine(
        entry_extra="set_timer(t2, 300);",
        transitions=[
            _transition(
                "idle",
                "idle",
                _timer("t2"),
                effect="send d4sig(1, 2) via out4;",
            )
        ],
    )
    receiver = _machine(
        transitions=[
            _transition(
                "idle",
                "idle",
                _signal("d4sig", ["a0"]),
                effect="k = (k + a0) % 5;",
                internal=True,
                priority=1,
            )
        ]
    )
    sender_process = _add_component(
        blueprint,
        "DefD004",
        sender,
        ports=[{"name": "out4", "provided": [], "required": ["d4sig"]}],
    )
    receiver_process = _add_component(
        blueprint,
        "DefD004Rx",
        receiver,
        ports=[{"name": "in4", "provided": ["d4sig"], "required": []}],
    )
    blueprint["application"]["connectors"].append(
        [[sender_process, "out4"], [receiver_process, "in4"]]
    )


def _inject_d005(blueprint: Blueprint) -> None:
    machine = _machine(
        entry_extra="set_timer(t2, 300);",
        transitions=[
            _transition(
                "idle",
                "idle",
                _timer("t2"),
                effect="send ghost_signal(1) via out5;",
            )
        ],
    )
    _add_component(
        blueprint,
        "DefD005",
        machine,
        ports=[{"name": "out5", "provided": [], "required": []}],
    )


def _inject_d006(blueprint: Blueprint) -> None:
    machine = _machine(
        entry_extra="set_timer(t2, 300);",
        transitions=[
            _transition(
                "idle", "idle", _timer("t2"), effect="k = (k + 10 / 0) % 5;"
            )
        ],
    )
    _add_component(blueprint, "DefD006", machine)


def _inject_d007(blueprint: Blueprint) -> None:
    _declare(blueprint, "d7sig", params=1)
    machine = _machine(
        transitions=[
            _transition(
                "idle",
                "idle",
                _signal("d7sig", ["a0", "extra"]),
                effect="k = (k + a0 + extra) % 5;",
                internal=True,
                priority=1,
            )
        ]
    )
    _add_component(
        blueprint,
        "DefD007",
        machine,
        ports=[{"name": "in7", "provided": ["d7sig"], "required": []}],
    )


# ----------------------------------------------------------------------
# cross-process signal flow (S001-S004)
# ----------------------------------------------------------------------


def _inject_s001(blueprint: Blueprint) -> None:
    _declare(blueprint, "s1sig", params=1)
    sender = _machine(
        entry_extra="set_timer(t2, 300);",
        transitions=[
            _transition(
                "idle", "idle", _timer("t2"), effect="send s1sig(k) via out1;"
            )
        ],
    )
    # the receiver's port provides s1sig but its machine never reacts
    receiver = _machine()
    sender_process = _add_component(
        blueprint,
        "DefS001",
        sender,
        ports=[{"name": "out1", "provided": [], "required": ["s1sig"]}],
    )
    receiver_process = _add_component(
        blueprint,
        "DefS001Rx",
        receiver,
        ports=[{"name": "in1", "provided": ["s1sig"], "required": []}],
    )
    blueprint["application"]["connectors"].append(
        [[sender_process, "out1"], [receiver_process, "in1"]]
    )


def _inject_s002(blueprint: Blueprint) -> None:
    _declare(blueprint, "s2sig", params=1)
    machine = _machine(
        entry_extra="set_timer(t2, 300);",
        transitions=[
            _transition(
                "idle", "idle", _timer("t2"), effect="send s2sig(k) via out2;"
            )
        ],
    )
    _add_component(
        blueprint,
        "DefS002",
        machine,
        ports=[{"name": "out2", "provided": [], "required": ["s2sig"]}],
    )


def _inject_s003(blueprint: Blueprint) -> None:
    _declare(blueprint, "s3sig", params=1)
    machine = _machine(
        transitions=[
            _transition(
                "idle",
                "idle",
                _signal("s3sig", ["a0"]),
                effect="k = (k + a0) % 5;",
                internal=True,
                priority=1,
            )
        ]
    )
    _add_component(
        blueprint,
        "DefS003",
        machine,
        ports=[{"name": "in3", "provided": ["s3sig"], "required": []}],
    )


def _request_reply_pair(
    blueprint: Blueprint,
    rule: str,
    request: str,
    reply: str,
    payload_bits: int,
) -> None:
    """An unsuppressed request-reply pair split across two segments."""
    client_pe, server_pe = _split_pes(blueprint, rule)
    _declare(blueprint, request, params=1, bits=payload_bits)
    _declare(blueprint, reply, params=1, bits=payload_bits)
    client = _machine(
        entry_extra="set_timer(t2, 300);",
        states=[
            {"name": "wait", "initial": False, "parent": None, "entry": ""}
        ],
        transitions=[
            _transition(
                "idle",
                "wait",
                _timer("t2"),
                effect=f"send {request}(k) via creq;",
            ),
            _transition(
                "wait",
                "idle",
                _signal(reply, ["a0"]),
                effect="k = (k + a0) % 5;",
            ),
        ],
    )
    server = _machine(
        transitions=[
            _transition(
                "idle",
                "idle",
                _signal(request, ["a0"]),
                effect=f"send {reply}(a0) via srep;",
                internal=True,
                priority=1,
            )
        ]
    )
    client_process = _add_component(
        blueprint,
        f"Def{rule}Client",
        client,
        ports=[
            {"name": "creq", "provided": [reply], "required": [request]}
        ],
        pe=client_pe,
    )
    server_process = _add_component(
        blueprint,
        f"Def{rule}Server",
        server,
        ports=[
            {"name": "srep", "provided": [request], "required": [reply]}
        ],
        pe=server_pe,
    )
    blueprint["application"]["connectors"].append(
        [[client_process, "creq"], [server_process, "srep"]]
    )


def _inject_s004(blueprint: Blueprint) -> None:
    _request_reply_pair(blueprint, "S004", "s4req", "s4rep", payload_bits=0)


# ----------------------------------------------------------------------
# interval value analysis (A001-A004)
# ----------------------------------------------------------------------


def _dead_guard_machine() -> Dict[str, object]:
    """``a1`` provably stays at 0; the ``a1 > 10`` guard is dead.

    The guarded transition triggers A001 and its unreachable target's
    outgoing transition triggers A003 — and because the guard really is
    infeasible, a concrete simulation never takes either (the soundness
    invariant the fuzz harness replays).  ``a1`` is only ever re-assigned
    its initial value: the interval fixpoint's immediate widening blows
    any *changing* bound to infinity, so a stable constant is the only
    shape the analysis can still prove finite across a loop.
    """
    return _machine(
        entry_extra="set_timer(t2, 300);",
        variables=[("a1", 0)],
        states=[
            {"name": "a1dead", "initial": False, "parent": None, "entry": ""}
        ],
        transitions=[
            _transition(
                "idle",
                "a1dead",
                _timer("t2"),
                guard="a1 > 10",
                priority=0,
            ),
            _transition(
                "idle",
                "idle",
                _timer("t2"),
                effect="a1 = 0;",
                priority=1,
            ),
            _transition("a1dead", "idle", _timer("t2"), effect="a1 = 0;"),
        ],
    )


def _inject_a001(blueprint: Blueprint) -> None:
    _add_component(blueprint, "DefA001", _dead_guard_machine())


def _inject_a002(blueprint: Blueprint) -> None:
    machine = _machine(
        entry_extra="set_timer(t2, 300);",
        variables=[("big", 0)],
        transitions=[
            _transition(
                "idle",
                "idle",
                _timer("t2"),
                effect="big = 3000000000; k = (k + big % 5) % 5;",
            )
        ],
    )
    _add_component(blueprint, "DefA002", machine)


def _inject_a003(blueprint: Blueprint) -> None:
    _add_component(blueprint, "DefA003", _dead_guard_machine())


def _inject_a004(blueprint: Blueprint) -> None:
    # dv joins {0, 2}: the divisor interval contains zero without being
    # the constant zero (which would be D006's finding instead)
    machine = _machine(
        entry_extra="set_timer(t2, 300);",
        variables=[("dv", 0)],
        transitions=[
            _transition(
                "idle",
                "idle",
                _timer("t2"),
                guard="k % 2 == 0",
                effect="dv = 2;",
                priority=0,
            ),
            _transition(
                "idle",
                "idle",
                _timer("t2"),
                effect="k = (k + 8 / dv) % 5;",
                priority=1,
            ),
        ],
    )
    _add_component(blueprint, "DefA004", machine)


# ----------------------------------------------------------------------
# platform/mapping (M001-M005)
# ----------------------------------------------------------------------


def _inject_m001(blueprint: Blueprint) -> None:
    _add_component(blueprint, "DefM001", _machine(), grouped=False)


def _inject_m002(blueprint: Blueprint) -> None:
    pes = blueprint["platform"]["pes"]
    capable = [pe for pe in pes if pe["type"] in GENERAL_CAPABLE_TYPES]
    if len(capable) < 2:
        raise GeneratorError(
            "defect M002 needs a movable group and an idle compatible "
            "peer: use n_pes >= 2"
        )
    target = capable[0]["name"]
    blueprint["mapping"]["assignments"] = [
        [group_name, target]
        for group_name, _ in blueprint["mapping"]["assignments"]
    ]


def _inject_m003(blueprint: Blueprint) -> None:
    # a chatty pair dominating cross-group bytes across disjoint segments
    _request_reply_pair(
        blueprint, "M003", "m3req", "m3rep", payload_bits=1 << 17
    )


def _inject_m004(blueprint: Blueprint) -> None:
    # the same heavy pair saturates the bridge between its segments
    _request_reply_pair(
        blueprint, "M004", "m4req", "m4rep", payload_bits=1 << 17
    )


def _inject_m005(blueprint: Blueprint) -> None:
    group_name, pe_name = blueprint["mapping"]["assignments"][0]
    blueprint["mapping"]["duplicates"].append([group_name, pe_name])


#: rule id → blueprint transformer; keys double as the CLI's --defects
#: vocabulary and the coverage suite's completeness base.
INJECTORS: Dict[str, Callable[[Blueprint], None]] = {
    "E001": _inject_e001,
    "E002": _inject_e002,
    "E003": _inject_e003,
    "E004": _inject_e004,
    "E005": _inject_e005,
    "E006": _inject_e006,
    "D001": _inject_d001,
    "D002": _inject_d002,
    "D003": _inject_d003,
    "D004": _inject_d004,
    "D005": _inject_d005,
    "D006": _inject_d006,
    "D007": _inject_d007,
    "S001": _inject_s001,
    "S002": _inject_s002,
    "S003": _inject_s003,
    "S004": _inject_s004,
    "A001": _inject_a001,
    "A002": _inject_a002,
    "A003": _inject_a003,
    "A004": _inject_a004,
    "M001": _inject_m001,
    "M002": _inject_m002,
    "M003": _inject_m003,
    "M004": _inject_m004,
    "M005": _inject_m005,
}


def known_defects() -> List[str]:
    """Every injectable rule id, sorted."""
    return sorted(INJECTORS)


def apply_defects(blueprint: Blueprint, rules: Sequence[str]) -> None:
    """Apply each rule's injector to ``blueprint``, in the given order."""
    for rule in rules:
        injector = INJECTORS.get(rule)
        if injector is None:
            raise GeneratorError(
                f"no defect injector for rule {rule!r}; known rules: "
                + ", ".join(known_defects())
            )
        injector(blueprint)
