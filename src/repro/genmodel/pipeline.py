"""The differential fuzz pipeline: one generated model through the flow.

:func:`run_pipeline` drives a single :class:`GeneratorConfig` through
generate → validate → lint → simulate → checkpoint/resume → explore →
prune and checks the cross-subsystem invariants the repo's tools promise:

* **determinism** — generating the same configuration twice yields the
  byte-identical blueprint;
* **clean-by-construction** — a model generated without injected defects
  validates, passes the design rules and lints without errors (and
  without any value-analysis findings), and simulates with activity;
* **soundness** — a transition the interval analysis flags as dead
  (A001/A003) is never taken by the concrete simulation;
* **resume fidelity** — interrupting mid-run and resuming from the
  snapshot reproduces the uninterrupted run byte-for-byte (tutlog,
  Chrome trace, aggregated metrics);
* **worker invariance** — the exploration ranking (digests, result
  hashes, costs) is identical for every worker count;
* **prune safety** — static pruning never drops the candidate the full
  simulation ranks first.

Any violated invariant raises :class:`repro.errors.InvariantViolation`
carrying the stage name and the configuration, which the fuzz harness
feeds to the shrinker (:mod:`repro.genmodel.shrink`) to report the
smallest configuration that still fails.
"""

from __future__ import annotations

import itertools
import tempfile
from typing import Dict, List, Optional, Sequence, Tuple

from repro.checkpoint import (
    Checkpointer,
    CheckpointStore,
    EveryEvents,
    resume_simulation,
)
from repro.errors import InvariantViolation, SimulationInterrupted
from repro.exploration.engine import run_candidates
from repro.exploration.pruning import PruneConfig, prune_candidates
from repro.exploration.spec import CandidateSpec
from repro.genmodel.build import (
    GeneratedModel,
    blueprint_json,
    build_from_blueprint,
    generate_blueprint,
)
from repro.genmodel.config import GeneratorConfig
from repro.genmodel.factory import builder_token
from repro.analysis import run_lint
from repro.observability.export import render_chrome_trace
from repro.observability.metrics import collect_metrics
from repro.observability.tracer import Tracer
from repro.simulation.system import SimulationResult, SystemSimulation
from repro.tutprofile.rules import check_design_rules
from repro.uml.statemachine import SignalTrigger, TimerTrigger, Transition
from repro.uml.validation import validate_model

#: Defect sets the pipeline may still *simulate*: the injected dead-guard
#: machines (A001/A003) are behaviourally inert by construction, which is
#: exactly what the soundness invariant replays.  Every other defect is
#: checked at the lint stage only — e.g. a D006 division by zero would
#: crash the interpreter by design, and an M001 ungrouped process cannot
#: even be mapped.
SIMULATABLE_DEFECTS = frozenset({"A001", "A003"})

#: Default simulated horizon (µs): long enough for hundreds of events at
#: the default drive period, short enough for a 25-seed CI budget.
DEFAULT_DURATION_US = 3_000

#: Checkpoint stride (dispatched events between snapshots).
CHECKPOINT_STRIDE = 100

#: Cap on enumerated exploration candidates per pipeline run.
MAX_CANDIDATES = 6


def _fail(stage: str, message: str, config: GeneratorConfig) -> None:
    raise InvariantViolation(stage, message, config=config)


# ---------------------------------------------------------------------------
# stages
# ---------------------------------------------------------------------------


def check_determinism(config: GeneratorConfig) -> str:
    """Generate twice; return the canonical blueprint JSON."""
    first = blueprint_json(generate_blueprint(config))
    second = blueprint_json(generate_blueprint(config))
    if first != second:
        _fail(
            "determinism",
            "two generations of the same configuration produced different "
            f"blueprints ({len(first)} vs {len(second)} bytes)",
            config,
        )
    return first


def check_wellformed(generated: GeneratedModel) -> None:
    """Validation and design rules must hold even for defect models."""
    config = generated.config
    report = validate_model(generated.application.model)
    errors = [issue for issue in report.issues if issue.severity == "error"]
    if errors:
        _fail(
            "validate",
            "generated model fails UML well-formedness: "
            + "; ".join(str(issue) for issue in errors[:3]),
            config,
        )
    rules = check_design_rules(generated.application.model)
    rule_errors = [
        issue for issue in rules.issues if issue.severity == "error"
    ]
    # M001 deliberately leaves a process ungrouped (R5 warning only); the
    # M005 duplicate mapping is the one injected design-rule error.
    expected = "M005" in config.inject_defects
    if rule_errors and not expected:
        _fail(
            "design-rules",
            "generated model violates TUT-Profile design rules: "
            + "; ".join(str(issue) for issue in rule_errors[:3]),
            config,
        )


def check_lint(generated: GeneratedModel):
    """Run tutlint; clean configs must produce no errors and no A-findings."""
    config = generated.config
    report = run_lint(
        generated.application, generated.platform, generated.mapping
    )
    if not config.inject_defects:
        if report.errors:
            _fail(
                "lint",
                "defect-free generated model has lint errors: "
                + "; ".join(
                    f"{f.rule}: {f.message}" for f in report.errors[:3]
                ),
                config,
            )
        value_findings = [
            f for f in report.active if f.rule.startswith("A")
        ]
        if value_findings:
            _fail(
                "lint",
                "defect-free generated model has value-analysis findings: "
                + "; ".join(
                    f"{f.rule}: {f.message}" for f in value_findings[:3]
                ),
                config,
            )
    return report


def simulate(
    generated: GeneratedModel,
    duration_us: int,
    tracer: Optional[Tracer] = None,
) -> Tuple[SystemSimulation, SimulationResult]:
    """One fresh simulation of the generated system."""
    config = generated.config
    simulation = SystemSimulation(
        generated.application,
        generated.platform,
        generated.mapping,
        tracer=tracer,
    )
    try:
        result = simulation.run(duration_us)
    except Exception as exc:
        _fail(
            "simulate",
            f"simulation raised {type(exc).__name__}: {exc}",
            config,
        )
    if not config.inject_defects and result.dispatched_events == 0:
        _fail("simulate", "simulation dispatched no events", config)
    return simulation, result


def _trigger_label(transition: Transition) -> Optional[str]:
    trigger = transition.trigger
    if isinstance(trigger, TimerTrigger):
        return f"timer:{trigger.timer_name}"
    if isinstance(trigger, SignalTrigger):
        return trigger.signal_name
    return None


def _target_leaf(transition: Transition) -> str:
    return transition.target.enter_target().name


def _source_leaves(transition: Transition) -> set:
    source = transition.source
    if not source.is_composite:
        return {source.name}
    names = set()
    stack = list(source.substates)
    while stack:
        state = stack.pop()
        if state.is_composite:
            stack.extend(state.substates)
        else:
            names.add(state.name)
    names.add(source.name)
    return names


def check_soundness(
    generated: GeneratedModel, report, result: SimulationResult
) -> int:
    """No transition flagged dead by A001/A003 may execute concretely.

    Returns the number of flagged transitions checked.
    """
    config = generated.config
    flagged: List[Tuple[str, Transition]] = []
    for finding in report.findings:
        if finding.rule not in ("A001", "A003"):
            continue
        for element in finding.elements:
            if isinstance(element, Transition):
                flagged.append((finding.rule, element))
    if not flagged:
        return 0

    # which processes run the machine owning each flagged transition
    transition_processes: Dict[int, List[str]] = {}
    for name, process in generated.application.processes.items():
        machine = process.component.classifier_behavior
        if machine is None:
            continue
        for transition in machine.transitions:
            transition_processes.setdefault(id(transition), []).append(name)

    from repro.simulation.logfile import ExecRecord

    checked = 0
    for rule, transition in flagged:
        checked += 1
        processes = set(transition_processes.get(id(transition), ()))
        trigger = _trigger_label(transition)
        sources = _source_leaves(transition)
        target = None if transition.internal else _target_leaf(transition)
        for record in result.log.records:
            if not isinstance(record, ExecRecord):
                continue
            if record.process not in processes:
                continue
            if trigger is not None and record.trigger != trigger:
                continue
            if record.from_state not in sources:
                continue
            if target is not None and record.to_state != target:
                continue
            _fail(
                "soundness",
                f"{rule} flagged transition {transition.describe()!r} as "
                f"dead, but process {record.process!r} executed it at "
                f"{record.time_ps} ps",
                config,
            )
    return checked


def check_resume(
    config: GeneratorConfig,
    blueprint: Dict[str, object],
    duration_us: int,
    work_dir: str,
) -> int:
    """Interrupt/resume must replay the uninterrupted run byte-for-byte.

    Returns the interrupt point used (0 = too few events to interrupt).
    """
    def checkpointed_run(simulation, store, interrupt=None):
        checkpointer = Checkpointer(
            CheckpointStore(store),
            EveryEvents(CHECKPOINT_STRIDE),
            tag="fuzz",
            interrupt_after_events=interrupt,
        )
        checkpointer.attach(simulation)
        try:
            return simulation.run(duration_us)
        finally:
            checkpointer.detach()

    reference_model = build_from_blueprint(blueprint, config=config)
    reference_sim = SystemSimulation(
        reference_model.application,
        reference_model.platform,
        reference_model.mapping,
        tracer=Tracer(),
    )
    try:
        reference = checkpointed_run(reference_sim, f"{work_dir}/ref")
    except Exception as exc:
        _fail(
            "resume",
            f"reference simulation raised {type(exc).__name__}: {exc}",
            config,
        )
    if reference.dispatched_events < 2:
        return 0
    interrupt_at = max(1, reference.dispatched_events // 2)

    interrupted_model = build_from_blueprint(blueprint, config=config)
    interrupted_sim = SystemSimulation(
        interrupted_model.application,
        interrupted_model.platform,
        interrupted_model.mapping,
        tracer=Tracer(),
    )
    snapshot = None
    try:
        checkpointed_run(
            interrupted_sim, f"{work_dir}/interrupted", interrupt=interrupt_at
        )
    except SimulationInterrupted as exc:
        snapshot = exc.snapshot
    if snapshot is None:
        _fail(
            "resume",
            f"simulation was not interrupted at event {interrupt_at} "
            f"(reference dispatched {reference.dispatched_events})",
            config,
        )

    resumed_model = build_from_blueprint(blueprint, config=config)
    resumed_sim = SystemSimulation(
        resumed_model.application,
        resumed_model.platform,
        resumed_model.mapping,
        tracer=Tracer(),
    )
    resume_simulation(resumed_sim, snapshot)
    resumed = checkpointed_run(resumed_sim, f"{work_dir}/interrupted")

    if resumed.writer.render() != reference.writer.render():
        _fail(
            "resume",
            f"resumed tutlog differs from the uninterrupted run "
            f"(interrupted at event {interrupt_at})",
            config,
        )
    if resumed.dispatched_events != reference.dispatched_events:
        _fail(
            "resume",
            f"resumed run dispatched {resumed.dispatched_events} events, "
            f"reference {reference.dispatched_events}",
            config,
        )
    if resumed.end_time_ps != reference.end_time_ps:
        _fail(
            "resume",
            f"resumed run ended at {resumed.end_time_ps} ps, reference "
            f"{reference.end_time_ps} ps",
            config,
        )
    if render_chrome_trace(resumed_sim.tracer) != render_chrome_trace(
        reference_sim.tracer
    ):
        _fail("resume", "resumed Chrome trace differs from reference", config)
    reference_metrics = collect_metrics(
        reference_sim.tracer, reference.end_time_ps
    ).to_dict()
    resumed_metrics = collect_metrics(
        resumed_sim.tracer, resumed.end_time_ps
    ).to_dict()
    if resumed_metrics != reference_metrics:
        _fail("resume", "resumed metrics differ from reference", config)
    return interrupt_at


def candidate_specs(
    config: GeneratorConfig,
    generated: GeneratedModel,
    duration_us: int,
    limit: int = MAX_CANDIDATES,
) -> List[CandidateSpec]:
    """A deterministic candidate enumeration over the generated mapping space.

    Varies the assignment of each group over (up to) the two extreme
    compatible PEs, capped at ``limit`` candidates — enough spread for
    the ranking/pruning invariants without exploding the budget.
    """
    token = builder_token(config)
    groups = sorted(generated.application.groups)
    compatible = sorted(
        name
        for name, instance in generated.platform.processing_elements.items()
        if instance.spec.supports("general")
    )
    choices = (
        [compatible[0], compatible[-1]]
        if len(compatible) > 1
        else [compatible[0]]
    )
    specs: List[CandidateSpec] = []
    for index, combo in enumerate(
        itertools.islice(itertools.product(choices, repeat=len(groups)), limit)
    ):
        specs.append(
            CandidateSpec.make(
                token,
                dict(zip(groups, combo)),
                duration_us=duration_us,
                label=f"gen-c{index}",
            )
        )
    return specs


def _ranking_signature(run) -> List[Tuple[Optional[str], str, float]]:
    return [
        (o.spec.digest(), o.result.stable_hash(), o.cost)
        for o in run.ranking()
    ]


def check_exploration(
    config: GeneratorConfig,
    specs: Sequence[CandidateSpec],
    workers: Sequence[int],
) -> Dict[str, object]:
    """Ranking must be invariant across worker counts; pruning must keep
    the simulated winner.  Returns exploration counters."""
    runs = {count: run_candidates(specs, workers=count) for count in workers}
    baseline_workers = workers[0]
    baseline = _ranking_signature(runs[baseline_workers])
    for count in workers[1:]:
        signature = _ranking_signature(runs[count])
        if signature != baseline:
            _fail(
                "explore",
                f"ranking with workers={count} differs from "
                f"workers={baseline_workers}",
                config,
            )

    kept, pruned, _ = prune_candidates(list(specs), PruneConfig())
    best_digest = baseline[0][0]
    kept_digests = {specs[index].digest() for index in kept}
    if best_digest not in kept_digests:
        dropped = next(
            (p for p in pruned if p.digest == best_digest), None
        )
        _fail(
            "prune",
            "static pruning dropped the simulated top-1 candidate: "
            + (dropped.detail if dropped else best_digest or "<uncached>"),
            config,
        )
    return {
        "candidates": len(specs),
        "pruned": len(pruned),
        "best_cost": baseline[0][2],
    }


# ---------------------------------------------------------------------------
# the full pipeline
# ---------------------------------------------------------------------------


def run_pipeline(
    config: GeneratorConfig,
    duration_us: int = DEFAULT_DURATION_US,
    workers: Sequence[int] = (0, 1),
    explore: bool = True,
    resume: bool = True,
    work_dir: Optional[str] = None,
) -> Dict[str, object]:
    """Drive one configuration through every stage; return its counters.

    Raises :class:`InvariantViolation` on the first violated invariant.
    Defect-injecting configurations stop after the lint stage unless
    their defects are all in :data:`SIMULATABLE_DEFECTS`.
    """
    counters: Dict[str, object] = {
        "config": config.to_dict(),
        "stages": [],
    }

    def done(stage: str) -> None:
        counters["stages"].append(stage)

    blueprint_text = check_determinism(config)
    counters["blueprint_bytes"] = len(blueprint_text)
    done("determinism")

    blueprint = generate_blueprint(config)
    generated = build_from_blueprint(blueprint, config=config)
    check_wellformed(generated)
    done("validate")

    report = check_lint(generated)
    counters["lint_active"] = len(report.active)
    done("lint")

    simulatable = not config.inject_defects or set(
        config.inject_defects
    ) <= SIMULATABLE_DEFECTS
    if not simulatable:
        return counters

    _, result = simulate(generated, duration_us)
    counters["events"] = result.dispatched_events
    counters["dropped"] = result.dropped_signals
    done("simulate")

    counters["flagged_checked"] = check_soundness(generated, report, result)
    done("soundness")

    if resume:
        if work_dir is None:
            with tempfile.TemporaryDirectory(prefix="genfuzz-") as tmp:
                counters["interrupt_at"] = check_resume(
                    config, blueprint, duration_us, tmp
                )
        else:
            counters["interrupt_at"] = check_resume(
                config, blueprint, duration_us, work_dir
            )
        done("resume")

    if explore:
        specs = candidate_specs(config, generated, duration_us)
        counters.update(check_exploration(config, specs, list(workers)))
        done("explore")
        done("prune")
    return counters
