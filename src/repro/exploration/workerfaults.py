"""Injectable worker-fault harness for the campaign supervisor.

The fault-injection subsystem (:mod:`repro.faults`) makes the *simulated
system* fail on purpose; this module does the same for the *exploration
infrastructure*.  A :class:`WorkerFaultPlan` decides — deterministically,
per ``(candidate index, attempt)`` — whether a worker evaluating that
candidate crashes (SIGKILL-style death), hangs (sleeps past any
reasonable timeout), runs slow, or raises a transient error, so the
supervisor's timeout/retry/quarantine machinery is testable without ever
relying on a real OOM kill or a wedged host.

Design constraints mirror :mod:`repro.faults.plan`:

* **Deterministic.**  The schedule is an explicit per-candidate tuple of
  modes, consumed one per attempt; no randomness, no wall-clock input.
* **Zero-cost when disabled.**  ``worker_faults=None`` (the default
  everywhere) injects nothing and adds no per-candidate work.
* **Picklable.**  The plan crosses the process boundary by value inside
  the worker payload, exactly like :class:`~repro.exploration.spec
  .CandidateSpec`.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import ExplorationError, WorkerFaultError

#: A worker dies abruptly (``os._exit``), as if OOM-killed: no exception,
#: no result message, just a closed pipe and a non-zero exit code.
CRASH = "crash"
#: A worker sleeps far past any sane deadline; only a supervisor
#: wall-clock timeout can reclaim its slot.
HANG = "hang"
#: A worker sleeps briefly before evaluating — finishes, but late.
SLOW = "slow"
#: A worker raises a transient :class:`WorkerFaultError` (a recoverable
#: in-process failure, e.g. a lost scratch file).
FLAKY = "flaky"
#: Shorthand for a candidate that fails on *every* attempt — the poison
#: candidate the quarantine exists for.
POISON = "poison"

WORKER_FAULT_MODES = (CRASH, HANG, SLOW, FLAKY, POISON)

#: Exit code of a crash-injected worker (mirrors a SIGKILL death's 137).
CRASH_EXIT_CODE = 137


@dataclass(frozen=True)
class WorkerFaultPlan:
    """A deterministic schedule of infrastructure faults for one campaign.

    ``schedule`` maps a candidate's submission index to the tuple of
    fault modes its successive attempts hit: attempt 1 gets the first
    mode, attempt 2 the second, and attempts beyond the tuple succeed.
    A :data:`POISON` entry anywhere in the tuple makes *every* attempt
    fail (the candidate can only end up quarantined).

    ``hang_s`` and ``slow_s`` size the injected sleeps; a supervising
    parent is expected to kill a hung worker long before ``hang_s``
    elapses.
    """

    schedule: Tuple[Tuple[int, Tuple[str, ...]], ...] = ()
    hang_s: float = 60.0
    slow_s: float = 0.2

    @staticmethod
    def make(
        schedule: Dict[int, Sequence[str]],
        hang_s: float = 60.0,
        slow_s: float = 0.2,
    ) -> "WorkerFaultPlan":
        """Build a plan from ``{index: [mode, ...]}`` (canonical order)."""
        entries = []
        for index, modes in sorted(schedule.items()):
            modes = tuple(modes)
            for mode in modes:
                if mode not in WORKER_FAULT_MODES:
                    raise ExplorationError(
                        f"unknown worker-fault mode {mode!r} "
                        f"(choose from {', '.join(WORKER_FAULT_MODES)})"
                    )
            entries.append((int(index), modes))
        return WorkerFaultPlan(
            schedule=tuple(entries), hang_s=hang_s, slow_s=slow_s
        )

    @property
    def enabled(self) -> bool:
        """False when the plan can never inject anything."""
        return bool(self.schedule)

    def mode_for(self, index: int, attempt: int) -> Optional[str]:
        """The fault mode for this ``(candidate, attempt)``, or None.

        ``attempt`` is 1-based.  Poisoned candidates fault on every
        attempt; other candidates consume their mode tuple one attempt at
        a time and succeed once it is exhausted.
        """
        for entry_index, modes in self.schedule:
            if entry_index != index:
                continue
            if POISON in modes:
                return POISON
            if 1 <= attempt <= len(modes):
                return modes[attempt - 1]
            return None
        return None


def apply_worker_fault(
    mode: str, plan: WorkerFaultPlan, in_child: bool
) -> None:
    """Trigger one injected fault at the top of a candidate evaluation.

    Inside a supervised child process (``in_child=True``) the fault is
    *real*: :data:`CRASH` kills the process abruptly and :data:`HANG`
    sleeps for ``plan.hang_s`` seconds, so the parent's crash detection
    and wall-clock timeout are exercised for real.  In-process (serial
    ``workers=0`` evaluation) a crash or hang would take the whole
    campaign down with it, so both degrade to a raised
    :class:`~repro.errors.WorkerFaultError` — the retry/quarantine path
    is identical, only the delivery mechanism differs.
    """
    if mode == SLOW:
        time.sleep(plan.slow_s)
        return
    if mode == CRASH:
        if in_child:
            # no exception, no cleanup — indistinguishable from SIGKILL
            os._exit(CRASH_EXIT_CODE)
        raise WorkerFaultError("injected worker crash (simulated in-process)")
    if mode == HANG:
        if in_child:
            time.sleep(plan.hang_s)
            raise WorkerFaultError(
                f"injected hang outlived its {plan.hang_s}s sleep "
                "(no supervisor timeout reclaimed the worker)"
            )
        raise WorkerFaultError("injected worker hang (simulated in-process)")
    if mode in (FLAKY, POISON):
        raise WorkerFaultError(f"injected {mode} worker fault")
    raise ExplorationError(f"unknown worker-fault mode {mode!r}")


def parse_worker_faults(
    entries: Sequence[str], hang_s: float = 60.0, slow_s: float = 0.2
) -> Optional[WorkerFaultPlan]:
    """Parse CLI ``INDEX:MODE[:COUNT]`` entries into a plan (None if empty).

    ``COUNT`` repeats the mode over that many attempts (default 1), e.g.
    ``3:flaky:2`` makes candidate 3 fail its first two attempts and
    succeed on the third; ``0:crash`` crashes candidate 0's first attempt
    only; ``5:poison`` fails candidate 5 forever.
    """
    if not entries:
        return None
    schedule: Dict[int, list] = {}
    for entry in entries:
        parts = entry.split(":")
        if len(parts) not in (2, 3):
            raise ExplorationError(
                f"worker-fault entry {entry!r} is not INDEX:MODE[:COUNT]"
            )
        try:
            index = int(parts[0])
            count = int(parts[2]) if len(parts) == 3 else 1
        except ValueError:
            raise ExplorationError(
                f"worker-fault entry {entry!r} has a non-integer index/count"
            )
        mode = parts[1]
        if mode not in WORKER_FAULT_MODES:
            raise ExplorationError(
                f"worker-fault entry {entry!r}: unknown mode {mode!r} "
                f"(choose from {', '.join(WORKER_FAULT_MODES)})"
            )
        if count < 1:
            raise ExplorationError(
                f"worker-fault entry {entry!r}: count must be >= 1"
            )
        schedule.setdefault(index, []).extend([mode] * count)
    return WorkerFaultPlan.make(schedule, hang_s=hang_s, slow_s=slow_s)
