"""Picklable candidate specifications for the exploration engine.

A :class:`CandidateSpec` describes one design point of the paper's
Figure 2 loop — a grouping, a group→PE mapping, an optional fault plan and
a simulation horizon — **by value**, so it can cross a process boundary
and be hashed for the on-disk result cache.  Workers rebuild the live
system from the spec with :func:`build_system`; no UML objects are ever
pickled.

The builder is referenced by dotted path (``"module:callable"``).  A
builder callable must return a fresh ``(application, platform)`` pair per
call; it may accept ``grouping=`` (process→group dict) and ``arq=``
keyword arguments, which are only passed when the spec sets them.
"""

from __future__ import annotations

import hashlib
import importlib
import inspect
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple, Union

from repro.errors import ExplorationError

#: Bump when the spec encoding changes incompatibly: old cache entries
#: then miss instead of deserialising garbage.
SPEC_SCHEMA = 1


@dataclass(frozen=True)
class FaultSpec:
    """Picklable mirror of :class:`repro.faults.FaultPlan` constructor args.

    A spec only carries the plan *parameters*; the live plan (with its RNG
    and mutable stats) is rebuilt inside the worker via :meth:`build_plan`.
    """

    seed: int = 0
    bus_corrupt_rate: float = 0.0
    bus_drop_rate: float = 0.0
    signal_drop_rate: float = 0.0
    signal_dup_rate: float = 0.0
    corruptible_signals: Optional[Tuple[str, ...]] = None
    droppable_signals: Optional[Tuple[str, ...]] = None
    protected_signals: Tuple[str, ...] = ()

    def build_plan(self):
        from repro.faults.plan import FaultPlan

        return FaultPlan(
            seed=self.seed,
            bus_corrupt_rate=self.bus_corrupt_rate,
            bus_drop_rate=self.bus_drop_rate,
            signal_drop_rate=self.signal_drop_rate,
            signal_dup_rate=self.signal_dup_rate,
            corruptible_signals=self.corruptible_signals,
            droppable_signals=self.droppable_signals,
            protected_signals=self.protected_signals,
        )

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "FaultSpec":
        """Rebuild a spec from :meth:`to_json_dict` output (exact inverse)."""

        def _names(value):
            return tuple(value) if value is not None else None

        return cls(
            seed=int(data["seed"]),
            bus_corrupt_rate=float(data["bus_corrupt_rate"]),
            bus_drop_rate=float(data["bus_drop_rate"]),
            signal_drop_rate=float(data["signal_drop_rate"]),
            signal_dup_rate=float(data["signal_dup_rate"]),
            corruptible_signals=_names(data.get("corruptible_signals")),
            droppable_signals=_names(data.get("droppable_signals")),
            protected_signals=tuple(data.get("protected_signals") or ()),
        )

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "bus_corrupt_rate": self.bus_corrupt_rate,
            "bus_drop_rate": self.bus_drop_rate,
            "signal_drop_rate": self.signal_drop_rate,
            "signal_dup_rate": self.signal_dup_rate,
            "corruptible_signals": (
                sorted(self.corruptible_signals)
                if self.corruptible_signals is not None
                else None
            ),
            "droppable_signals": (
                sorted(self.droppable_signals)
                if self.droppable_signals is not None
                else None
            ),
            "protected_signals": sorted(self.protected_signals),
        }


Builder = Union[str, Callable]


def builder_ref(builder: Builder) -> Optional[str]:
    """The ``"module:callable"`` path of ``builder``, or None.

    None means the builder cannot be re-imported by name (a lambda, a
    closure, an unsaved interactive definition): such candidates still
    evaluate serially in-process but cannot be cached or shipped to
    worker processes.
    """
    if isinstance(builder, str):
        return builder
    module = getattr(builder, "__module__", None)
    qualname = getattr(builder, "__qualname__", "")
    if not module or not qualname or "<" in qualname or "." in qualname:
        return None
    try:
        resolved = getattr(importlib.import_module(module), qualname, None)
    except ImportError:
        return None
    return f"{module}:{qualname}" if resolved is builder else None


def resolve_builder(builder: Builder) -> Callable:
    """The live callable behind a builder reference."""
    if callable(builder):
        return builder
    module_name, _, attr = builder.partition(":")
    if not attr:
        raise ExplorationError(
            f"builder reference {builder!r} is not of the form 'module:callable'"
        )
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise ExplorationError(f"cannot import builder module {module_name!r}: {exc}")
    target = getattr(module, attr, None)
    if not callable(target):
        raise ExplorationError(f"builder {builder!r} does not name a callable")
    return target


@dataclass(frozen=True)
class CandidateSpec:
    """One design point, encoded by value.

    ``mapping`` and ``grouping`` are sorted name-pair tuples (hashable,
    canonical); use :attr:`mapping_dict`/:attr:`grouping_dict` for the
    dict views.  ``label`` is presentation-only and excluded from the
    content hash — two specs differing only in label share a cache entry.
    """

    builder: Builder
    mapping: Tuple[Tuple[str, str], ...]
    grouping: Optional[Tuple[Tuple[str, str], ...]] = None
    duration_us: int = 20_000
    faults: Optional[FaultSpec] = None
    arq: bool = False
    label: str = field(default="", compare=False)

    @staticmethod
    def make(
        builder: Builder,
        mapping: Dict[str, str],
        grouping: Optional[Dict[str, str]] = None,
        duration_us: int = 20_000,
        faults: Optional[FaultSpec] = None,
        arq: bool = False,
        label: str = "",
    ) -> "CandidateSpec":
        """Build a spec from plain dicts (canonicalises the pair order)."""
        return CandidateSpec(
            builder=builder,
            mapping=tuple(sorted(mapping.items())),
            grouping=tuple(sorted(grouping.items())) if grouping else None,
            duration_us=duration_us,
            faults=faults,
            arq=arq,
            label=label,
        )

    @property
    def mapping_dict(self) -> Dict[str, str]:
        return dict(self.mapping)

    @property
    def grouping_dict(self) -> Optional[Dict[str, str]]:
        return dict(self.grouping) if self.grouping is not None else None

    # -- canonical encoding / hashing ----------------------------------

    def to_json_dict(self) -> Dict[str, object]:
        ref = builder_ref(self.builder)
        return {
            "schema": SPEC_SCHEMA,
            "builder": ref if ref is not None else repr(self.builder),
            "mapping": dict(self.mapping),
            "grouping": dict(self.grouping) if self.grouping is not None else None,
            "duration_us": self.duration_us,
            "faults": self.faults.to_json_dict() if self.faults else None,
            "arq": self.arq,
        }

    @classmethod
    def from_json_dict(
        cls, data: Dict[str, object], label: str = ""
    ) -> "CandidateSpec":
        """Rebuild a spec from :meth:`to_json_dict` output.

        The round trip is byte-exact: ``from_json_dict(d).to_json_dict()
        == d`` for every spec whose builder is importable by name (the
        JSON encoding of an unnamed builder is its ``repr`` and cannot be
        resolved back).  ``label`` restores the presentation-only label,
        which is deliberately absent from the canonical encoding.  This
        is the deserialisation path of the exploration service: submitted
        jobs carry spec JSON over HTTP and must hash to the same digest
        (hence hit the same cache entries) as in-process runs.
        """
        schema = data.get("schema")
        if schema != SPEC_SCHEMA:
            raise ExplorationError(
                f"unsupported candidate-spec schema {schema!r} "
                f"(this build reads schema {SPEC_SCHEMA})"
            )
        mapping = data.get("mapping")
        if not isinstance(mapping, dict) or not mapping:
            raise ExplorationError("candidate spec has no mapping")
        builder = data.get("builder")
        if not isinstance(builder, str) or ":" not in builder:
            raise ExplorationError(
                f"candidate-spec builder {builder!r} is not a "
                "'module:callable' reference"
            )
        grouping = data.get("grouping")
        faults = data.get("faults")
        return cls.make(
            builder=builder,
            mapping={str(k): str(v) for k, v in mapping.items()},
            grouping=(
                {str(k): str(v) for k, v in grouping.items()}
                if grouping
                else None
            ),
            duration_us=int(data["duration_us"]),
            faults=FaultSpec.from_json_dict(faults) if faults else None,
            arq=bool(data.get("arq", False)),
            label=label,
        )

    def sort_key(self) -> str:
        """Canonical JSON of the spec — the deterministic ranking tie-break."""
        return json.dumps(self.to_json_dict(), sort_keys=True, separators=(",", ":"))

    def digest(self) -> Optional[str]:
        """Content hash (cache key), or None when the builder has no name."""
        if builder_ref(self.builder) is None:
            return None
        return hashlib.sha256(self.sort_key().encode("utf-8")).hexdigest()


def build_system(spec: CandidateSpec):
    """Rebuild the live ``(application, platform, mapping)`` triple.

    This is the worker-side entry point: everything is constructed fresh
    from the spec, because simulation consumes executor state and live
    UML objects cannot be shared between design points (or processes).
    """
    from repro.mapping.model import MappingModel

    builder = resolve_builder(spec.builder)
    parameters = inspect.signature(builder).parameters
    accepts_var_kw = any(
        p.kind == inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )
    kwargs = {}
    if spec.grouping is not None:
        if "grouping" not in parameters and not accepts_var_kw:
            raise ExplorationError(
                f"spec sets a grouping but builder {builder_ref(spec.builder)!r} "
                "does not accept a 'grouping' keyword"
            )
        kwargs["grouping"] = dict(spec.grouping)
    if spec.arq:
        if "arq" not in parameters and not accepts_var_kw:
            raise ExplorationError(
                f"spec sets arq=True but builder {builder_ref(spec.builder)!r} "
                "does not accept an 'arq' keyword"
            )
        kwargs["arq"] = True
    application, platform = builder(**kwargs)
    mapping = MappingModel(application, platform, view_name="ExploreMapping")
    for group_name, pe_name in spec.mapping:
        mapping.map(group_name, pe_name)
    return application, platform, mapping
