"""Parallel candidate-evaluation engine for design-space exploration.

The paper's Figure 2 loop — simulate, profile, regroup, remap — needs
*many* simulations, and the discrete-event simulator is pure-Python CPU
work, so candidates fan out over ``multiprocessing`` **worker processes**
(threads would serialise on the GIL).  Each worker rebuilds its system
from a picklable :class:`CandidateSpec`; live UML objects never cross the
process boundary.

Dispatch is fault-tolerant: the campaign supervisor
(:mod:`repro.exploration.supervisor`) owns the worker processes, so a
hung worker is killed at its wall-clock timeout, a crashed worker
(SIGKILL, OOM) is detected through its closed pipe, failed candidates are
retried with seeded exponential backoff and a poison candidate is
quarantined after a bounded failure budget instead of aborting the sweep.

Determinism contract: the simulator is seeded and bit-reproducible, every
candidate is evaluated independently, and :meth:`ExplorationRun.ranking`
sorts by the stable key ``(cost, spec canonical JSON)`` — so the ranking
(and every :meth:`EvaluationResult.stable_hash`) is identical for
``workers=0``, ``workers=1`` and ``workers=N``, warm or cold cache, with
or without infrastructure faults along the way (a retried candidate
re-simulates — or checkpoint-resumes — to the byte-identical result).
``workers=0`` evaluates serially in-process (no pool at all), which is
the fallback for determinism debugging and for builders that cannot be
imported by name.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ExplorationError
from repro.exploration.cache import ResultCache
from repro.exploration.objectives import EvaluationResult, evaluate
from repro.exploration.pruning import PruneConfig, PrunedRecord, prune_candidates
from repro.exploration.spec import CandidateSpec, build_system
from repro.exploration.supervisor import (
    FailureRecord,
    QuarantineRecord,
    Supervisor,
    SupervisorConfig,
    SupervisorStats,
    _Task,
)
from repro.exploration.workerfaults import WorkerFaultPlan

#: ``progress`` callbacks receive ``(outcome, done, total)``.
ProgressCallback = Callable[["CandidateOutcome", int, int], None]


@dataclass
class CandidateOutcome:
    """One evaluated (or cache-served) candidate, with its timing record."""

    index: int                    # position in the submitted spec sequence
    spec: CandidateSpec
    result: EvaluationResult
    elapsed_s: float              # this run's wall-time (0.0 for cache hits)
    cached: bool = False
    attempts: int = 1             # evaluation attempts this run (1 = clean)
    # the candidate's slice of the campaign failure ledger: one record per
    # failed attempt that preceded this result.  Deliberately *not* part
    # of EvaluationResult — the result hash describes the design point,
    # which is identical however bumpy the road to it was.
    failures: List[FailureRecord] = field(default_factory=list)

    @property
    def cost(self) -> float:
        return self.result.cost()

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "label": self.spec.label,
            "spec": self.spec.to_json_dict(),
            "digest": self.spec.digest(),
            "cost": self.cost,
            "result": self.result.to_dict(),
            "result_hash": self.result.stable_hash(),
            "elapsed_s": self.elapsed_s,
            "cached": self.cached,
            "attempts": self.attempts,
            "failures": [record.to_json_dict() for record in self.failures],
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "CandidateOutcome":
        """Rebuild an outcome from :meth:`to_json_dict` output."""
        return cls(
            index=int(data["index"]),
            spec=CandidateSpec.from_json_dict(
                data["spec"], label=str(data.get("label", ""))
            ),
            result=EvaluationResult.from_dict(data["result"]),
            elapsed_s=float(data["elapsed_s"]),
            cached=bool(data["cached"]),
            attempts=int(data.get("attempts", 1)),
            failures=[
                FailureRecord.from_json_dict(record)
                for record in data.get("failures", [])
            ],
        )


@dataclass
class ExplorationRun:
    """All outcomes of one engine invocation, in submission order."""

    outcomes: List[CandidateOutcome]
    workers: int
    wall_s: float
    cache_dir: Optional[str] = None
    # campaign failure ledger: every failed attempt, in the order the
    # supervisor recorded them, plus the candidates given up on
    failures: List[FailureRecord] = field(default_factory=list)
    quarantined: List[QuarantineRecord] = field(default_factory=list)
    supervisor_stats: Optional[SupervisorStats] = None
    # static-pruning ledger: candidates skipped before any simulation,
    # in submission order (empty when pruning was off)
    pruned: List[PrunedRecord] = field(default_factory=list)
    prune_margin: Optional[float] = None

    @property
    def evaluated(self) -> int:
        """Candidates actually simulated (cache hits excluded)."""
        return sum(1 for outcome in self.outcomes if not outcome.cached)

    @property
    def cache_hits(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.cached)

    def ranking(self) -> List[CandidateOutcome]:
        """Outcomes sorted best-first by the stable key (cost, spec JSON)."""
        return sorted(
            self.outcomes, key=lambda o: (o.cost, o.spec.sort_key())
        )

    def supervisor_counters(self) -> Dict[str, int]:
        """Retry/timeout/crash/quarantine counters (all zero when clean).

        This is the dict surfaced through the ``repro explore`` CLI and
        attachable to :class:`repro.observability.metrics.MetricsReport`
        as its ``campaign`` section.
        """
        if self.supervisor_stats is not None:
            return self.supervisor_stats.counters()
        return {
            "timeouts": 0,
            "crashes": 0,
            "errors": 0,
            "retries": 0,
            "quarantined": len(self.quarantined),
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "ExplorationRun":
        """Rebuild a run from an **untruncated** :meth:`to_json_dict` dump.

        This is the service client's deserialisation path: a remote
        campaign's result JSON comes back as a live :class:`ExplorationRun`
        whose :meth:`ranking`, ledgers and re-serialisation are
        byte-identical to the producer's (``from_json_dict(d)
        .to_json_dict() == d``).  The dump must have been produced with
        ``top=None`` — a truncated ranking cannot reproduce the outcome
        list and is rejected.
        """
        ranking = data.get("ranking", [])
        records = data.get("records", [])
        if len(ranking) != len(records):
            raise ExplorationError(
                f"cannot rebuild a run from a truncated dump: ranking has "
                f"{len(ranking)} entries but {len(records)} candidates ran "
                "(re-export with top=None)"
            )
        outcomes = sorted(
            (CandidateOutcome.from_json_dict(entry) for entry in ranking),
            key=lambda outcome: outcome.index,
        )
        supervisor = data.get("supervisor", {})
        pruned_block = data.get("pruned") or {}
        return cls(
            outcomes=outcomes,
            workers=int(data["workers"]),
            wall_s=float(data["wall_s"]),
            cache_dir=data.get("cache_dir"),
            failures=[
                FailureRecord.from_json_dict(record)
                for record in supervisor.get("failures", [])
            ],
            quarantined=[
                QuarantineRecord.from_json_dict(record)
                for record in supervisor.get("quarantine", [])
            ],
            supervisor_stats=SupervisorStats.from_counters(
                supervisor,
                degraded_to_serial=bool(
                    supervisor.get("degraded_to_serial", False)
                ),
            ),
            pruned=[
                PrunedRecord.from_json_dict(record)
                for record in pruned_block.get("records", [])
            ],
            prune_margin=pruned_block.get("margin"),
        )

    def to_json_dict(self, top: Optional[int] = None) -> Dict[str, object]:
        ranking = self.ranking()
        shown = ranking if top is None else ranking[:top]
        return {
            "workers": self.workers,
            "wall_s": self.wall_s,
            "candidates_submitted": len(self.outcomes) + len(self.pruned),
            "candidates_total": len(self.outcomes),
            "evaluated": self.evaluated,
            "cache_hits": self.cache_hits,
            "cache_dir": self.cache_dir,
            # candidates skipped by the static estimator, before dispatch
            "pruned": {
                "count": len(self.pruned),
                "margin": self.prune_margin,
                "records": [record.to_json_dict() for record in self.pruned],
            },
            "ranking": [
                dict(outcome.to_json_dict(), rank=rank + 1)
                for rank, outcome in enumerate(shown)
            ],
            # per-candidate timing records, in submission order
            "records": [
                {
                    "index": outcome.index,
                    "label": outcome.spec.label,
                    "elapsed_s": outcome.elapsed_s,
                    "cached": outcome.cached,
                    "cost": outcome.cost,
                    "attempts": outcome.attempts,
                }
                for outcome in self.outcomes
            ],
            # the structured failure ledger (empty on a clean campaign)
            "supervisor": dict(
                self.supervisor_counters(),
                degraded_to_serial=(
                    self.supervisor_stats.degraded_to_serial
                    if self.supervisor_stats is not None
                    else False
                ),
                failures=[record.to_json_dict() for record in self.failures],
                quarantine=[
                    record.to_json_dict() for record in self.quarantined
                ],
            ),
        }


def evaluate_spec(
    spec: CandidateSpec, checkpointer=None
) -> EvaluationResult:
    """Evaluate one candidate from scratch (the worker-side entry point).

    With a :class:`repro.checkpoint.Checkpointer` the evaluation resumes
    from the latest snapshot under the checkpointer's tag (if any) and
    snapshots as it goes — see :func:`repro.exploration.objectives.evaluate`.
    """
    application, platform, mapping = build_system(spec)
    faults = spec.faults.build_plan() if spec.faults is not None else None
    return evaluate(
        application,
        platform,
        mapping,
        duration_us=spec.duration_us,
        faults=faults,
        checkpointer=checkpointer,
    )


def _make_checkpointer(
    spec: CandidateSpec,
    checkpoint_dir: Optional[str],
    checkpoint_every_events: int,
    interrupt_after_events: Optional[int] = None,
):
    if checkpoint_dir is None:
        return None
    from repro.checkpoint import Checkpointer, CheckpointStore, EveryEvents

    return Checkpointer(
        CheckpointStore(checkpoint_dir),
        EveryEvents(checkpoint_every_events),
        tag=spec.digest(),
        interrupt_after_events=interrupt_after_events,
    )


def _pool_context():
    # fork keeps already-imported modules (and sys.path) in the children;
    # fall back to the platform default where fork does not exist.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def run_candidates(
    specs: Sequence[CandidateSpec],
    workers: int = 0,
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressCallback] = None,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every_events: int = 5_000,
    interrupt_after_events: Optional[int] = None,
    supervisor: Optional[SupervisorConfig] = None,
    worker_faults: Optional[WorkerFaultPlan] = None,
    prune_static=None,
) -> ExplorationRun:
    """Evaluate every spec; cache hits are served without simulating.

    ``workers=0`` runs serially in-process; ``workers>=1`` fans the
    uncached candidates out over supervised worker processes.  The
    returned outcomes are in submission order regardless of completion
    order; use :meth:`ExplorationRun.ranking` for the stable best-first
    view.

    ``prune_static`` enables the static pruning oracle
    (:mod:`repro.exploration.pruning`): ``True`` uses the default
    :class:`~repro.exploration.pruning.PruneConfig`, or pass one
    directly.  Candidates the mapping estimator proves infeasible or
    dominated are skipped before any dispatch and recorded in the run's
    ``pruned`` ledger.  Pruning is computed serially over the full spec
    list, so the ledger and the surviving candidate set are identical
    for every worker count.

    ``supervisor`` is the fault-tolerance policy
    (:class:`~repro.exploration.supervisor.SupervisorConfig`; None means
    the defaults: no timeout, 2 retries, quarantine after 3 failures).  A
    candidate whose worker times out, crashes or raises is retried with
    seeded exponential backoff and, once its failure budget is spent,
    quarantined — the campaign completes without it, and every failed
    attempt is recorded in the run's ``failures``/``quarantined`` ledger.
    ``worker_faults`` is the injectable infrastructure-fault harness
    (:class:`~repro.exploration.workerfaults.WorkerFaultPlan`) that makes
    all of the above deterministically testable.

    With ``checkpoint_dir`` each candidate snapshots its simulation every
    ``checkpoint_every_events`` dispatched events (tagged by the spec
    digest), and a re-submitted campaign *resumes*: finished candidates
    come out of the result cache, the in-flight candidate restores from
    its latest snapshot and continues — with the engine's determinism
    contract intact, the resumed campaign's ranking and result hashes are
    identical to an uninterrupted run's.  The same machinery makes
    retries cheap: a timed-out candidate's next attempt resumes from the
    snapshots the killed worker left behind.  Pair it with ``cache_dir``
    so completed candidates are not re-simulated (their snapshots are
    pruned once their result is cached).

    ``interrupt_after_events`` is the deterministic-interruption hook for
    tests and the CI resume-smoke job: a cumulative event budget across
    the (serial) campaign; when it runs out the engine takes a final
    snapshot and raises :class:`~repro.errors.SimulationInterrupted`.

    On ``KeyboardInterrupt`` (or a SIGTERM the caller translates) the
    engine terminates and joins every live worker before propagating —
    results already completed are in the cache, and no orphan child
    processes survive the campaign.
    """
    specs = list(specs)
    if workers < 0:
        raise ExplorationError(f"workers must be >= 0, got {workers}")
    config = supervisor if supervisor is not None else SupervisorConfig()
    if checkpoint_dir is not None:
        undigestable = [spec for spec in specs if spec.digest() is None]
        if undigestable:
            raise ExplorationError(
                "checkpointing needs builders importable by name "
                "('module:callable') so snapshots can be tagged; got a "
                "local/lambda builder — drop checkpoint_dir or move the "
                "builder to module scope"
            )
    if interrupt_after_events is not None:
        if checkpoint_dir is None:
            raise ExplorationError(
                "interrupt_after_events needs checkpoint_dir (the budget "
                "exists to exercise snapshot/resume)"
            )
        if workers >= 1:
            raise ExplorationError(
                "interrupt_after_events is a serial-mode (workers=0) "
                "facility; resume the interrupted campaign with any "
                "worker count afterwards"
            )
    prune_config: Optional[PruneConfig] = None
    if prune_static:
        prune_config = (
            prune_static
            if isinstance(prune_static, PruneConfig)
            else PruneConfig()
        )
    started = time.perf_counter()
    cache = ResultCache(cache_dir) if cache_dir else None
    outcomes: List[Optional[CandidateOutcome]] = [None] * len(specs)
    pruned_records: List[PrunedRecord] = []
    surviving = list(enumerate(specs))
    if prune_config is not None:
        kept, pruned_records, _ = prune_candidates(specs, prune_config)
        surviving = [(index, specs[index]) for index in kept]
    total = len(surviving)
    done = 0

    def finish(outcome: CandidateOutcome) -> None:
        nonlocal done
        outcomes[outcome.index] = outcome
        done += 1
        if progress is not None:
            progress(outcome, done, total)

    pending: List[Tuple[int, CandidateSpec]] = []
    for index, spec in surviving:
        hit = cache.load(spec) if cache is not None else None
        if hit is not None:
            result, _ = hit
            finish(CandidateOutcome(index, spec, result, 0.0, cached=True))
        else:
            pending.append((index, spec))

    def candidate_done(spec: CandidateSpec) -> None:
        # a cached result supersedes the candidate's snapshots: resuming
        # serves it from the cache, so the per-tag snapshots are pruned
        if cache is not None and checkpoint_dir is not None:
            from repro.checkpoint import CheckpointStore

            CheckpointStore(checkpoint_dir).prune(spec.digest())

    def on_success(index, result, elapsed, attempts, failures) -> None:
        if cache is not None:
            cache.store(specs[index], result, elapsed)
        candidate_done(specs[index])
        finish(
            CandidateOutcome(
                index,
                specs[index],
                result,
                elapsed,
                attempts=attempts,
                failures=list(failures),
            )
        )

    if workers >= 1 and pending:
        unnamed = [spec for _, spec in pending if spec.digest() is None]
        if unnamed:
            raise ExplorationError(
                "parallel evaluation needs builders importable by name "
                "('module:callable'); got a local/lambda builder — use "
                "workers=0 or move the builder to module scope"
            )
        boss = Supervisor(
            context=_pool_context(),
            workers=min(workers, len(pending)),
            config=config,
            worker_faults=worker_faults,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every_events=checkpoint_every_events,
        )
        stats = boss.run(pending, on_success)
        run_failures, run_quarantined = boss.failures, boss.quarantines
    else:
        boss = Supervisor(
            context=None,
            workers=0,
            config=config,
            worker_faults=worker_faults,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every_events=checkpoint_every_events,
        )
        budget = interrupt_after_events
        for index, spec in pending:
            task = _Task(index=index, spec=spec)
            while True:
                wait = task.not_before - time.monotonic()
                if wait > 0:
                    time.sleep(wait)
                seen: List[object] = []

                def factory(spec_, _seen=seen, _budget=lambda: budget):
                    checkpointer = _make_checkpointer(
                        spec_,
                        checkpoint_dir,
                        checkpoint_every_events,
                        interrupt_after_events=(
                            max(1, _budget()) if _budget() is not None else None
                        ),
                    )
                    _seen.append(checkpointer)
                    return checkpointer

                outcome = boss.attempt_in_process(
                    task, checkpointer_factory=factory
                )
                if outcome == "quarantined":
                    break
                if outcome == "retry":
                    continue
                result, elapsed = outcome
                if budget is not None and seen and seen[-1] is not None:
                    budget -= seen[-1].events_seen
                on_success(index, result, elapsed, task.attempt, task.failures)
                break
        stats = boss.stats
        run_failures, run_quarantined = boss.failures, boss.quarantines

    return ExplorationRun(
        outcomes=[outcome for outcome in outcomes if outcome is not None],
        workers=workers,
        wall_s=time.perf_counter() - started,
        cache_dir=cache_dir,
        failures=run_failures,
        quarantined=run_quarantined,
        supervisor_stats=stats,
        pruned=pruned_records,
        prune_margin=prune_config.margin if prune_config is not None else None,
    )
