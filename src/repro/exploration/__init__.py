"""Architecture exploration: grouping and mapping optimisation (paper §4.4)."""

from repro.exploration.objectives import EvaluationResult, evaluate, summarize
from repro.exploration.grouping import (
    communication_minimizing_grouping,
    external_traffic,
    per_process_grouping,
    round_robin_grouping,
    single_group_grouping,
)
from repro.exploration.mapping import (
    MappingCandidate,
    enumerate_assignments,
    exhaustive_search,
    improvement_loop,
)

__all__ = [
    "EvaluationResult",
    "MappingCandidate",
    "communication_minimizing_grouping",
    "enumerate_assignments",
    "evaluate",
    "exhaustive_search",
    "external_traffic",
    "improvement_loop",
    "per_process_grouping",
    "round_robin_grouping",
    "single_group_grouping",
    "summarize",
]
