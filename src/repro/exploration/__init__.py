"""Architecture exploration: grouping and mapping optimisation (paper §4.4).

The candidate-evaluation engine (:mod:`repro.exploration.engine`) fans
design points out over supervised worker processes with content-addressed
result caching and fault-tolerant dispatch (timeouts, retries with
backoff, poison-candidate quarantine — :mod:`repro.exploration
.supervisor`); the static pruning oracle
(:mod:`repro.exploration.pruning`) skips provably infeasible or
dominated candidates before simulating; see ``docs/exploration.md``.
"""

from repro.exploration.objectives import EvaluationResult, evaluate, summarize
from repro.exploration.cache import ResultCache
from repro.exploration.engine import (
    CandidateOutcome,
    ExplorationRun,
    evaluate_spec,
    run_candidates,
)
from repro.exploration.supervisor import (
    FailureRecord,
    QuarantineRecord,
    Supervisor,
    SupervisorConfig,
    SupervisorStats,
)
from repro.exploration.pruning import (
    DEFAULT_PRUNE_MARGIN,
    PruneConfig,
    PrunedRecord,
    prune_candidates,
    static_estimates,
)
from repro.exploration.workerfaults import (
    WORKER_FAULT_MODES,
    WorkerFaultPlan,
    parse_worker_faults,
)
from repro.exploration.spec import (
    CandidateSpec,
    FaultSpec,
    build_system,
    builder_ref,
    resolve_builder,
)
from repro.exploration.grouping import (
    communication_minimizing_grouping,
    external_traffic,
    per_process_grouping,
    round_robin_grouping,
    single_group_grouping,
)
from repro.exploration.mapping import (
    MappingCandidate,
    enumerate_assignments,
    exhaustive_search,
    improvement_loop,
    mapping_sweep_specs,
)

__all__ = [
    "CandidateOutcome",
    "CandidateSpec",
    "DEFAULT_PRUNE_MARGIN",
    "EvaluationResult",
    "ExplorationRun",
    "FailureRecord",
    "FaultSpec",
    "MappingCandidate",
    "PruneConfig",
    "PrunedRecord",
    "QuarantineRecord",
    "ResultCache",
    "Supervisor",
    "SupervisorConfig",
    "SupervisorStats",
    "WORKER_FAULT_MODES",
    "WorkerFaultPlan",
    "build_system",
    "builder_ref",
    "communication_minimizing_grouping",
    "enumerate_assignments",
    "evaluate",
    "evaluate_spec",
    "exhaustive_search",
    "external_traffic",
    "improvement_loop",
    "mapping_sweep_specs",
    "parse_worker_faults",
    "per_process_grouping",
    "prune_candidates",
    "resolve_builder",
    "round_robin_grouping",
    "run_candidates",
    "single_group_grouping",
    "static_estimates",
    "summarize",
]
