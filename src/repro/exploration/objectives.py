"""Evaluation objectives for architecture exploration.

The paper's profiling report "is used for improving the application.  The
process groups and mapping are modified to improve performance including
amount of communication and the division of workload between application
processes" (Section 4.4).  This module turns one simulation run into the
numbers those decisions need.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields
from typing import Dict, Optional

from repro.application.model import ApplicationModel
from repro.mapping.model import MappingModel
from repro.observability.metrics import summarize_result
from repro.platform.model import PlatformModel
from repro.profiling.analysis import analyze
from repro.profiling.groupinfo import group_info_from_model
from repro.simulation.system import SimulationResult, SystemSimulation


@dataclass
class EvaluationResult:
    """Metrics of one simulated (application, platform, mapping) point."""

    bus_signals: int          # signals that crossed the bus
    bus_bytes: int            # bytes that crossed the bus
    bus_busy_ps: int          # total segment occupancy
    max_pe_utilization: float
    mean_latency_ps: float    # mean delivery latency of bus signals
    delivered_msdus: int      # end-to-end throughput proxy (if 'user' exists)
    dropped_signals: int
    group_cycles: Dict[str, int]
    # fault-campaign ledger (zero when the point ran fault-free)
    fault_injected: int = 0
    fault_detected: int = 0
    fault_recovered: int = 0
    # per-PE/bus observability summary (repro.observability.summarize_result)
    observability: Dict[str, object] = field(default_factory=dict)

    @property
    def fault_residual(self) -> int:
        return self.fault_detected - self.fault_recovered

    def to_dict(self) -> Dict[str, object]:
        """A plain-JSON encoding (the cache's on-disk form)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "EvaluationResult":
        names = {f.name for f in fields(cls)}
        kwargs = {key: value for key, value in data.items() if key in names}
        kwargs["group_cycles"] = dict(kwargs.get("group_cycles") or {})
        kwargs["observability"] = dict(kwargs.get("observability") or {})
        return cls(**kwargs)

    def stable_hash(self) -> str:
        """SHA-256 of the canonical JSON encoding.

        Identical metric values — including float bit patterns, which the
        deterministic simulator guarantees for a fixed seed — yield the
        identical hash in every process, interpreter and worker count.
        """
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def cost(self) -> float:
        """Scalar cost: bus traffic dominates, utilisation imbalance tie-breaks.

        Lower is better.  The weights only order candidate designs — they
        are not calibrated to anything physical.
        """
        return (
            self.bus_bytes
            + 1000.0 * self.max_pe_utilization
            + 1_000_000.0 * self.dropped_signals
        )


def evaluate(
    application: ApplicationModel,
    platform: PlatformModel,
    mapping: MappingModel,
    duration_us: int = 50_000,
    faults: Optional[object] = None,
    checkpointer: Optional[object] = None,
) -> EvaluationResult:
    """Simulate one design point and compute its metrics.

    ``faults`` is an optional :class:`repro.faults.FaultPlan`; when it
    injects anything, the result carries the injection/recovery ledger.

    ``checkpointer`` is an optional
    :class:`repro.checkpoint.Checkpointer`; when its store already holds
    a snapshot for its tag the run *resumes* from the latest one instead
    of starting over, and the continued run's metrics are byte-identical
    to an uninterrupted evaluation (the simulator's resume guarantee).
    """
    simulation = SystemSimulation(application, platform, mapping, faults=faults)
    if checkpointer is not None:
        from repro.checkpoint import resume_simulation

        snapshot = checkpointer.store.latest(checkpointer.tag)
        if snapshot is not None:
            resume_simulation(simulation, snapshot)
        checkpointer.attach(simulation)
    try:
        result = simulation.run(duration_us)
    finally:
        if checkpointer is not None:
            checkpointer.detach()
    metrics = summarize(result, application)
    delivered = 0
    if "user" in simulation.executors:
        delivered = simulation.executors["user"].variables.get("delivered", 0)
    metrics.delivered_msdus = delivered
    if simulation.faults is not None:
        stats = simulation.faults.stats
        metrics.fault_injected = stats.injected
        metrics.fault_detected = stats.detected
        metrics.fault_recovered = stats.recovered
    return metrics


def summarize(result: SimulationResult, application: ApplicationModel) -> EvaluationResult:
    """Metrics from an existing simulation result."""
    bus_records = [
        r for r in result.log.signal_records if r.transport == "bus"
    ]
    utilization = result.pe_utilization()
    data = analyze(result.log, group_info_from_model(application.model))
    return EvaluationResult(
        bus_signals=len(bus_records),
        bus_bytes=sum(r.bytes for r in bus_records),
        bus_busy_ps=sum(s.busy_ps for s in result.bus_stats.values()),
        max_pe_utilization=max(utilization.values()) if utilization else 0.0,
        mean_latency_ps=(
            sum(r.latency_ps for r in bus_records) / len(bus_records)
            if bus_records
            else 0.0
        ),
        delivered_msdus=0,
        dropped_signals=result.dropped_signals,
        group_cycles=dict(data.group_cycles),
        observability=summarize_result(result),
    )
