"""Evaluation objectives for architecture exploration.

The paper's profiling report "is used for improving the application.  The
process groups and mapping are modified to improve performance including
amount of communication and the division of workload between application
processes" (Section 4.4).  This module turns one simulation run into the
numbers those decisions need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.application.model import ApplicationModel
from repro.mapping.model import MappingModel
from repro.platform.model import PlatformModel
from repro.profiling.analysis import analyze
from repro.profiling.groupinfo import group_info_from_model
from repro.simulation.system import SimulationResult, SystemSimulation


@dataclass
class EvaluationResult:
    """Metrics of one simulated (application, platform, mapping) point."""

    bus_signals: int          # signals that crossed the bus
    bus_bytes: int            # bytes that crossed the bus
    bus_busy_ps: int          # total segment occupancy
    max_pe_utilization: float
    mean_latency_ps: float    # mean delivery latency of bus signals
    delivered_msdus: int      # end-to-end throughput proxy (if 'user' exists)
    dropped_signals: int
    group_cycles: Dict[str, int]

    def cost(self) -> float:
        """Scalar cost: bus traffic dominates, utilisation imbalance tie-breaks.

        Lower is better.  The weights only order candidate designs — they
        are not calibrated to anything physical.
        """
        return (
            self.bus_bytes
            + 1000.0 * self.max_pe_utilization
            + 1_000_000.0 * self.dropped_signals
        )


def evaluate(
    application: ApplicationModel,
    platform: PlatformModel,
    mapping: MappingModel,
    duration_us: int = 50_000,
) -> EvaluationResult:
    """Simulate one design point and compute its metrics."""
    simulation = SystemSimulation(application, platform, mapping)
    result = simulation.run(duration_us)
    metrics = summarize(result, application)
    delivered = 0
    if "user" in simulation.executors:
        delivered = simulation.executors["user"].variables.get("delivered", 0)
    metrics.delivered_msdus = delivered
    return metrics


def summarize(result: SimulationResult, application: ApplicationModel) -> EvaluationResult:
    """Metrics from an existing simulation result."""
    bus_records = [
        r for r in result.log.signal_records if r.transport == "bus"
    ]
    utilization = result.pe_utilization()
    data = analyze(result.log, group_info_from_model(application.model))
    return EvaluationResult(
        bus_signals=len(bus_records),
        bus_bytes=sum(r.bytes for r in bus_records),
        bus_busy_ps=sum(s.busy_ps for s in result.bus_stats.values()),
        max_pe_utilization=max(utilization.values()) if utilization else 0.0,
        mean_latency_ps=(
            sum(r.latency_ps for r in bus_records) / len(bus_records)
            if bus_records
            else 0.0
        ),
        delivered_msdus=0,
        dropped_signals=result.dropped_signals,
        group_cycles=dict(data.group_cycles),
    )
