"""Mapping exploration: search over group→PE assignments.

The paper maps manually ("the designer prefers the processes of the two
process groups to be implemented on the same processor") and uses the
profiling report to improve the mapping.  This module automates both
moves: exhaustive search for small platforms, and a profiling-guided
improvement loop that co-locates the hottest communicating groups.

Both searches run on the candidate-evaluation engine
(:mod:`repro.exploration.engine`): pass ``workers=N`` to fan simulations
out over a process pool and ``cache_dir=`` to skip already-evaluated
design points; ``workers=0`` (the default) is the serial in-process
fallback, which produces the identical ranking.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.errors import MappingError
from repro.application.model import ApplicationModel
from repro.mapping.model import MappingModel
from repro.platform.model import PlatformModel
from repro.tutprofile.tags import process_runs_on
from repro.exploration.engine import ProgressCallback, run_candidates
from repro.exploration.objectives import EvaluationResult
from repro.exploration.spec import CandidateSpec, builder_ref, resolve_builder


@dataclass
class MappingCandidate:
    """One evaluated assignment."""

    assignment: Dict[str, str]
    result: EvaluationResult

    @property
    def cost(self) -> float:
        return self.result.cost()


#: A factory builds a *fresh* (application, platform) pair per evaluation
#: — simulation consumes executor state, so design points cannot share
#: models.  It may be a callable or a ``"module:callable"`` dotted path
#: (required for parallel evaluation and result caching).
ApplicationFactory = Union[
    str, Callable[[], Tuple[ApplicationModel, PlatformModel]]
]


def _compatible_pes(
    application: ApplicationModel, platform: PlatformModel, group_name: str
) -> List[str]:
    group = application.groups[group_name]
    group_type = group.tag("ProcessGroup", "ProcessType", "general")
    return [
        name
        for name, pe in sorted(platform.processing_elements.items())
        if process_runs_on(group_type, pe.spec.component_type)
    ]


def enumerate_assignments(
    application: ApplicationModel, platform: PlatformModel
) -> List[Dict[str, str]]:
    """All type-compatible group→PE assignments (respects fixed mappings)."""
    groups = [
        g for g in sorted(application.groups) if application.processes_in(g)
    ]
    domains = [
        _compatible_pes(application, platform, group) for group in groups
    ]
    for group, domain in zip(groups, domains):
        if not domain:
            raise MappingError(f"group {group!r} fits no platform PE")
    assignments = []
    for combination in itertools.product(*domains):
        assignments.append(dict(zip(groups, combination)))
    return assignments


def _spec_builder(factory: ApplicationFactory):
    """The spec-storable form of a factory: its dotted path if it has one."""
    reference = builder_ref(factory)
    return reference if reference is not None else factory


def mapping_sweep_specs(
    factory: ApplicationFactory,
    duration_us: int = 20_000,
    limit: Optional[int] = None,
) -> List[CandidateSpec]:
    """Candidate specs for the exhaustive sweep (one per assignment)."""
    probe_application, probe_platform = resolve_builder(factory)()
    assignments = enumerate_assignments(probe_application, probe_platform)
    if limit is not None:
        assignments = assignments[:limit]
    builder = _spec_builder(factory)
    return [
        CandidateSpec.make(
            builder,
            assignment,
            duration_us=duration_us,
            label=",".join(f"{g}->{pe}" for g, pe in sorted(assignment.items())),
        )
        for assignment in assignments
    ]


def exhaustive_search(
    factory: ApplicationFactory,
    duration_us: int = 20_000,
    limit: Optional[int] = None,
    workers: int = 0,
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressCallback] = None,
    supervisor=None,
) -> List[MappingCandidate]:
    """Evaluate every assignment; returns candidates sorted by cost.

    The ranking is deterministic — same factory and horizon give the
    identical order for any ``workers`` value, warm or cold cache.
    ``supervisor`` is an optional :class:`~repro.exploration.supervisor
    .SupervisorConfig` fault-tolerance policy for the underlying engine.
    """
    specs = mapping_sweep_specs(factory, duration_us=duration_us, limit=limit)
    run = run_candidates(
        specs,
        workers=workers,
        cache_dir=cache_dir,
        progress=progress,
        supervisor=supervisor,
    )
    return [
        MappingCandidate(outcome.spec.mapping_dict, outcome.result)
        for outcome in run.ranking()
    ]


def improvement_loop(
    factory: ApplicationFactory,
    initial_assignment: Dict[str, str],
    duration_us: int = 20_000,
    max_iterations: int = 8,
    cache_dir: Optional[str] = None,
    runs_out: Optional[list] = None,
) -> List[MappingCandidate]:
    """The paper's profile→improve loop.

    Each iteration simulates the current mapping, finds the pair of groups
    with the most signals crossing PEs, and tries to co-locate them (moving
    the lighter group), keeping the move only if the cost improves.
    Returns the history of accepted candidates (first = initial design).

    With ``cache_dir`` the neighbourhood search skips design points a
    previous run (or the exhaustive sweep) already evaluated.  Pass a
    list as ``runs_out`` to receive every underlying
    :class:`~repro.exploration.engine.ExplorationRun` (for the campaign
    failure ledger and supervisor counters).
    """
    history: List[MappingCandidate] = []
    current = dict(initial_assignment)
    builder = _spec_builder(factory)

    def run(assignment: Dict[str, str]) -> MappingCandidate:
        # one candidate per iteration: a pool would only add fork overhead,
        # so the engine is used serially here — the win is the cache
        spec = CandidateSpec.make(builder, assignment, duration_us=duration_us)
        engine_run = run_candidates([spec], workers=0, cache_dir=cache_dir)
        if runs_out is not None:
            runs_out.append(engine_run)
        outcome = engine_run.outcomes[0]
        return MappingCandidate(dict(assignment), outcome.result)

    candidate = run(current)
    history.append(candidate)
    for _ in range(max_iterations):
        move = _best_colocation_move(candidate, current)
        if move is None:
            break
        group_name, target_pe = move
        trial_assignment = dict(current)
        trial_assignment[group_name] = target_pe
        # mapping must stay type-compatible; run() raises otherwise
        try:
            trial = run(trial_assignment)
        except MappingError:
            break
        if trial.cost < candidate.cost:
            current = trial_assignment
            candidate = trial
            history.append(trial)
        else:
            break
    return history


def _best_colocation_move(
    candidate: MappingCandidate, assignment: Dict[str, str]
) -> Optional[Tuple[str, str]]:
    """The (group, target PE) move that co-locates the hottest split pair."""
    group_cycles = candidate.result.group_cycles
    best: Optional[Tuple[str, str]] = None
    # use group-level cycles as the 'weight' proxy: move the lighter group
    pairs = []
    for group_a, pe_a in assignment.items():
        for group_b, pe_b in assignment.items():
            if group_a >= group_b or pe_a == pe_b:
                continue
            pairs.append((group_a, group_b))
    if not pairs:
        return None
    # order by combined cycles, heaviest communication pairs first is ideal;
    # without per-pair bus bytes in the result we approximate with cycles
    pairs.sort(
        key=lambda p: -(group_cycles.get(p[0], 0) + group_cycles.get(p[1], 0))
    )
    for group_a, group_b in pairs:
        lighter, heavier = sorted(
            (group_a, group_b), key=lambda g: group_cycles.get(g, 0)
        )
        best = (lighter, assignment[heavier])
        break
    return best
