"""Content-addressed on-disk cache of candidate evaluation results.

Layout (under the cache directory)::

    <digest[:2]>/<digest>.json

where ``digest`` is the SHA-256 of the candidate spec's canonical JSON
(:meth:`CandidateSpec.digest`).  Each entry stores the spec echo, the
:class:`EvaluationResult` fields, the result's stable hash and the
original evaluation wall-time, so warm re-runs can report what they
skipped.  Entries are written atomically (temp file + ``os.replace``) so
concurrent explorations sharing a cache directory never read torn JSON;
unreadable or schema-mismatched entries are treated as misses and
silently re-evaluated.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, Optional, Tuple

from repro.exploration.objectives import EvaluationResult
from repro.exploration.spec import CandidateSpec

#: Bump when the entry format changes incompatibly.
CACHE_SCHEMA = 1


class ResultCache:
    """A directory of content-addressed evaluation results."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def path_for(self, digest: str) -> str:
        return os.path.join(self.directory, digest[:2], digest + ".json")

    def load(self, spec: CandidateSpec) -> Optional[Tuple[EvaluationResult, float]]:
        """The cached ``(result, original elapsed seconds)``, or None."""
        digest = spec.digest()
        if digest is None:
            return None
        path = self.path_for(digest)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) or entry.get("schema") != CACHE_SCHEMA:
            return None
        try:
            result = EvaluationResult.from_dict(entry["result"])
        except (KeyError, TypeError):
            return None
        return result, float(entry.get("elapsed_s", 0.0))

    def store(
        self, spec: CandidateSpec, result: EvaluationResult, elapsed_s: float
    ) -> Optional[str]:
        """Write one entry; returns its path (None for unhashable specs)."""
        digest = spec.digest()
        if digest is None:
            return None
        path = self.path_for(digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        entry = {
            "schema": CACHE_SCHEMA,
            "digest": digest,
            "spec": spec.to_json_dict(),
            "result": result.to_dict(),
            "result_hash": result.stable_hash(),
            "elapsed_s": elapsed_s,
        }
        handle = tempfile.NamedTemporaryFile(
            "w",
            encoding="utf-8",
            dir=os.path.dirname(path),
            prefix=digest[:8] + ".",
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        return path

    def __len__(self) -> int:
        count = 0
        for _, _, names in os.walk(self.directory):
            count += sum(1 for name in names if name.endswith(".json"))
        return count
