"""Process-grouping strategies (paper Section 3.1).

"The grouping can be performed according to different criteria, such as the
preliminary scheduling of application processes, workload distribution,
communication between process groups, dependencies between process groups,
and size of a process group."  The paper groups manually; its future work
announces "tools for automatic grouping according to the profiling
information and process types" — these are those tools.

Every strategy returns a ``{process name: group name}`` assignment that
:func:`repro.cases.tutmac.build_tutmac` (or any application builder taking
a grouping) can apply.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.profiling.analysis import ProfilingData


def per_process_grouping(process_names, process_types: Dict[str, str]) -> Dict[str, str]:
    """One group per process (the finest granularity, maximal bus traffic)."""
    return {name: f"g_{name}" for name in process_names}


def single_group_grouping(process_names, process_types: Dict[str, str]) -> Dict[str, str]:
    """Everything in one group per process type (coarsest mappable form).

    Hardware processes cannot share a group with software ones (a group has
    one ProcessType), so they get their own group.
    """
    assignment = {}
    for name in process_names:
        kind = process_types.get(name, "general")
        assignment[name] = "g_hw" if kind == "hardware" else "g_sw"
    return assignment


def round_robin_grouping(
    process_names, process_types: Dict[str, str], group_count: int, seed: int = 1
) -> Dict[str, str]:
    """A deterministic arbitrary grouping (the 'uninformed designer')."""
    assignment = {}
    software = [n for n in process_names if process_types.get(n) != "hardware"]
    hardware = [n for n in process_names if process_types.get(n) == "hardware"]
    # deterministic shuffle: sort by a seeded hash of the name
    software.sort(key=lambda n: hash((seed, n)) & 0xFFFFFFFF)
    for index, name in enumerate(software):
        assignment[name] = f"g{index % max(1, group_count - (1 if hardware else 0))}"
    for name in hardware:
        assignment[name] = "g_hw"
    return assignment


def communication_minimizing_grouping(
    profiling: ProfilingData,
    process_types: Dict[str, str],
    group_count: int,
) -> Dict[str, str]:
    """Greedy merge: start per-process, repeatedly merge the pair of groups
    with the heaviest mutual signal traffic until ``group_count`` remain.

    This implements the paper's stated objective: "The objective in grouping
    has been to minimize the communication between process groups" (§4.1).
    Hardware-type processes are kept in their own group(s) since a group's
    ProcessType must be executable by one component instance.
    """
    traffic = profiling.process_signals
    names = sorted(process_types)
    clusters: Dict[str, List[str]] = {}
    for name in names:
        clusters[name] = [name]

    def kind_of(cluster: List[str]) -> str:
        return process_types.get(cluster[0], "general")

    def weight(a: str, b: str) -> int:
        total = 0
        for pa in clusters[a]:
            for pb in clusters[b]:
                total += traffic.get((pa, pb), 0) + traffic.get((pb, pa), 0)
        return total

    while len(clusters) > group_count:
        best: Optional[Tuple[str, str]] = None
        best_weight = -1
        keys = sorted(clusters)
        for i, a in enumerate(keys):
            for b in keys[i + 1 :]:
                if kind_of(clusters[a]) != kind_of(clusters[b]):
                    continue
                w = weight(a, b)
                if w > best_weight:
                    best_weight = w
                    best = (a, b)
        if best is None:
            break  # only incompatible clusters remain
        a, b = best
        clusters[a] = clusters[a] + clusters[b]
        del clusters[b]

    assignment: Dict[str, str] = {}
    for index, key in enumerate(sorted(clusters)):
        for name in clusters[key]:
            assignment[name] = f"group{index + 1}"
    return assignment


def external_traffic(assignment: Dict[str, str], profiling: ProfilingData) -> int:
    """Signals that would cross group boundaries under ``assignment``."""
    total = 0
    for (sender, receiver), count in profiling.process_signals.items():
        group_a = assignment.get(sender)
        group_b = assignment.get(receiver)
        if group_a is None or group_b is None:
            continue  # environment endpoints do not count
        if group_a != group_b:
            total += count
    return total
