"""Static pre-simulation pruning of exploration candidates.

The mapping lint pass (:mod:`repro.analysis.mapping`) can score a
candidate assignment in microseconds: statement-weight load per PE plus
the hop-weighted traffic bytes of the static signal-flow matrix, shaped
like the simulation objective (``bytes + 1000 * max PE share``).  This
module turns that score into the exploration engine's pruning oracle:

* candidates whose estimate proves them **infeasible** (unmapped group,
  unknown PE, process type the PE cannot execute) are skipped outright;
* candidates **dominated** by the sweep's best static estimate — more
  than ``margin`` times worse — are skipped as not worth simulating.

Pruning is computed serially over the full spec list *before* any
dispatch, so the pruned ledger and the surviving candidate set are
byte-identical for any worker count; and because the estimate is a
conservative proxy (the default margin keeps everything within 3x of the
static optimum), the sweep's top-ranked candidate survives pruning.  The
tier-2 harness asserts both properties on the TUTMAC sweep.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.mapping import (
    StaticEstimate,
    static_application_profile,
    static_mapping_estimate,
)
from repro.errors import ExplorationError
from repro.exploration.spec import CandidateSpec, builder_ref, resolve_builder

#: Keep a candidate when its static estimate is within this factor of the
#: sweep's best static estimate.  Calibrated on the TUTMAC mapping sweep:
#: every candidate of the simulated top-10 sits below 2.7x, so 3x prunes
#: ~2/3 of the space without touching the eventual winner.
DEFAULT_PRUNE_MARGIN = 3.0


@dataclass(frozen=True)
class PruneConfig:
    """Pruning policy: ``margin`` is the dominance factor (>= 1)."""

    margin: float = DEFAULT_PRUNE_MARGIN

    def __post_init__(self) -> None:
        if self.margin < 1.0:
            raise ExplorationError(
                f"prune margin must be >= 1.0, got {self.margin}"
            )


@dataclass
class PrunedRecord:
    """One skipped candidate in the deterministic pruned ledger."""

    index: int
    label: str
    digest: Optional[str]
    reason: str                     # "infeasible" or "dominated"
    detail: str
    estimate: Optional[float]       # static cost; None when infeasible
    best_estimate: float

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "label": self.label,
            "digest": self.digest,
            "reason": self.reason,
            "detail": self.detail,
            "estimate": (
                round(self.estimate, 6) if self.estimate is not None else None
            ),
            "best_estimate": round(self.best_estimate, 6),
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "PrunedRecord":
        """Rebuild a ledger entry from :meth:`to_json_dict` output.

        Estimates come back at the serialised 6-decimal precision, so the
        round trip is idempotent (``from_json_dict(d).to_json_dict() == d``).
        """
        estimate = data.get("estimate")
        return cls(
            index=int(data["index"]),
            label=str(data["label"]),
            digest=data.get("digest"),
            reason=str(data["reason"]),
            detail=str(data["detail"]),
            estimate=float(estimate) if estimate is not None else None,
            best_estimate=float(data["best_estimate"]),
        )


def _probe_key(spec: CandidateSpec):
    ref = builder_ref(spec.builder)
    return (
        ref if ref is not None else id(spec.builder),
        spec.grouping,
        spec.arq,
    )


def _probe_system(spec: CandidateSpec):
    """Build the (application, platform) pair a spec describes, unmapped.

    Mirrors :func:`repro.exploration.spec.build_system` minus the mapping
    view: the estimator scores assignments against the bare system, so one
    probe serves every candidate sharing (builder, grouping, arq).
    """
    builder = resolve_builder(spec.builder)
    parameters = inspect.signature(builder).parameters
    accepts_var_kw = any(
        p.kind == inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )
    kwargs = {}
    if spec.grouping is not None:
        if "grouping" not in parameters and not accepts_var_kw:
            raise ExplorationError(
                f"spec sets a grouping but builder {builder_ref(spec.builder)!r} "
                "does not accept a 'grouping' keyword"
            )
        kwargs["grouping"] = dict(spec.grouping)
    if spec.arq:
        if "arq" not in parameters and not accepts_var_kw:
            raise ExplorationError(
                f"spec sets arq=True but builder {builder_ref(spec.builder)!r} "
                "does not accept an 'arq' keyword"
            )
        kwargs["arq"] = True
    return builder(**kwargs)


def static_estimates(
    specs: Sequence[CandidateSpec],
) -> List[StaticEstimate]:
    """Score every spec statically (one probe per distinct system)."""
    probes: Dict[object, Tuple[object, object]] = {}
    estimates: List[StaticEstimate] = []
    for spec in specs:
        key = _probe_key(spec)
        if key not in probes:
            application, platform = _probe_system(spec)
            probes[key] = (static_application_profile(application), platform)
        profile, platform = probes[key]
        estimates.append(
            static_mapping_estimate(profile, platform, spec.mapping_dict)
        )
    return estimates


def prune_candidates(
    specs: Sequence[CandidateSpec],
    config: Optional[PruneConfig] = None,
) -> Tuple[List[int], List[PrunedRecord], List[StaticEstimate]]:
    """Partition specs into survivors and a pruned ledger.

    Returns ``(kept_indices, pruned_records, estimates)``; indices refer
    to positions in ``specs``.  Deterministic: a pure function of the spec
    list and the config.
    """
    config = config if config is not None else PruneConfig()
    estimates = static_estimates(specs)
    feasible = [e.cost for e in estimates if e.infeasible is None]
    best = min(feasible) if feasible else 0.0
    threshold = config.margin * best
    kept: List[int] = []
    pruned: List[PrunedRecord] = []
    for index, (spec, estimate) in enumerate(zip(specs, estimates)):
        if estimate.infeasible is not None:
            pruned.append(
                PrunedRecord(
                    index=index,
                    label=spec.label,
                    digest=spec.digest(),
                    reason="infeasible",
                    detail=estimate.infeasible,
                    estimate=None,
                    best_estimate=best,
                )
            )
        elif feasible and estimate.cost > threshold:
            pruned.append(
                PrunedRecord(
                    index=index,
                    label=spec.label,
                    digest=spec.digest(),
                    reason="dominated",
                    detail=(
                        f"static estimate {estimate.cost:.1f} exceeds "
                        f"{config.margin:g}x the best estimate {best:.1f}"
                    ),
                    estimate=estimate.cost,
                    best_estimate=best,
                )
            )
        else:
            kept.append(index)
    return kept, pruned, estimates
