"""Campaign supervisor: fault-tolerant dispatch of exploration workers.

``Pool.imap_unordered`` has no answer to an OOM-killed or wedged child —
one dead worker stalls the whole campaign.  The supervisor replaces the
pool with directly managed worker processes, one per in-flight
candidate, each reporting over its own pipe, so the parent can

* enforce a **per-candidate wall-clock timeout** (kill the worker,
  reclaim the slot, retry the candidate),
* detect **crashed workers** (SIGKILL/exit-code death shows up as a
  closed pipe; the slot is simply refilled — "pool repair" is free when
  every candidate gets a fresh process),
* **retry with exponential backoff** and deterministic, seeded jitter
  (reproducible campaign behaviour; the *results* are worker-count
  invariant regardless, because candidates are evaluated independently
  by a bit-reproducible simulator),
* **quarantine poison candidates** after a bounded failure budget,
  recording every attempt in a structured failure ledger instead of
  aborting the campaign, and
* **degrade to serial in-process execution** when worker processes can
  no longer be spawned at all (fork/spawn failure — the pool is
  irreparable, but the campaign still finishes).

A retried candidate launched with ``checkpoint_dir`` resumes from its
latest snapshot (see :mod:`repro.checkpoint`), so a timeout kill does not
forfeit completed simulation work.  Failure semantics are documented in
``docs/exploration.md``.
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ExplorationError, SimulationInterrupted, WorkerFaultError
from repro.exploration.spec import CandidateSpec
from repro.exploration.workerfaults import WorkerFaultPlan, apply_worker_fault
from repro.faults.plan import _hash_site, _mix64

#: Failure kinds recorded in the ledger.
FAILURE_TIMEOUT = "timeout"      # wall-clock deadline exceeded, worker killed
FAILURE_CRASH = "crash"          # worker died without reporting (e.g. SIGKILL)
FAILURE_ERROR = "error"          # worker reported an exception

#: Quarantine reasons.
QUARANTINE_FAILURE_BUDGET = "failure-budget"     # quarantine_after reached
QUARANTINE_RETRIES_EXHAUSTED = "retries-exhausted"


@dataclass(frozen=True)
class SupervisorConfig:
    """Fault-tolerance policy for one campaign.

    ``timeout_s`` is the per-candidate wall-clock deadline (None disables
    it; serial in-process evaluation cannot preempt a running simulation,
    so the timeout only applies with ``workers >= 1``).  A candidate is
    retried after a failure until it has failed ``quarantine_after``
    times or used up ``max_retries`` retries, whichever comes first —
    then it is quarantined and the campaign continues without it.
    Backoff before the *n*-th retry is
    ``min(backoff_max_s, backoff_base_s * backoff_factor**(n-1))`` plus a
    deterministic jitter in ``[0, backoff_jitter_s)`` derived from
    ``(seed, candidate, attempt)`` — reproducible, no wall-clock input.
    """

    timeout_s: Optional[float] = None
    max_retries: int = 2
    quarantine_after: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    backoff_jitter_s: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ExplorationError(
                f"timeout_s must be positive, got {self.timeout_s}"
            )
        if self.max_retries < 0:
            raise ExplorationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.quarantine_after < 1:
            raise ExplorationError(
                f"quarantine_after must be >= 1, got {self.quarantine_after}"
            )
        if self.backoff_base_s < 0 or self.backoff_jitter_s < 0:
            raise ExplorationError("backoff durations must be >= 0")
        if self.backoff_factor < 1.0:
            raise ExplorationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def backoff_s(self, key: str, attempt: int) -> float:
        """Deterministic backoff before retrying ``key``'s ``attempt``-th try.

        ``key`` identifies the candidate (its digest, or its index as a
        string for unhashable specs); ``attempt`` is the 1-based attempt
        that just failed.
        """
        base = min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
        )
        draw = _mix64(
            _mix64(self.seed ^ 0x5EED5EED) ^ _hash_site(key) ^ attempt
        )
        return base + self.backoff_jitter_s * (draw / float(1 << 64))


@dataclass
class FailureRecord:
    """One failed attempt at one candidate — a ledger line.

    The ledger lives on the campaign output (:class:`CandidateOutcome`
    and ``ExplorationRun``), **not** inside
    :class:`~repro.exploration.objectives.EvaluationResult`: the result
    and its stable hash describe the simulated design point, which is
    byte-identical however many infrastructure faults the evaluation
    survived on the way.
    """

    index: int                    # candidate's submission index
    label: str
    digest: Optional[str]
    attempt: int                  # 1-based attempt that failed
    kind: str                     # FAILURE_TIMEOUT | FAILURE_CRASH | FAILURE_ERROR
    detail: str
    elapsed_s: float              # wall-time the attempt burned
    backoff_s: float = 0.0        # delay before the retry (0.0 if none follows)
    exitcode: Optional[int] = None  # worker exit code (crash failures)

    def to_json_dict(self) -> Dict[str, object]:
        """Plain-JSON encoding for campaign summaries and artefacts."""
        return {
            "index": self.index,
            "label": self.label,
            "digest": self.digest,
            "attempt": self.attempt,
            "kind": self.kind,
            "detail": self.detail,
            "elapsed_s": self.elapsed_s,
            "backoff_s": self.backoff_s,
            "exitcode": self.exitcode,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "FailureRecord":
        """Rebuild a ledger line from :meth:`to_json_dict` output."""
        return cls(
            index=int(data["index"]),
            label=str(data["label"]),
            digest=data.get("digest"),
            attempt=int(data["attempt"]),
            kind=str(data["kind"]),
            detail=str(data["detail"]),
            elapsed_s=float(data["elapsed_s"]),
            backoff_s=float(data.get("backoff_s", 0.0)),
            exitcode=data.get("exitcode"),
        )


@dataclass
class QuarantineRecord:
    """One candidate the campaign gave up on (with its failure count)."""

    index: int
    label: str
    digest: Optional[str]
    failures: int
    reason: str   # QUARANTINE_FAILURE_BUDGET | QUARANTINE_RETRIES_EXHAUSTED

    def to_json_dict(self) -> Dict[str, object]:
        """Plain-JSON encoding for campaign summaries and artefacts."""
        return {
            "index": self.index,
            "label": self.label,
            "digest": self.digest,
            "failures": self.failures,
            "reason": self.reason,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "QuarantineRecord":
        """Rebuild a quarantine entry from :meth:`to_json_dict` output."""
        return cls(
            index=int(data["index"]),
            label=str(data["label"]),
            digest=data.get("digest"),
            failures=int(data["failures"]),
            reason=str(data["reason"]),
        )


@dataclass
class SupervisorStats:
    """Campaign-level fault-tolerance counters (the ledger's totals)."""

    timeouts: int = 0
    crashes: int = 0
    errors: int = 0
    retries: int = 0
    quarantined: int = 0
    spawn_failures: int = 0
    degraded_to_serial: bool = False
    #: PIDs of every worker process started (for orphan-reaping tests).
    spawned_pids: List[int] = field(default_factory=list)

    def counters(self) -> Dict[str, int]:
        """The counter dict surfaced through MetricsReport and the CLI."""
        return {
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "errors": self.errors,
            "retries": self.retries,
            "quarantined": self.quarantined,
        }

    @classmethod
    def from_counters(
        cls, counters: Dict[str, int], degraded_to_serial: bool = False
    ) -> "SupervisorStats":
        """Rebuild stats from a :meth:`counters` dict (JSON deserialisation).

        Only the ledger totals survive the round trip; process-local
        bookkeeping (``spawn_failures``, ``spawned_pids``) is not part of
        the campaign JSON and comes back zeroed.
        """
        return cls(
            timeouts=int(counters.get("timeouts", 0)),
            crashes=int(counters.get("crashes", 0)),
            errors=int(counters.get("errors", 0)),
            retries=int(counters.get("retries", 0)),
            quarantined=int(counters.get("quarantined", 0)),
            degraded_to_serial=degraded_to_serial,
        )

    def note(self, kind: str) -> None:
        """Count one failure of ``kind``."""
        if kind == FAILURE_TIMEOUT:
            self.timeouts += 1
        elif kind == FAILURE_CRASH:
            self.crashes += 1
        else:
            self.errors += 1


@dataclass
class _Task:
    """One candidate's dispatch state inside the supervisor."""

    index: int
    spec: CandidateSpec
    attempt: int = 1
    not_before: float = 0.0       # monotonic instant the next attempt may start
    failures: List[FailureRecord] = field(default_factory=list)

    def key(self) -> str:
        digest = self.spec.digest()
        return digest if digest is not None else f"index:{self.index}"


class _InFlight:
    """One live worker process and its reporting pipe."""

    def __init__(self, task, process, conn, deadline) -> None:
        self.task = task
        self.process = process
        self.conn = conn
        self.deadline = deadline  # monotonic instant, or None
        self.started = time.monotonic()


def _child_main(send_conn, payload) -> None:
    """Worker-process entry point: evaluate one candidate, report by pipe.

    Reports ``("ok", result_dict, elapsed_s)`` or ``("error", detail,
    elapsed_s)``; a worker that dies without reporting (injected crash,
    real SIGKILL) is detected by the parent through the closed pipe.
    """
    index, spec, checkpoint_dir, every_events, fault_plan, fault_mode = payload
    started = time.perf_counter()
    try:
        if fault_mode is not None:
            apply_worker_fault(fault_mode, fault_plan, in_child=True)
        # deferred import: keeps supervisor importable without the engine
        # (the engine imports this module at load time)
        from repro.exploration.engine import _make_checkpointer, evaluate_spec

        checkpointer = _make_checkpointer(spec, checkpoint_dir, every_events)
        result = evaluate_spec(spec, checkpointer=checkpointer)
        send_conn.send(
            ("ok", result.to_dict(), time.perf_counter() - started)
        )
    except BaseException as exc:  # noqa: BLE001 — anything must be reported
        try:
            send_conn.send(
                (
                    "error",
                    f"{type(exc).__name__}: {exc}",
                    time.perf_counter() - started,
                )
            )
        except (OSError, ValueError):
            pass
        finally:
            send_conn.close()
            os._exit(1)
    send_conn.close()


class Supervisor:
    """Drives one campaign's parallel dispatch with fault tolerance.

    The engine hands over the uncached ``(index, spec)`` pairs and an
    ``on_success(index, result, elapsed_s, attempts)`` callback; the
    supervisor owns worker lifecycle, deadlines, retries and quarantine,
    and leaves its ledger in :attr:`failures`, :attr:`quarantines` and
    :attr:`stats`.  ``finally``-guarded cleanup terminates every live
    worker on any exit path — a ``KeyboardInterrupt`` mid-campaign leaves
    no orphan processes behind.
    """

    def __init__(
        self,
        context,
        workers: int,
        config: SupervisorConfig,
        worker_faults: Optional[WorkerFaultPlan] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every_events: int = 5_000,
    ) -> None:
        self.context = context
        self.workers = max(1, workers)
        self.config = config
        self.worker_faults = worker_faults
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every_events = checkpoint_every_events
        self.failures: List[FailureRecord] = []
        self.quarantines: List[QuarantineRecord] = []
        self.stats = SupervisorStats()

    # ------------------------------------------------------------------
    # dispatch loop
    # ------------------------------------------------------------------

    def run(
        self,
        pending: Sequence[Tuple[int, CandidateSpec]],
        on_success: Callable,
    ) -> SupervisorStats:
        """Evaluate every pending candidate; returns the stats ledger."""
        ready = deque(
            _Task(index=index, spec=spec) for index, spec in pending
        )
        delayed: List[_Task] = []       # tasks waiting out a backoff
        inflight: List[_InFlight] = []
        try:
            while ready or delayed or inflight:
                now = time.monotonic()
                # promote tasks whose backoff has elapsed
                still_delayed = []
                for task in delayed:
                    if task.not_before <= now:
                        ready.append(task)
                    else:
                        still_delayed.append(task)
                delayed = still_delayed

                # fill free worker slots
                while ready and len(inflight) < self.workers:
                    task = ready.popleft()
                    if self.stats.degraded_to_serial:
                        self._run_in_process(task, on_success, delayed)
                        continue
                    flight = self._spawn(task)
                    if flight is None:          # spawn failed; task re-queued
                        ready.appendleft(task)
                        if self.stats.degraded_to_serial:
                            continue
                        break
                    inflight.append(flight)

                if not inflight:
                    if delayed:
                        next_due = min(t.not_before for t in delayed)
                        time.sleep(max(0.0, next_due - time.monotonic()))
                    continue

                # wait for a result, a death, a deadline or a backoff expiry
                timeout = self._wait_timeout(inflight, delayed)
                readable = _connection_wait(
                    [flight.conn for flight in inflight], timeout=timeout
                )
                for conn in readable:
                    flight = next(f for f in inflight if f.conn is conn)
                    inflight.remove(flight)
                    self._collect(flight, on_success, delayed)

                # enforce wall-clock deadlines on whatever is still running
                now = time.monotonic()
                for flight in [
                    f
                    for f in inflight
                    if f.deadline is not None and f.deadline <= now
                ]:
                    inflight.remove(flight)
                    self._timeout(flight, on_success, delayed)
        finally:
            self._reap(inflight)
        return self.stats

    def _wait_timeout(
        self, inflight: List[_InFlight], delayed: List[_Task]
    ) -> Optional[float]:
        """Sleep only until the next deadline or backoff expiry."""
        now = time.monotonic()
        horizons = [
            flight.deadline for flight in inflight if flight.deadline is not None
        ]
        horizons += [task.not_before for task in delayed]
        if not horizons:
            return None                      # block until a pipe is readable
        return max(0.0, min(horizons) - now)

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------

    def _spawn(self, task: _Task) -> Optional[_InFlight]:
        """Start one worker; on repeated spawn failure degrade to serial."""
        fault_mode = (
            self.worker_faults.mode_for(task.index, task.attempt)
            if self.worker_faults is not None
            else None
        )
        payload = (
            task.index,
            task.spec,
            self.checkpoint_dir,
            self.checkpoint_every_events,
            self.worker_faults,
            fault_mode,
        )
        recv_conn, send_conn = self.context.Pipe(duplex=False)
        process = self.context.Process(
            target=_child_main, args=(send_conn, payload), daemon=True
        )
        try:
            process.start()
        except OSError:
            recv_conn.close()
            send_conn.close()
            self.stats.spawn_failures += 1
            if self.stats.spawn_failures >= 2:
                # the pool is irreparable: finish the campaign in-process
                self.stats.degraded_to_serial = True
            return None
        # close the parent's copy of the write end *immediately*: workers
        # forked later must not inherit it, or a crashed sibling's pipe
        # would never read as EOF
        send_conn.close()
        self.stats.spawned_pids.append(process.pid)
        deadline = (
            time.monotonic() + self.config.timeout_s
            if self.config.timeout_s is not None
            else None
        )
        return _InFlight(task, process, recv_conn, deadline)

    def _collect(self, flight: _InFlight, on_success, delayed) -> None:
        """Handle a readable pipe: a result, an error report, or a death."""
        task = flight.task
        try:
            kind, payload, elapsed = flight.conn.recv()
        except (EOFError, OSError):
            flight.process.join()
            flight.conn.close()
            exitcode = flight.process.exitcode
            self._failed(
                task,
                FAILURE_CRASH,
                f"worker died without reporting (exit code {exitcode})",
                time.monotonic() - flight.started,
                delayed,
                exitcode=exitcode,
            )
            return
        flight.process.join()
        flight.conn.close()
        if kind == "ok":
            from repro.exploration.objectives import EvaluationResult

            on_success(
                task.index,
                EvaluationResult.from_dict(payload),
                elapsed,
                task.attempt,
                task.failures,
            )
        else:
            self._failed(task, FAILURE_ERROR, str(payload), elapsed, delayed)

    def _timeout(self, flight: _InFlight, on_success, delayed) -> None:
        """Kill a worker that blew its deadline — unless it just finished."""
        if flight.conn.poll():
            # the result arrived between the wait and the deadline check
            self._collect(flight, on_success, delayed)
            return
        process = flight.process
        process.terminate()
        process.join(timeout=1.0)
        if process.is_alive():
            process.kill()
            process.join()
        flight.conn.close()
        self._failed(
            flight.task,
            FAILURE_TIMEOUT,
            f"exceeded {self.config.timeout_s}s wall-clock timeout",
            time.monotonic() - flight.started,
            delayed,
            exitcode=process.exitcode,
        )

    def _reap(self, inflight: List[_InFlight]) -> None:
        """Terminate and join every live worker (no orphans on any exit)."""
        for flight in inflight:
            if flight.process.is_alive():
                flight.process.terminate()
        for flight in inflight:
            flight.process.join(timeout=1.0)
            if flight.process.is_alive():
                flight.process.kill()
                flight.process.join()
            try:
                flight.conn.close()
            except OSError:
                pass
        inflight.clear()

    # ------------------------------------------------------------------
    # failure bookkeeping
    # ------------------------------------------------------------------

    def _failed(
        self,
        task: _Task,
        kind: str,
        detail: str,
        elapsed_s: float,
        delayed: Optional[List[_Task]] = None,
        exitcode: Optional[int] = None,
    ) -> str:
        """Record one failure; schedule a retry or quarantine the candidate.

        Returns the disposition: ``"retry"`` (the task was re-queued onto
        ``delayed`` when one was given, with ``not_before`` set to the end
        of its backoff) or ``"quarantined"``.
        """
        record = FailureRecord(
            index=task.index,
            label=task.spec.label,
            digest=task.spec.digest(),
            attempt=task.attempt,
            kind=kind,
            detail=detail,
            elapsed_s=elapsed_s,
            exitcode=exitcode,
        )
        task.failures.append(record)
        self.failures.append(record)
        self.stats.note(kind)
        if len(task.failures) >= self.config.quarantine_after:
            self._quarantine(task, QUARANTINE_FAILURE_BUDGET)
            return "quarantined"
        if task.attempt > self.config.max_retries:
            self._quarantine(task, QUARANTINE_RETRIES_EXHAUSTED)
            return "quarantined"
        record.backoff_s = self.config.backoff_s(task.key(), task.attempt)
        task.attempt += 1
        task.not_before = time.monotonic() + record.backoff_s
        self.stats.retries += 1
        if delayed is not None:
            delayed.append(task)
        return "retry"

    def _quarantine(self, task: _Task, reason: str) -> None:
        self.quarantines.append(
            QuarantineRecord(
                index=task.index,
                label=task.spec.label,
                digest=task.spec.digest(),
                failures=len(task.failures),
                reason=reason,
            )
        )
        self.stats.quarantined += 1

    # ------------------------------------------------------------------
    # serial degradation (and the workers=0 path)
    # ------------------------------------------------------------------

    def _run_in_process(self, task: _Task, on_success, delayed) -> None:
        """Evaluate one candidate in-process (degraded mode, retries kept).

        Backoffs are honoured by sleeping; wall-clock timeouts cannot
        preempt an in-process simulation and are skipped.
        """
        del delayed  # in-process retries loop here instead of re-queueing
        while True:
            wait = task.not_before - time.monotonic()
            if wait > 0:
                time.sleep(wait)
            outcome = self.attempt_in_process(task)
            if outcome == "quarantined":
                return
            if outcome == "retry":
                continue
            result, elapsed = outcome
            on_success(task.index, result, elapsed, task.attempt, task.failures)
            return

    def attempt_in_process(
        self, task: _Task, checkpointer_factory: Optional[Callable] = None
    ):
        """One in-process attempt: ``(result, elapsed_s)``, or a disposition.

        Returns ``"retry"`` or ``"quarantined"`` when the attempt failed
        (already ledgered; on retry the task's ``not_before`` holds the
        end of its backoff).  ``SimulationInterrupted`` and
        ``KeyboardInterrupt`` always propagate — an interrupt budget or a
        user interrupt is not a worker fault.  ``checkpointer_factory``
        overrides the default checkpointer construction (the engine's
        serial path uses it to thread its interrupt budget through).
        """
        from repro.exploration.engine import _make_checkpointer, evaluate_spec

        started = time.perf_counter()
        try:
            fault_mode = (
                self.worker_faults.mode_for(task.index, task.attempt)
                if self.worker_faults is not None
                else None
            )
            if fault_mode is not None:
                apply_worker_fault(fault_mode, self.worker_faults, in_child=False)
            if checkpointer_factory is not None:
                checkpointer = checkpointer_factory(task.spec)
            else:
                checkpointer = _make_checkpointer(
                    task.spec, self.checkpoint_dir, self.checkpoint_every_events
                )
            result = evaluate_spec(task.spec, checkpointer=checkpointer)
        except (SimulationInterrupted, KeyboardInterrupt):
            raise
        except Exception as exc:  # noqa: BLE001 — worker failures are ledgered
            detail = f"{type(exc).__name__}: {exc}"
            kind = FAILURE_ERROR
            if isinstance(exc, WorkerFaultError):
                # simulated crash/hang injections surface as exceptions
                # in-process; classify them by their injected nature so the
                # ledger reads the same as the parallel campaign's
                if "crash" in str(exc):
                    kind = FAILURE_CRASH
                elif "hang" in str(exc):
                    kind = FAILURE_TIMEOUT
            return self._failed(
                task, kind, detail, time.perf_counter() - started
            )
        return result, time.perf_counter() - started
