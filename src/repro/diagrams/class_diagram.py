"""Class-diagram rendering (paper Figure 4 and the Figure 3 hierarchy)."""

from __future__ import annotations

from typing import List

from repro.uml.classifier import Class
from repro.application.model import ApplicationModel
from repro.diagrams.dot import DotGraph


def _class_label(klass: Class) -> str:
    stereotypes = "".join(
        f"«{s.name}»\n" for s in klass.applied_stereotypes
    )
    return f"{stereotypes}{klass.name}"


def class_diagram_dot(app: ApplicationModel) -> str:
    """Figure 4: the application's class diagram as DOT."""
    graph = DotGraph(f"{app.top.name}_classes")
    graph.attr(rankdir="BT")
    graph.node(app.top.name, _class_label(app.top), shape="record")
    for name, klass in {**app.components, **app.structurals}.items():
        graph.node(name, _class_label(klass), shape="record")
    for part in app.top.parts:
        if isinstance(part.type, Class):
            graph.edge(
                part.type.name,
                app.top.name,
                label=part.name,
                arrowhead="diamond",
            )
    return graph.render()


def class_diagram_text(app: ApplicationModel) -> str:
    """Figure 4 as indented text (for terminals and golden tests)."""
    lines: List[str] = []
    top_stereo = ", ".join(f"«{s.name}»" for s in app.top.applied_stereotypes)
    lines.append(f"{top_stereo} {app.top.name}")
    for part in app.top.parts:
        part_type = part.type
        if not isinstance(part_type, Class):
            continue
        stereotypes = ", ".join(
            f"«{s.name}»" for s in part_type.applied_stereotypes
        )
        kind = "functional" if part_type.is_functional else "structural"
        prefix = f"{stereotypes} " if stereotypes else ""
        lines.append(f"  {part.name} : {prefix}{part_type.name} ({kind})")
        if part_type.is_structural:
            for inner in part_type.parts:
                if isinstance(inner.type, Class):
                    inner_st = ", ".join(
                        f"«{s.name}»" for s in inner.applied_stereotypes
                    )
                    lines.append(
                        f"    {inner.name} : {inner.type.name}"
                        + (f" {inner_st}" if inner_st else "")
                    )
    return "\n".join(lines)


def profile_hierarchy_dot() -> str:
    """Figure 3: the TUT-Profile hierarchy as DOT."""
    from repro.tutprofile import profile_hierarchy_edges

    graph = DotGraph("TUTProfile_hierarchy")
    graph.attr(rankdir="LR")
    seen = set()
    for source, relation, target in profile_hierarchy_edges():
        for node in (source, target):
            if node not in seen:
                graph.node(node, f"«{node}»", shape="box")
                seen.add(node)
        graph.edge(source, target, label=relation)
    return graph.render()
