"""Composite-structure diagram rendering (paper Figures 5, 6 and 7)."""

from __future__ import annotations

from typing import List

from repro.uml.classifier import Class
from repro.application.model import ApplicationModel
from repro.platform.model import PlatformModel
from repro.diagrams.dot import DotGraph


def composite_structure_dot(app: ApplicationModel) -> str:
    """Figure 5: parts, ports and connectors of the top-level class."""
    graph = DotGraph(f"{app.top.name}_structure")
    graph.attr(rankdir="LR")
    for part in app.top.parts:
        part_type = part.type
        label = f"{part.name} : {part_type.name}" if isinstance(part_type, Class) else part.name
        stereotypes = "".join(f"«{s.name}»\n" for s in part.applied_stereotypes)
        graph.node(part.name, f"{stereotypes}{label}", shape="component")
    for port in app.top.ports:
        graph.node(f"port:{port.name}", port.name, shape="box")
    for connector in app.top.connectors:
        if len(connector.ends) != 2:
            continue
        names = []
        for end in connector.ends:
            if end.part is None:
                names.append(f"port:{end.port.name}")
            else:
                names.append(end.part.name)
        label = " / ".join(
            f"{end.port.name}" for end in connector.ends
        )
        graph.edge(names[0], names[1], label=label, dir="none")
    return graph.render()


def composite_structure_text(app: ApplicationModel) -> str:
    """Figure 5 as text: one line per connector, ``a.port -- b.port``."""
    lines: List[str] = [f"composite structure of {app.top.name}"]
    for port in app.top.ports:
        lines.append(f"  boundary port {port.name}")
    for connector in app.top.connectors:
        lines.append(f"  {connector.describe()}")
    return "\n".join(lines)


def grouping_diagram_text(app: ApplicationModel) -> str:
    """Figure 6: process grouping as text."""
    lines: List[str] = ["process grouping"]
    for group_name in sorted(app.groups):
        members = app.processes_in(group_name)
        member_text = ", ".join(
            f"{m.container.name}::{m.name}" for m in members
        )
        group = app.groups[group_name]
        fixed = group.tag("ProcessGroup", "Fixed", False)
        suffix = " (fixed)" if fixed else ""
        lines.append(f"  «ProcessGroup» {group_name}{suffix}: {member_text}")
    return "\n".join(lines)


def platform_diagram_dot(platform: PlatformModel) -> str:
    """Figure 7: the stereotyped platform composite structure as DOT."""
    graph = DotGraph(f"{platform.top.name}_platform")
    graph.attr(rankdir="TB")
    for name, pe in platform.processing_elements.items():
        stereotypes = "".join(
            f"«{s.name}»\n" for s in pe.part.applied_stereotypes
        )
        graph.node(name, f"{stereotypes}{name} : {pe.spec.name}", shape="box3d")
    for name, segment in platform.segments.items():
        stereotypes = "".join(
            f"«{s.name}»\n" for s in segment.part.applied_stereotypes
        )
        shape = "cds" if not segment.is_bridge else "hexagon"
        graph.node(name, f"{stereotypes}{name}", shape=shape)
    for wrapper in platform.wrappers:
        graph.edge(
            wrapper.agent_name,
            wrapper.segment_name,
            label=f"addr={wrapper.spec.address:#x}",
            dir="none",
        )
    return graph.render()


def platform_diagram_text(platform: PlatformModel) -> str:
    """Figure 7 as text."""
    lines: List[str] = [f"platform {platform.top.name}"]
    for name, pe in sorted(platform.processing_elements.items()):
        lines.append(
            f"  «PlatformComponentInstance» {name} : {pe.spec.name} "
            f"(ID={pe.identifier})"
        )
    for name, segment in sorted(platform.segments.items()):
        kind = "bridge segment" if segment.is_bridge else "segment"
        lines.append(f"  «HIBISegment» {name} ({kind})")
    for wrapper in platform.wrappers:
        lines.append(
            f"  «HIBIWrapper» {wrapper.agent_name} @ {wrapper.segment_name} "
            f"addr={wrapper.spec.address:#x}"
        )
    return "\n".join(lines)
