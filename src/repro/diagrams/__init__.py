"""Diagram renderings of the paper's figures (DOT and plain text)."""

from repro.diagrams.dot import DotGraph
from repro.diagrams.class_diagram import (
    class_diagram_dot,
    class_diagram_text,
    profile_hierarchy_dot,
)
from repro.diagrams.composite import (
    composite_structure_dot,
    composite_structure_text,
    grouping_diagram_text,
    platform_diagram_dot,
    platform_diagram_text,
)
from repro.diagrams.mapping_diagram import mapping_diagram_dot, mapping_diagram_text
from repro.diagrams.timeline import timeline_text, utilization_summary

__all__ = [
    "DotGraph",
    "class_diagram_dot",
    "class_diagram_text",
    "composite_structure_dot",
    "composite_structure_text",
    "grouping_diagram_text",
    "mapping_diagram_dot",
    "mapping_diagram_text",
    "platform_diagram_dot",
    "platform_diagram_text",
    "profile_hierarchy_dot",
    "timeline_text",
    "utilization_summary",
]
