"""Execution timeline rendering: a text Gantt chart from a simulation log.

Each processing element gets one track; every run-to-completion step is a
span labelled by its process.  Useful for eyeballing scheduling decisions
(who held the PE, how bus waits delayed deliveries) without a waveform
viewer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.simulation.logfile import ExecRecord, LogFile


def timeline_text(
    log: LogFile,
    width: int = 100,
    start_ps: int = 0,
    end_ps: Optional[int] = None,
    pes: Optional[Sequence[str]] = None,
) -> str:
    """Render per-PE execution as fixed-width text tracks.

    Each column represents ``(end-start)/width`` picoseconds; a column shows
    the initial of the process that was executing (``.`` for idle, ``*``
    when several processes ran within one column).
    """
    if end_ps is None:
        end_ps = log.end_time_ps
    if end_ps <= start_ps:
        raise ValueError("empty time window")
    records = [
        r
        for r in log.exec_records
        if r.pe != "-" and r.time_ps < end_ps and r.time_ps + r.duration_ps > start_ps
    ]
    track_names = sorted({r.pe for r in records}) if pes is None else list(pes)
    span_ps = end_ps - start_ps
    column_ps = max(1, span_ps // width)

    legend: Dict[str, str] = {}

    def symbol(process: str) -> str:
        if process not in legend:
            letters = [c for c in process if c.isalnum()]
            base = letters[0] if letters else "?"
            candidate = base.lower()
            used = set(legend.values())
            if candidate in used:
                candidate = base.upper()
            index = 0
            while candidate in used and index < len(process):
                candidate = process[index].lower()
                index += 1
            while candidate in used:
                candidate = chr(ord("0") + len(legend) % 10)
                break
            legend[process] = candidate
        return legend[process]

    lines: List[str] = [
        f"timeline {start_ps / 1e6:.3f} .. {end_ps / 1e6:.3f} us "
        f"({column_ps / 1e6:.3f} us/column)"
    ]
    for pe in track_names:
        columns = ["."] * width
        for record in records:
            if record.pe != pe:
                continue
            first = max(0, (record.time_ps - start_ps) // column_ps)
            last = min(
                width - 1,
                (record.time_ps + max(record.duration_ps, 1) - 1 - start_ps)
                // column_ps,
            )
            mark = symbol(record.process)
            for column in range(int(first), int(last) + 1):
                if columns[column] == ".":
                    columns[column] = mark
                elif columns[column] != mark:
                    columns[column] = "*"
        lines.append(f"{pe:>14} |{''.join(columns)}|")
    if legend:
        lines.append(
            "legend: "
            + ", ".join(
                f"{mark}={process}"
                for process, mark in sorted(legend.items(), key=lambda i: i[1])
            )
            + ", .=idle, *=multiple"
        )
    return "\n".join(lines)


def utilization_summary(log: LogFile, end_ps: Optional[int] = None) -> str:
    """One line per PE: busy time and share of the horizon."""
    if end_ps is None:
        end_ps = log.end_time_ps
    busy: Dict[str, int] = {}
    steps: Dict[str, int] = {}
    for record in log.exec_records:
        if record.pe == "-":
            continue
        busy[record.pe] = busy.get(record.pe, 0) + record.duration_ps
        steps[record.pe] = steps.get(record.pe, 0) + 1
    lines = []
    for pe in sorted(busy):
        share = busy[pe] / end_ps if end_ps else 0.0
        lines.append(
            f"{pe:>14}: {steps[pe]:>6} steps, busy {busy[pe] / 1e6:10.1f} us "
            f"({share:6.1%})"
        )
    return "\n".join(lines)
