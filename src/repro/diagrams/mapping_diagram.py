"""Mapping-diagram rendering (paper Figure 8)."""

from __future__ import annotations

from typing import List

from repro.mapping.model import MappingModel
from repro.diagrams.dot import DotGraph


def mapping_diagram_dot(mapping: MappingModel) -> str:
    """Figure 8: «PlatformMapping» dependencies, groups above PEs."""
    graph = DotGraph("platform_mapping")
    graph.attr(rankdir="TB")
    for group_name in sorted(mapping.application.groups):
        if not mapping.application.processes_in(group_name):
            continue
        graph.node(
            f"group:{group_name}",
            f"«ProcessGroup»\n{group_name}",
            shape="folder",
        )
    targets = set(mapping.assignment().values())
    for pe_name, pe in mapping.platform.processing_elements.items():
        style = "filled" if pe_name in targets else "dashed"
        graph.node(
            f"pe:{pe_name}",
            f"«PlatformComponentInstance»\n{pe_name} : {pe.spec.name}",
            shape="box3d",
            style=style,
        )
    for group_name, pe_name in sorted(mapping.assignment().items()):
        fixed = " (fixed)" if mapping.is_fixed(group_name) else ""
        graph.edge(
            f"group:{group_name}",
            f"pe:{pe_name}",
            label=f"«PlatformMapping»{fixed}",
            style="dashed",
        )
    return graph.render()


def mapping_diagram_text(mapping: MappingModel) -> str:
    """Figure 8 as text: one line per «PlatformMapping» dependency."""
    lines: List[str] = ["platform mapping"]
    for group_name, pe_name in sorted(mapping.assignment().items()):
        pe = mapping.platform.pe(pe_name)
        fixed = " (fixed)" if mapping.is_fixed(group_name) else ""
        lines.append(
            f"  «PlatformMapping» {group_name} --> {pe_name} : "
            f"{pe.spec.name}{fixed}"
        )
    return "\n".join(lines)
