"""Minimal Graphviz-DOT document builder (no external dependency)."""

from __future__ import annotations

from typing import Dict, List, Optional


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    return f'"{escaped}"'


class DotGraph:
    """Accumulates nodes/edges and renders a ``digraph``/``graph`` document."""

    def __init__(self, name: str, directed: bool = True) -> None:
        self.name = name
        self.directed = directed
        self.graph_attrs: Dict[str, str] = {}
        self.node_lines: List[str] = []
        self.edge_lines: List[str] = []
        self.subgraphs: List["DotGraph"] = []
        self._node_ids: Dict[str, str] = {}

    def attr(self, **attrs: str) -> None:
        self.graph_attrs.update(attrs)

    def _node_id(self, name: str) -> str:
        if name not in self._node_ids:
            self._node_ids[name] = f"n{len(self._node_ids)}_{_sanitize(name)}"
        return self._node_ids[name]

    def node(self, name: str, label: Optional[str] = None, **attrs: str) -> str:
        node_id = self._node_id(name)
        rendered = {"label": label if label is not None else name}
        rendered.update(attrs)
        attr_text = ", ".join(f"{k}={_quote(v)}" for k, v in rendered.items())
        self.node_lines.append(f"{node_id} [{attr_text}];")
        return node_id

    def edge(self, source: str, target: str, label: str = "", **attrs: str) -> None:
        arrow = "->" if self.directed else "--"
        rendered = dict(attrs)
        if label:
            rendered["label"] = label
        attr_text = ", ".join(f"{k}={_quote(v)}" for k, v in rendered.items())
        suffix = f" [{attr_text}]" if attr_text else ""
        self.edge_lines.append(
            f"{self._node_id(source)} {arrow} {self._node_id(target)}{suffix};"
        )

    def subgraph(self, name: str, label: str = "") -> "DotGraph":
        child = DotGraph(f"cluster_{_sanitize(name)}", directed=self.directed)
        child._node_ids = self._node_ids  # share the id namespace
        if label:
            child.attr(label=label)
        self.subgraphs.append(child)
        return child

    def render(self, indent: int = 0, as_subgraph: bool = False) -> str:
        pad = "    " * indent
        keyword = (
            "subgraph"
            if as_subgraph
            else ("digraph" if self.directed else "graph")
        )
        lines = [f"{pad}{keyword} {_sanitize(self.name)} {{"]
        for key, value in self.graph_attrs.items():
            lines.append(f"{pad}    {key}={_quote(value)};")
        for child in self.subgraphs:
            lines.append(child.render(indent + 1, as_subgraph=True))
        for node_line in self.node_lines:
            lines.append(f"{pad}    {node_line}")
        for edge_line in self.edge_lines:
            lines.append(f"{pad}    {edge_line}")
        lines.append(f"{pad}}}")
        return "\n".join(lines)


def _sanitize(name: str) -> str:
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "g" + cleaned
    return cleaned
