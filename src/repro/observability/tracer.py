"""Structured tracing for the system simulator.

The paper's Figure 2 loop hinges on *observing* the executing model: the
instrumented run emits a log the profiling tool aggregates.  The tracer is
the fine-grained counterpart of that log-file — a stream of **spans**
(named intervals on a track), **instant events** (points in time) and
**counter samples** (numeric time series) that the simulator's hot paths
emit while running.  The stream feeds two consumers:

* :mod:`repro.observability.metrics` — per-PE utilisation and stall
  breakdown, bus occupancy and contention, latency histograms;
* :mod:`repro.observability.export` — a Chrome-trace JSON file that opens
  directly in ``ui.perfetto.dev``.

Design constraints (mirroring :mod:`repro.faults`):

* **Zero overhead when disabled.**  Every simulator hook is gated on
  ``tracer is not None``; an untraced run executes not a single extra
  instruction beyond that check, and its outputs are byte-identical to a
  pre-observability run.
* **Deterministic.**  Events are appended in execution order, which the
  kernel makes reproducible; two traced runs of the same seeded system
  produce byte-identical event streams (and therefore byte-identical
  exported JSON).

Tracks
------

A *track* is a ``(group, lane)`` pair of strings: the group becomes the
Perfetto process row, the lane its thread row.  The simulator uses:

==========  =======================  ===================================
group       lane                     carries
==========  =======================  ===================================
``pe``      processing element       EXEC step spans, ready-queue depth
``bus``     HIBI segment             occupancy spans, request-queue depth
``efsm``    application process      transition instants
``system``  ``dispatch``             send/deliver/drop/fault instants
``kernel``  ``scheduler``            scheduler queue-depth samples (the
                                     ``queue_depth`` counter; traces
                                     recorded before the calendar-queue
                                     kernel named it ``events``)
==========  =======================  ===================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.errors import SimulationError

Track = Tuple[str, str]

#: Well-known track groups (see the module docstring table).
GROUP_PE = "pe"
GROUP_BUS = "bus"
GROUP_EFSM = "efsm"
GROUP_SYSTEM = "system"
GROUP_KERNEL = "kernel"

KERNEL_TRACK: Track = (GROUP_KERNEL, "scheduler")
SYSTEM_TRACK: Track = (GROUP_SYSTEM, "dispatch")


def pe_track(name: str) -> Track:
    """The track of one processing element."""
    return (GROUP_PE, name)


def bus_track(segment: str) -> Track:
    """The track of one HIBI segment."""
    return (GROUP_BUS, segment)


def efsm_track(process: str) -> Track:
    """The track of one application process's EFSM."""
    return (GROUP_EFSM, process)


@dataclass(frozen=True)
class SpanEvent:
    """A named interval on a track (Chrome-trace ``ph=X``)."""

    name: str
    track: Track
    start_ps: int
    duration_ps: int
    category: str = ""
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def end_ps(self) -> int:
        """The instant the span closed."""
        return self.start_ps + self.duration_ps


@dataclass(frozen=True)
class InstantEvent:
    """A point event on a track (Chrome-trace ``ph=i``)."""

    name: str
    track: Track
    time_ps: int
    category: str = ""
    args: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class CounterEvent:
    """One sample of a numeric time series (Chrome-trace ``ph=C``)."""

    name: str
    track: Track
    time_ps: int
    values: Dict[str, int] = field(default_factory=dict)


TraceEvent = Union[SpanEvent, InstantEvent, CounterEvent]


class _OpenSpan:
    """Book-keeping for a span opened with :meth:`Tracer.begin`."""

    __slots__ = ("name", "track", "category", "start_ps", "args", "closed")

    def __init__(self, name, track, category, start_ps, args) -> None:
        self.name = name
        self.track = track
        self.category = category
        self.start_ps = start_ps
        self.args = args
        self.closed = False


class Tracer:
    """Collects the trace event stream of one simulation run.

    The tracer never inspects the clock itself: hooks either pass an
    explicit ``time_ps`` or the tracer asks the ``clock`` callable bound
    by the simulator (:meth:`bind_clock`).  Before a clock is bound, the
    implicit time is 0 — which keeps the tracer usable in clock-free unit
    tests of the executor.
    """

    __slots__ = ("events", "_clock", "_open")

    def __init__(self, clock: Optional[Callable[[], int]] = None) -> None:
        self.events: List[TraceEvent] = []
        self._clock = clock
        self._open: List[_OpenSpan] = []

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------

    def bind_clock(self, clock: Callable[[], int]) -> None:
        """Install the simulation clock used when no explicit time is given."""
        self._clock = clock

    def now_ps(self) -> int:
        """The current implicit timestamp (0 before a clock is bound)."""
        return self._clock() if self._clock is not None else 0

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------

    def begin(
        self,
        name: str,
        track: Track,
        category: str = "",
        time_ps: Optional[int] = None,
        **args: object,
    ) -> int:
        """Open a span; returns a handle for :meth:`end`.

        Handles nest freely (the bus opens one span per in-flight segment
        grant); unmatched handles are caught by :meth:`end`.
        """
        start = self.now_ps() if time_ps is None else time_ps
        self._open.append(_OpenSpan(name, track, category, start, dict(args)))
        return len(self._open) - 1

    def end(
        self, handle: int, time_ps: Optional[int] = None, **args: object
    ) -> SpanEvent:
        """Close the span ``handle`` and append the completed event."""
        if not 0 <= handle < len(self._open) or self._open[handle].closed:
            raise SimulationError(f"no open span for handle {handle}")
        pending = self._open[handle]
        pending.closed = True
        # drop fully-closed spans from the tail so handles stay small
        while self._open and self._open[-1].closed:
            self._open.pop()
        end = self.now_ps() if time_ps is None else time_ps
        if end < pending.start_ps:
            raise SimulationError(
                f"span {pending.name!r} ends before it starts "
                f"({end} < {pending.start_ps})"
            )
        merged = dict(pending.args)
        merged.update(args)
        event = SpanEvent(
            name=pending.name,
            track=pending.track,
            start_ps=pending.start_ps,
            duration_ps=end - pending.start_ps,
            category=pending.category,
            args=merged,
        )
        self.events.append(event)
        return event

    def span(
        self,
        name: str,
        track: Track,
        start_ps: int,
        duration_ps: int,
        category: str = "",
        **args: object,
    ) -> None:
        """Append a completed span in one call (start and end both known)."""
        if duration_ps < 0:
            raise SimulationError(f"span duration must be >= 0, got {duration_ps}")
        self.events.append(
            SpanEvent(
                name=name,
                track=track,
                start_ps=start_ps,
                duration_ps=duration_ps,
                category=category,
                args=dict(args),
            )
        )

    # ------------------------------------------------------------------
    # instants and counters
    # ------------------------------------------------------------------

    def instant(
        self,
        name: str,
        track: Track,
        category: str = "",
        time_ps: Optional[int] = None,
        **args: object,
    ) -> None:
        """Append a point event."""
        time = self.now_ps() if time_ps is None else time_ps
        self.events.append(
            InstantEvent(
                name=name,
                track=track,
                time_ps=time,
                category=category,
                args=dict(args),
            )
        )

    def counter(
        self,
        name: str,
        track: Track,
        values: Dict[str, int],
        time_ps: Optional[int] = None,
    ) -> None:
        """Append one sample of the counter series ``name``."""
        time = self.now_ps() if time_ps is None else time_ps
        self.events.append(
            CounterEvent(name=name, track=track, time_ps=time, values=dict(values))
        )

    # ------------------------------------------------------------------
    # checkpoint/restore protocol
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """The full event stream plus open-span book-keeping, JSON-safe.

        Restoring this onto a fresh tracer makes a resumed simulation's
        trace (and every metric derived from it) byte-identical to an
        uninterrupted run's.  Span handles are indices into the open-span
        list, so the list is serialized in order, closed entries included.
        """
        encoded = []
        for event in self.events:
            if isinstance(event, SpanEvent):
                encoded.append(
                    {
                        "kind": "span",
                        "name": event.name,
                        "track": list(event.track),
                        "start_ps": event.start_ps,
                        "duration_ps": event.duration_ps,
                        "category": event.category,
                        "args": dict(event.args),
                    }
                )
            elif isinstance(event, InstantEvent):
                encoded.append(
                    {
                        "kind": "instant",
                        "name": event.name,
                        "track": list(event.track),
                        "time_ps": event.time_ps,
                        "category": event.category,
                        "args": dict(event.args),
                    }
                )
            else:
                encoded.append(
                    {
                        "kind": "counter",
                        "name": event.name,
                        "track": list(event.track),
                        "time_ps": event.time_ps,
                        "values": dict(event.values),
                    }
                )
        return {
            "events": encoded,
            "open": [
                {
                    "name": span.name,
                    "track": list(span.track),
                    "category": span.category,
                    "start_ps": span.start_ps,
                    "args": dict(span.args),
                    "closed": span.closed,
                }
                for span in self._open
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot onto this (fresh) tracer."""
        if self.events or self._open:
            raise SimulationError(
                "load_state_dict needs a fresh tracer (events already "
                "recorded)"
            )
        for data in state["events"]:
            track = tuple(data["track"])
            if data["kind"] == "span":
                self.events.append(
                    SpanEvent(
                        name=data["name"],
                        track=track,
                        start_ps=data["start_ps"],
                        duration_ps=data["duration_ps"],
                        category=data["category"],
                        args=dict(data["args"]),
                    )
                )
            elif data["kind"] == "instant":
                self.events.append(
                    InstantEvent(
                        name=data["name"],
                        track=track,
                        time_ps=data["time_ps"],
                        category=data["category"],
                        args=dict(data["args"]),
                    )
                )
            else:
                self.events.append(
                    CounterEvent(
                        name=data["name"],
                        track=track,
                        time_ps=data["time_ps"],
                        values=dict(data["values"]),
                    )
                )
        for data in state["open"]:
            span = _OpenSpan(
                data["name"],
                tuple(data["track"]),
                data["category"],
                data["start_ps"],
                dict(data["args"]),
            )
            span.closed = data["closed"]
            self._open.append(span)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    @property
    def open_spans(self) -> int:
        """Spans begun but not yet ended (0 after a clean run)."""
        return sum(1 for span in self._open if not span.closed)

    def spans(self) -> List[SpanEvent]:
        """All completed spans, in emission order."""
        return [e for e in self.events if isinstance(e, SpanEvent)]

    def instants(self) -> List[InstantEvent]:
        """All instant events, in emission order."""
        return [e for e in self.events if isinstance(e, InstantEvent)]

    def counters(self) -> List[CounterEvent]:
        """All counter samples, in emission order."""
        return [e for e in self.events if isinstance(e, CounterEvent)]
