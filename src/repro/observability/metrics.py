"""Metrics aggregation over the trace stream.

Where :mod:`repro.profiling` answers the paper's Table 4 questions (group
execution shares, signal-count matrix), this module answers the
*designer's why*: why is a mapping slow?  Which PE idles, which stalls,
which bus segment saturates, where do signals queue?

Every metric is a pure function of the trace event stream plus the run's
end time, so the numbers are as deterministic as the simulation itself.
Definitions (``T`` = simulated end time in ps):

* **PE utilisation** — ``busy / T`` where ``busy`` is the sum of the PE's
  EXEC span durations.  ``idle = T - busy``.
* **PE stall time** — the extra picoseconds injected ``pe-stall`` windows
  added to steps on that PE (the ``extra_ps`` argument of ``pe-stall``
  instants); part of ``busy``, broken out separately.
* **Bus segment occupancy** — ``busy / T`` over the segment's grant
  spans; **contention wait** is the sum of each transfer's
  enqueue→grant delay (the span's ``wait_ps`` argument).
* **Queue high-water marks** — the maximum sampled depth of each PE
  ready queue, each segment request queue (the wrapper FIFO), and the
  kernel scheduler queue.  Kernel samples are matched by track, not by
  counter name, so traces recorded before the calendar-queue kernel
  (counter ``events``) aggregate identically to current ones
  (``queue_depth``).
* **Signal latency histograms** — send→delivery latency, bucketed by
  powers of two (bucket key ``2**k`` holds latencies in
  ``(2**(k-1), 2**k]`` ps), keyed by sender→receiver process group when
  group information is available, by transport otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.observability.tracer import (
    CounterEvent,
    GROUP_BUS,
    GROUP_PE,
    InstantEvent,
    KERNEL_TRACK,
    SpanEvent,
    Tracer,
)


@dataclass
class LatencyHistogram:
    """Power-of-two latency histogram of one signal population."""

    count: int = 0
    total_ps: int = 0
    max_ps: int = 0
    buckets: Dict[int, int] = field(default_factory=dict)

    def observe(self, latency_ps: int) -> None:
        """Add one latency sample."""
        self.count += 1
        self.total_ps += latency_ps
        if latency_ps > self.max_ps:
            self.max_ps = latency_ps
        bucket = 0 if latency_ps <= 0 else 1 << (latency_ps - 1).bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean_ps(self) -> float:
        """Arithmetic mean latency (0.0 on an empty population)."""
        return self.total_ps / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, object]:
        """A plain-JSON encoding with string bucket keys."""
        return {
            "count": self.count,
            "mean_ps": self.mean_ps,
            "max_ps": self.max_ps,
            "buckets": {str(bound): n for bound, n in sorted(self.buckets.items())},
        }


@dataclass
class PEMetrics:
    """One processing element's execution breakdown."""

    busy_ps: int = 0
    stall_ps: int = 0
    steps: int = 0
    ready_queue_peak: int = 0

    def utilization(self, end_time_ps: int) -> float:
        """Busy fraction of the simulated interval (0.0 for an empty run)."""
        if end_time_ps <= 0:
            return 0.0
        return min(1.0, self.busy_ps / end_time_ps)

    def idle_ps(self, end_time_ps: int) -> int:
        """Picoseconds the PE spent with no step in flight."""
        return max(0, end_time_ps - self.busy_ps)


@dataclass
class SegmentMetrics:
    """One HIBI segment's occupancy and contention breakdown."""

    busy_ps: int = 0
    wait_ps: int = 0
    transfers: int = 0
    bytes: int = 0
    queue_peak: int = 0
    faulted_transfers: int = 0

    def occupancy(self, end_time_ps: int) -> float:
        """Granted fraction of the simulated interval."""
        if end_time_ps <= 0:
            return 0.0
        return min(1.0, self.busy_ps / end_time_ps)


@dataclass
class MetricsReport:
    """Everything the aggregator computed from one trace."""

    end_time_ps: int = 0
    pes: Dict[str, PEMetrics] = field(default_factory=dict)
    segments: Dict[str, SegmentMetrics] = field(default_factory=dict)
    latency: Dict[str, LatencyHistogram] = field(default_factory=dict)
    kernel_queue_peak: int = 0
    dispatched_signals: int = 0
    delivered_signals: int = 0
    dropped_signals: int = 0
    transitions: int = 0
    faults_by_kind: Dict[str, int] = field(default_factory=dict)
    # exploration-campaign fault-tolerance counters (timeouts, crashes,
    # errors, retries, quarantined) — empty unless a supervised campaign
    # attached its ledger totals, see ExplorationRun.supervisor_counters()
    campaign: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """The metrics JSON body (wrapped in the shared envelope by callers)."""
        return {
            "end_time_ps": self.end_time_ps,
            "pes": {
                name: {
                    "busy_ps": pe.busy_ps,
                    "idle_ps": pe.idle_ps(self.end_time_ps),
                    "stall_ps": pe.stall_ps,
                    "steps": pe.steps,
                    "utilization": pe.utilization(self.end_time_ps),
                    "ready_queue_peak": pe.ready_queue_peak,
                }
                for name, pe in sorted(self.pes.items())
            },
            "segments": {
                name: {
                    "busy_ps": seg.busy_ps,
                    "wait_ps": seg.wait_ps,
                    "transfers": seg.transfers,
                    "bytes": seg.bytes,
                    "occupancy": seg.occupancy(self.end_time_ps),
                    "queue_peak": seg.queue_peak,
                    "faulted_transfers": seg.faulted_transfers,
                }
                for name, seg in sorted(self.segments.items())
            },
            "latency": {
                key: histogram.to_dict()
                for key, histogram in sorted(self.latency.items())
            },
            "kernel_queue_peak": self.kernel_queue_peak,
            "dispatched_signals": self.dispatched_signals,
            "delivered_signals": self.delivered_signals,
            "dropped_signals": self.dropped_signals,
            "transitions": self.transitions,
            "faults_by_kind": dict(sorted(self.faults_by_kind.items())),
            "campaign": dict(sorted(self.campaign.items())),
        }


def collect_metrics(
    tracer: Tracer,
    end_time_ps: int,
    group_of: Optional[Dict[str, str]] = None,
) -> MetricsReport:
    """Aggregate one run's trace into a :class:`MetricsReport`.

    ``group_of`` maps process names to process-group names; with it,
    latency histograms are keyed ``sender_group->receiver_group``, without
    it by transport.  Unknown processes fall back to their own name.
    """
    report = MetricsReport(end_time_ps=end_time_ps)
    for event in tracer.events:
        if isinstance(event, SpanEvent):
            if event.track[0] == GROUP_PE:
                pe = report.pes.setdefault(event.track[1], PEMetrics())
                pe.busy_ps += event.duration_ps
                pe.steps += 1
            elif event.track[0] == GROUP_BUS:
                segment = report.segments.setdefault(
                    event.track[1], SegmentMetrics()
                )
                segment.busy_ps += event.duration_ps
                segment.transfers += 1
                segment.wait_ps += int(event.args.get("wait_ps", 0))
                segment.bytes += int(event.args.get("bytes", 0))
                if event.args.get("fault"):
                    segment.faulted_transfers += 1
        elif isinstance(event, InstantEvent):
            if event.category == "signal":
                report.delivered_signals += 1
                if group_of is not None:
                    sender = str(event.args.get("sender", "-"))
                    receiver = str(event.args.get("receiver", "-"))
                    key = (
                        f"{group_of.get(sender, sender)}->"
                        f"{group_of.get(receiver, receiver)}"
                    )
                else:
                    key = str(event.args.get("transport", "-"))
                report.latency.setdefault(key, LatencyHistogram()).observe(
                    int(event.args.get("latency_ps", 0))
                )
            elif event.category == "dispatch":
                report.dispatched_signals += 1
            elif event.category == "drop":
                report.dropped_signals += 1
            elif event.category == "fault":
                report.faults_by_kind[event.name] = (
                    report.faults_by_kind.get(event.name, 0) + 1
                )
                if event.name == "pe-stall" and event.track[0] == GROUP_PE:
                    pe = report.pes.setdefault(event.track[1], PEMetrics())
                    pe.stall_ps += int(event.args.get("extra_ps", 0))
            elif event.category == "efsm":
                report.transitions += 1
        elif isinstance(event, CounterEvent):
            depth = int(event.values.get("depth", 0))
            if event.track == KERNEL_TRACK:
                if depth > report.kernel_queue_peak:
                    report.kernel_queue_peak = depth
            elif event.track[0] == GROUP_PE:
                pe = report.pes.setdefault(event.track[1], PEMetrics())
                if depth > pe.ready_queue_peak:
                    pe.ready_queue_peak = depth
            elif event.track[0] == GROUP_BUS:
                segment = report.segments.setdefault(
                    event.track[1], SegmentMetrics()
                )
                if depth > segment.queue_peak:
                    segment.queue_peak = depth
    return report


def summarize_result(result) -> Dict[str, object]:
    """A compact, JSON-able observability summary of a simulation result.

    Computed from :class:`~repro.simulation.system.SimulationResult`
    aggregates alone — no tracer required — so the exploration engine can
    attach it to every :class:`~repro.exploration.objectives
    .EvaluationResult` at zero additional simulation cost and rankings can
    be explained per candidate.
    """
    return {
        "end_time_ps": result.end_time_ps,
        "pe_utilization": {
            name: utilization
            for name, utilization in sorted(result.pe_utilization().items())
        },
        "pe_busy_ps": dict(sorted(result.pe_busy_ps.items())),
        "bus": {
            name: {
                "busy_ps": stats.busy_ps,
                "wait_ps": stats.wait_ps,
                "transfers": stats.transfers,
                "words": stats.words,
            }
            for name, stats in sorted(result.bus_stats.items())
        },
        "dropped_signals": result.dropped_signals,
    }
