"""Simulation observability: structured tracing, metrics, Perfetto export.

The subsystem the paper defers to its tool flow — "execution monitoring
of the physical implementation" — reproduced for the simulated platform:
a :class:`Tracer` threaded through the kernel, the EFSM executor, the
HIBI bus and the system simulator collects spans, instants and counters;
:func:`collect_metrics` turns the stream into per-PE/bus metrics; the
export helpers write Chrome-trace JSON that loads in ``ui.perfetto.dev``.

See ``docs/observability.md`` for the metric definitions and a Perfetto
walkthrough.
"""

from repro.observability.tracer import (
    CounterEvent,
    GROUP_BUS,
    GROUP_EFSM,
    GROUP_KERNEL,
    GROUP_PE,
    GROUP_SYSTEM,
    InstantEvent,
    KERNEL_TRACK,
    SYSTEM_TRACK,
    SpanEvent,
    TraceEvent,
    Tracer,
    bus_track,
    efsm_track,
    pe_track,
)
from repro.observability.metrics import (
    LatencyHistogram,
    MetricsReport,
    PEMetrics,
    SegmentMetrics,
    collect_metrics,
    summarize_result,
)
from repro.observability.export import (
    render_chrome_trace,
    render_metrics_text,
    to_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "CounterEvent",
    "GROUP_BUS",
    "GROUP_EFSM",
    "GROUP_KERNEL",
    "GROUP_PE",
    "GROUP_SYSTEM",
    "InstantEvent",
    "KERNEL_TRACK",
    "LatencyHistogram",
    "MetricsReport",
    "PEMetrics",
    "SYSTEM_TRACK",
    "SegmentMetrics",
    "SpanEvent",
    "TraceEvent",
    "Tracer",
    "bus_track",
    "collect_metrics",
    "efsm_track",
    "pe_track",
    "render_chrome_trace",
    "render_metrics_text",
    "summarize_result",
    "to_chrome_trace",
    "write_chrome_trace",
]
