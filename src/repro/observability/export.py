"""Chrome-trace (Perfetto-loadable) export of a trace stream.

The exporter emits the JSON *Trace Event Format* understood by
``ui.perfetto.dev`` and ``chrome://tracing``:

* spans become complete events (``ph="X"``) with microsecond ``ts`` and
  ``dur``;
* instants become thread-scoped instant events (``ph="i"``, ``s="t"``);
* counter samples become counter events (``ph="C"``);
* every track group/lane is announced with ``process_name`` /
  ``thread_name`` metadata events (``ph="M"``) so Perfetto labels rows.

``pid``/``tid`` numbers are assigned deterministically (sorted track
names, starting at 1) and the payload is serialised with sorted keys and
no whitespace, so **the same trace always renders to byte-identical
JSON** — the property the determinism regression tests pin down.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.observability.tracer import (
    CounterEvent,
    InstantEvent,
    SpanEvent,
    Tracer,
    Track,
)

#: Chrome-trace timestamps are microseconds; the kernel clock is integer
#: picoseconds, so one trace-µs tick is 1e6 kernel ticks.
_PS_PER_TRACE_US = 1_000_000


def _ts(time_ps: int) -> float:
    """A picosecond instant as a (fractional) trace-event microsecond."""
    return time_ps / _PS_PER_TRACE_US


def _assign_ids(tracer: Tracer) -> Dict[Track, Tuple[int, int]]:
    """Deterministic (pid, tid) per track: sorted groups, sorted lanes."""
    lanes: Dict[str, set] = {}
    for event in tracer.events:
        group, lane = event.track
        lanes.setdefault(group, set()).add(lane)
    ids: Dict[Track, Tuple[int, int]] = {}
    for pid, group in enumerate(sorted(lanes), start=1):
        for tid, lane in enumerate(sorted(lanes[group]), start=1):
            ids[(group, lane)] = (pid, tid)
    return ids


def to_chrome_trace(
    tracer: Tracer, metadata: Optional[Dict[str, object]] = None
) -> Dict[str, object]:
    """The trace as a Chrome-trace JSON object (``traceEvents`` container).

    ``metadata`` lands in the container's ``metadata`` field (Perfetto
    shows it in the trace-info dialog); event order follows emission
    order, which the deterministic kernel makes reproducible.
    """
    ids = _assign_ids(tracer)
    events: List[Dict[str, object]] = []
    for (group, lane), (pid, tid) in sorted(ids.items(), key=lambda kv: kv[1]):
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "ts": 0,
                "name": "process_name",
                "args": {"name": group},
            }
        )
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "ts": 0,
                "name": "thread_name",
                "args": {"name": lane},
            }
        )
    for event in tracer.events:
        pid, tid = ids[event.track]
        if isinstance(event, SpanEvent):
            record: Dict[str, object] = {
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": _ts(event.start_ps),
                "dur": _ts(event.duration_ps),
                "name": event.name,
            }
            if event.category:
                record["cat"] = event.category
            if event.args:
                record["args"] = event.args
        elif isinstance(event, InstantEvent):
            record = {
                "ph": "i",
                "pid": pid,
                "tid": tid,
                "ts": _ts(event.time_ps),
                "s": "t",
                "name": event.name,
            }
            if event.category:
                record["cat"] = event.category
            if event.args:
                record["args"] = event.args
        else:
            assert isinstance(event, CounterEvent)
            record = {
                "ph": "C",
                "pid": pid,
                "tid": tid,
                "ts": _ts(event.time_ps),
                "name": event.name,
                "args": dict(event.values),
            }
        events.append(record)
    payload: Dict[str, object] = {
        "traceEvents": events,
        "displayTimeUnit": "ns",
    }
    if metadata:
        payload["metadata"] = dict(metadata)
    return payload


def render_chrome_trace(
    tracer: Tracer, metadata: Optional[Dict[str, object]] = None
) -> str:
    """The Chrome-trace JSON as a canonical (byte-reproducible) string."""
    return json.dumps(
        to_chrome_trace(tracer, metadata), sort_keys=True, separators=(",", ":")
    )


def write_chrome_trace(
    tracer: Tracer, path: str, metadata: Optional[Dict[str, object]] = None
) -> None:
    """Write the Chrome-trace JSON to ``path`` (open it in ui.perfetto.dev)."""
    from repro.util.fsio import ensure_parent

    with open(ensure_parent(path), "w", encoding="utf-8") as handle:
        handle.write(render_chrome_trace(tracer, metadata))
        handle.write("\n")


def render_metrics_text(report) -> str:
    """A terminal-friendly rendering of a :class:`MetricsReport`."""
    from repro.util.tables import render_table

    lines: List[str] = []
    data = report.to_dict()
    pe_rows = [
        [
            name,
            f"{pe['utilization']:.1%}",
            pe["busy_ps"],
            pe["idle_ps"],
            pe["stall_ps"],
            pe["steps"],
            pe["ready_queue_peak"],
        ]
        for name, pe in data["pes"].items()
    ]
    lines.append(
        render_table(
            ["PE", "Util", "Busy ps", "Idle ps", "Stall ps", "Steps", "Queue peak"],
            pe_rows,
            title=f"Per-PE execution ({data['end_time_ps']} ps simulated)",
        )
    )
    if data["segments"]:
        segment_rows = [
            [
                name,
                f"{seg['occupancy']:.1%}",
                seg["busy_ps"],
                seg["wait_ps"],
                seg["transfers"],
                seg["queue_peak"],
            ]
            for name, seg in data["segments"].items()
        ]
        lines.append("")
        lines.append(
            render_table(
                ["Segment", "Occupancy", "Busy ps", "Wait ps", "Transfers", "Queue peak"],
                segment_rows,
                title="HIBI segment occupancy and contention",
            )
        )
    if data["latency"]:
        latency_rows = [
            [key, h["count"], f"{h['mean_ps']:.0f}", h["max_ps"]]
            for key, h in data["latency"].items()
        ]
        lines.append("")
        lines.append(
            render_table(
                ["Flow", "Signals", "Mean ps", "Max ps"],
                latency_rows,
                title="Signal delivery latency",
            )
        )
    lines.append("")
    lines.append(
        f"signals: {data['dispatched_signals']} dispatched, "
        f"{data['delivered_signals']} delivered, "
        f"{data['dropped_signals']} dropped; "
        f"transitions: {data['transitions']}; "
        f"kernel queue peak: {data['kernel_queue_peak']}"
    )
    if data["faults_by_kind"]:
        kinds = ", ".join(
            f"{kind}:{count}" for kind, count in data["faults_by_kind"].items()
        )
        lines.append(f"faults injected: {kinds}")
    return "\n".join(lines)
