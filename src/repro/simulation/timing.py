"""Cost model: what a run-to-completion step costs on a processing element.

The paper's parameterised platform models "are used to perform a high-level
hardware/software co-simulation.  In that case, the execution of application
processes is guided with the properties of the platform components"
(Section 3.2).  This module is that guidance: it turns interpreter work
counts into PE cycles using the PE spec's per-process-type costs.

Timer durations in the action language are in **microseconds** (protocol
time), independent of any PE clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.platform.components import ProcessingElementSpec
from repro.simulation.kernel import PS_PER_US, cycles_to_ps
from repro.tutprofile.tags import ComponentType, ProcessType

#: Fixed cycles charged per transition dispatch (state bookkeeping).
TRANSITION_BASE_STATEMENTS = 2
#: Statement-equivalents charged per evaluated (possibly failing) guard.
GUARD_STATEMENTS = 1

#: The PE spec used for reference ("workstation") simulation runs: a fast
#: general-purpose processor, the paper's "simulations on the workstation
#: processor" setting for Table 4.  Context switching is free because the
#: paper's profiling instruments application functions only — scheduler
#: overhead of the host OS is not attributed to any process group.
WORKSTATION_SPEC = ProcessingElementSpec(
    name="Workstation",
    component_type=ComponentType.GENERAL,
    frequency_hz=2_000_000_000,
    cycles_per_statement={
        ProcessType.GENERAL: 8,
        ProcessType.DSP: 8,
        ProcessType.HARDWARE: 8,
    },
    context_switch_cycles=0,
    signal_dispatch_cycles=8,
    area_mm2=0.0,
    power_mw=0.0,
    internal_memory_bytes=1 << 30,
)


@dataclass(frozen=True)
class StepCost:
    """Cycles and wall time of one run-to-completion step."""

    cycles: int
    duration_ps: int


class CostModel:
    """Computes step costs for one PE."""

    def __init__(self, spec: ProcessingElementSpec) -> None:
        self.spec = spec

    def step_cost(
        self,
        process_type: str,
        statements: int,
        guards_evaluated: int,
        sends: int,
        context_switch: bool,
    ) -> StepCost:
        """Cost of a step that executed ``statements`` action statements,
        evaluated ``guards_evaluated`` guards and produced ``sends`` signals."""
        work = (
            TRANSITION_BASE_STATEMENTS
            + statements
            + GUARD_STATEMENTS * guards_evaluated
        )
        cycles = work * self.spec.statement_cycles(process_type)
        cycles += sends * self.spec.signal_dispatch_cycles
        if context_switch:
            cycles += self.spec.context_switch_cycles
        return StepCost(cycles, cycles_to_ps(cycles, self.spec.frequency_hz))

    def receive_cost_cycles(self) -> int:
        """Cycles the receiving PE spends taking a signal off its wrapper."""
        return self.spec.signal_dispatch_cycles


def timer_duration_ps(microseconds: int) -> int:
    """Convert an action-language timer duration to kernel time."""
    return microseconds * PS_PER_US
