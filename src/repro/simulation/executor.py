"""EFSM execution: run-to-completion steps over the state machine model.

The executor is deliberately time-free: it computes *what happens* (state
changes, statements executed, signals produced, timers armed) and leaves
*when and how long* to the system simulator's cost model.  This split lets
the same executor serve the full-platform simulation, the workstation
reference run, and direct unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.observability.tracer import Tracer, efsm_track
from repro.uml.actions import ActionEnvironment, evaluate, execute
from repro.uml.statemachine import (
    CompletionTrigger,
    SignalTrigger,
    State,
    StateMachine,
    TimerTrigger,
    Transition,
)

MAX_COMPLETION_CHAIN = 100


@dataclass
class SendIntent:
    """A signal produced during a step, before routing."""

    signal: str
    args: Tuple[int, ...]
    via: Optional[str]

    def to_dict(self) -> dict:
        """A JSON-safe encoding (tuples become lists)."""
        return {"signal": self.signal, "args": list(self.args), "via": self.via}

    @classmethod
    def from_dict(cls, data: dict) -> "SendIntent":
        """Rebuild from :meth:`to_dict` output (restores the args tuple)."""
        return cls(
            signal=data["signal"], args=tuple(data["args"]), via=data["via"]
        )


@dataclass
class StepOutcome:
    """Everything a run-to-completion step did."""

    fired: bool = False
    from_state: str = ""
    to_state: str = ""
    trigger: str = ""
    statements: int = 0
    guards_evaluated: int = 0
    sends: List[SendIntent] = field(default_factory=list)
    timers_set: List[Tuple[str, int]] = field(default_factory=list)
    timers_reset: List[str] = field(default_factory=list)
    timer_ops: List[Tuple[str, str, int]] = field(default_factory=list)
    reached_final: bool = False

    def to_dict(self) -> dict:
        """A JSON-safe encoding for checkpoints of in-flight steps."""
        return {
            "fired": self.fired,
            "from_state": self.from_state,
            "to_state": self.to_state,
            "trigger": self.trigger,
            "statements": self.statements,
            "guards_evaluated": self.guards_evaluated,
            "sends": [intent.to_dict() for intent in self.sends],
            "timers_set": [list(item) for item in self.timers_set],
            "timers_reset": list(self.timers_reset),
            "timer_ops": [list(item) for item in self.timer_ops],
            "reached_final": self.reached_final,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StepOutcome":
        """Rebuild from :meth:`to_dict` output (restores inner tuples)."""
        return cls(
            fired=data["fired"],
            from_state=data["from_state"],
            to_state=data["to_state"],
            trigger=data["trigger"],
            statements=data["statements"],
            guards_evaluated=data["guards_evaluated"],
            sends=[SendIntent.from_dict(item) for item in data["sends"]],
            timers_set=[tuple(item) for item in data["timers_set"]],
            timers_reset=list(data["timers_reset"]),
            timer_ops=[tuple(item) for item in data["timer_ops"]],
            reached_final=data["reached_final"],
        )


class _StepEnvironment(ActionEnvironment):
    """Binds a process's variables; collects sends and timer operations."""

    def __init__(self, variables: Dict[str, int]) -> None:
        super().__init__()
        self.variables = variables  # shared reference: writes persist


class ProcessExecutor:
    """Runtime state of one application process (one EFSM instance).

    With a :class:`~repro.observability.tracer.Tracer` installed, every
    fired transition emits an instant event on the process's ``efsm``
    track (timestamped by the tracer's bound clock); ``tracer=None`` adds
    no work to any step.
    """

    def __init__(
        self,
        name: str,
        machine: StateMachine,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if machine.initial_state is None:
            raise SimulationError(
                f"machine {machine.name!r} of process {name!r} has no initial state"
            )
        self.name = name
        self.machine = machine
        self.tracer = tracer
        self.variables: Dict[str, int] = dict(machine.variables)
        self.current: Optional[State] = None
        self.terminated = False

    # ------------------------------------------------------------------
    # steps
    # ------------------------------------------------------------------

    def start(self) -> StepOutcome:
        """Enter the initial state (entry actions + completion chasing).

        A composite initial state is entered hierarchically: its entry
        actions run, then the initial-substate chain's, innermost last.
        """
        if self.current is not None:
            raise SimulationError(f"process {self.name!r} already started")
        outcome = StepOutcome(fired=True, trigger="start")
        environment = _StepEnvironment(self.variables)
        initial = self.machine.initial_state
        outcome.from_state = initial.name
        outcome.statements += execute(initial.entry, environment)
        node = initial
        while node.initial_substate is not None:
            node = node.initial_substate
            outcome.statements += execute(node.entry, environment)
        self.current = node
        self._chase_completions(outcome, environment)
        outcome.to_state = self.current.name
        self._collect(outcome, environment)
        self._trace_step(outcome)
        return outcome

    def consume_signal(
        self, signal_name: str, args: Sequence[int]
    ) -> Tuple[Optional[StepOutcome], Optional[str]]:
        """Consume one signal; returns (outcome, None) or (None, drop reason).

        Transition lookup is hierarchical: the active leaf state is searched
        first, then its enclosing composite states (innermost first).
        """
        self._require_running()
        guards = 0
        chosen: Optional[Transition] = None
        chosen_params: Dict[str, int] = {}
        saw_trigger = False
        for source in [self.current] + self.current.ancestors():
            for transition in self.machine.outgoing(source):
                trigger = transition.trigger
                if not isinstance(trigger, SignalTrigger):
                    continue
                if trigger.signal_name != signal_name:
                    continue
                saw_trigger = True
                params = self._bind_parameters(trigger, args)
                if transition.guard is not None:
                    guards += 1
                    if not self._guard_holds(transition.guard, params):
                        continue
                chosen = transition
                chosen_params = params
                break
            if chosen is not None:
                break
        if chosen is None:
            reason = "guards-false" if saw_trigger else "no-transition"
            return None, reason
        outcome = self._fire(chosen, chosen_params, f"{signal_name}")
        outcome.guards_evaluated += guards
        return outcome, None

    def fire_timer(self, timer_name: str) -> Tuple[Optional[StepOutcome], Optional[str]]:
        """Handle a timer expiry; returns (outcome, None) or (None, reason)."""
        self._require_running()
        guards = 0
        for source in [self.current] + self.current.ancestors():
            for transition in self.machine.outgoing(source):
                trigger = transition.trigger
                if not isinstance(trigger, TimerTrigger):
                    continue
                if trigger.timer_name != timer_name:
                    continue
                if transition.guard is not None:
                    guards += 1
                    if not self._guard_holds(transition.guard, {}):
                        continue
                outcome = self._fire(transition, {}, f"timer:{timer_name}")
                outcome.guards_evaluated += guards
                return outcome, None
        return None, "no-transition"

    # ------------------------------------------------------------------
    # checkpoint/restore protocol
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """The EFSM's run-time state: active state, variables, termination."""
        return {
            "current": self.current.name if self.current is not None else None,
            "variables": dict(self.variables),
            "terminated": self.terminated,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot onto this (fresh) executor."""
        name = state["current"]
        if name is None:
            self.current = None
        else:
            found = self.machine.find_state(name)
            if found is None:
                raise SimulationError(
                    f"cannot restore process {self.name!r}: machine "
                    f"{self.machine.name!r} has no state {name!r}"
                )
            self.current = found
        self.variables.clear()
        self.variables.update(state["variables"])
        self.terminated = bool(state["terminated"])

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _require_running(self) -> None:
        if self.current is None:
            raise SimulationError(f"process {self.name!r} was never started")
        if self.terminated:
            raise SimulationError(f"process {self.name!r} has terminated")

    def _bind_parameters(
        self, trigger: SignalTrigger, args: Sequence[int]
    ) -> Dict[str, int]:
        names = trigger.parameter_names
        if len(args) < len(names):
            raise SimulationError(
                f"signal {trigger.signal_name!r} delivered {len(args)} argument(s) "
                f"but process {self.name!r} binds {len(names)}"
            )
        return dict(zip(names, args))

    def _guard_holds(self, guard, params: Dict[str, int]) -> bool:
        environment = _StepEnvironment(self.variables)
        environment.parameters = params
        return bool(evaluate(guard, environment))

    def _fire(
        self, transition: Transition, params: Dict[str, int], trigger_desc: str
    ) -> StepOutcome:
        outcome = StepOutcome(
            fired=True,
            from_state=self.current.name,
            trigger=trigger_desc,
        )
        environment = _StepEnvironment(self.variables)
        environment.parameters = params
        if transition.internal:
            # Internal transition: effect only, no exit/entry, stay in state.
            outcome.statements += execute(transition.effect, environment)
        else:
            self._take(transition, outcome, environment)
            environment.parameters = {}
            if self.terminated:
                pass
            else:
                self._chase_completions(outcome, environment)
        outcome.to_state = self.current.name
        self._collect(outcome, environment)
        self._trace_step(outcome)
        return outcome

    def _take(
        self, transition: Transition, outcome: StepOutcome, environment
    ) -> None:
        """Perform a non-internal transition: hierarchical exit, effect,
        hierarchical entry, initial-substate descent."""
        target = transition.target
        lca = self._least_common_ancestor(transition.source, target)
        # exit from the active leaf upward to (exclusive) the LCA
        node = self.current
        while node is not None and node is not lca:
            outcome.statements += execute(node.exit, environment)
            node = node.parent
        outcome.statements += execute(transition.effect, environment)
        # enter from below the LCA down to the target
        for state in target.path_from_root():
            if lca is not None and (state is lca or not lca.contains(state)):
                continue  # the LCA and anything above it were never exited
            outcome.statements += execute(state.entry, environment)
        # ... and descend the initial-substate chain
        node = target
        while node.initial_substate is not None:
            node = node.initial_substate
            outcome.statements += execute(node.entry, environment)
        self.current = node
        if self.current.is_final and self.current.parent is None:
            self.terminated = True

    @staticmethod
    def _least_common_ancestor(source, target):
        """Innermost state containing both ends (None = machine root)."""
        source_chain = set(id(s) for s in source.ancestors())
        node = target.parent
        while node is not None:
            if id(node) in source_chain:
                return node
            node = node.parent
        return None

    def _chase_completions(
        self, outcome: StepOutcome, environment: _StepEnvironment
    ) -> None:
        """Follow enabled completion transitions until none fires.

        Completion transitions of the active leaf are considered first,
        then those of its enclosing composite states.
        """
        environment.parameters = {}
        for _ in range(MAX_COMPLETION_CHAIN):
            fired = False
            for source in [self.current] + self.current.ancestors():
                for transition in self.machine.outgoing(source):
                    if not isinstance(transition.trigger, CompletionTrigger):
                        continue
                    if transition.guard is not None:
                        outcome.guards_evaluated += 1
                        if not self._guard_holds(transition.guard, {}):
                            continue
                    self._take(transition, outcome, environment)
                    fired = True
                    if self.terminated:
                        return
                    break
                if fired:
                    break
            if not fired:
                return
        raise SimulationError(
            f"process {self.name!r} chained more than {MAX_COMPLETION_CHAIN} "
            "completion transitions (livelock in the model?)"
        )

    def _trace_step(self, outcome: StepOutcome) -> None:
        """Emit the fired transition as an instant on the ``efsm`` track."""
        if self.tracer is None:
            return
        self.tracer.instant(
            outcome.trigger or "step",
            efsm_track(self.name),
            category="efsm",
            from_state=outcome.from_state,
            to_state=outcome.to_state,
            statements=outcome.statements,
            sends=len(outcome.sends),
        )

    def _collect(self, outcome: StepOutcome, environment: _StepEnvironment) -> None:
        outcome.sends.extend(
            SendIntent(signal, tuple(args), via)
            for signal, args, via in environment.sent
        )
        outcome.timers_set.extend(environment.timers_set)
        outcome.timers_reset.extend(environment.timers_reset)
        outcome.timer_ops.extend(environment.timer_ops)
        outcome.reached_final = self.terminated
