"""Workstation reference simulation (paper Section 4.4).

"The performance information is gathered with simulations on a reference
platform, such as a PC workstation."  Table 4 was measured this way: the
whole TUTMAC application runs on one workstation processor, and the
profiling report shows per-group cycle shares and inter-group signalling.

:func:`run_reference_simulation` builds a throwaway single-PE platform
around :data:`~repro.simulation.timing.WORKSTATION_SPEC`, maps every
process group onto it, and runs the normal system simulation.
"""

from __future__ import annotations

from typing import Optional

from repro.application.model import ApplicationModel
from repro.mapping.model import MappingModel
from repro.platform.library import PlatformLibrary
from repro.platform.model import PlatformModel
from repro.simulation.system import SimulationResult, SystemSimulation
from repro.simulation.timing import WORKSTATION_SPEC

REFERENCE_PE = "workstation"


def build_reference_platform(profile=None) -> PlatformModel:
    """A platform with exactly one workstation-class PE."""
    library = PlatformLibrary("ReferenceLibrary", profile=profile)
    library.add_processing_element(WORKSTATION_SPEC)
    platform = PlatformModel("WorkstationReference", library, profile=profile)
    platform.instantiate(REFERENCE_PE, WORKSTATION_SPEC.name)
    return platform


def build_reference_mapping(
    application: ApplicationModel, platform: Optional[PlatformModel] = None
) -> MappingModel:
    """Map every process group of ``application`` onto the workstation PE."""
    if platform is None:
        platform = build_reference_platform(profile=application.profile)
    mapping = MappingModel(
        application, platform, view_name="ReferenceMappingView"
    )
    for group_name in application.groups:
        if application.processes_in(group_name):
            mapping.map(group_name, REFERENCE_PE)
    return mapping


def run_reference_simulation(
    application: ApplicationModel,
    duration_us: int,
    max_events: int = 5_000_000,
) -> SimulationResult:
    """Run ``application`` on the workstation reference for ``duration_us``."""
    platform = build_reference_platform(profile=application.profile)
    mapping = build_reference_mapping(application, platform)
    simulation = SystemSimulation(
        application, platform, mapping, max_events=max_events
    )
    result = simulation.run(duration_us)
    result.writer.meta["reference"] = "workstation"
    return result
