"""The simulation log-file: the artefact joining simulation and profiling.

Paper Figure 2: code generation inserts "custom C functions to create
simulation log-file during simulations"; the profiling tool later combines
"the profiling data in the simulation log-file and the process group
information".  This module defines that interchange format.

The format is line-oriented text (one record per line, ``key=value``
fields), so it diffs well and any log line can be grepped:

    TUTLOG 1
    META key=value
    EXEC time=<ps> process=<name> pe=<pe> cycles=<n> duration=<ps> \
         from=<state> to=<state> trigger=<desc>
    SIG time=<ps> signal=<name> sender=<proc> receiver=<proc> bytes=<n> \
        latency=<ps> transport=<local|bus|env> [corrupt=1]
    DROP time=<ps> process=<name> signal=<name> reason=<text>
    FAULT time=<ps> kind=<kind> signal=<name|-> source=<name|-> target=<name|->
    END time=<ps> events=<n>

``FAULT`` records and the optional ``corrupt`` flag appear only in runs
with fault injection enabled (see ``docs/fault_injection.md``); fault-free
logs are byte-identical to the pre-fault format.
"""

from __future__ import annotations

from dataclasses import dataclass
from sys import intern as _intern
from typing import Dict, Iterable, Iterator, List, Optional, TextIO, Union

from repro.errors import SimulationError
from repro.util.fsio import ensure_parent

MAGIC = "TUTLOG 1"

TRANSPORT_LOCAL = "local"
TRANSPORT_BUS = "bus"
TRANSPORT_ENV = "env"


@dataclass(frozen=True)
class ExecRecord:
    """One run-to-completion step of a process on a PE."""

    time_ps: int
    process: str
    pe: str
    cycles: int
    duration_ps: int
    from_state: str
    to_state: str
    trigger: str

    def render(self) -> str:
        """The record as one EXEC log line."""
        return (
            f"EXEC time={self.time_ps} process={self.process} pe={self.pe} "
            f"cycles={self.cycles} duration={self.duration_ps} "
            f"from={self.from_state} to={self.to_state} trigger={self.trigger}"
        )


@dataclass(frozen=True)
class SignalRecord:
    """One delivered signal instance."""

    time_ps: int
    signal: str
    sender: str
    receiver: str
    bytes: int
    latency_ps: int
    transport: str
    corrupt: int = 0

    def render(self) -> str:
        """The record as one SIG log line (corrupt flag only when set)."""
        line = (
            f"SIG time={self.time_ps} signal={self.signal} sender={self.sender} "
            f"receiver={self.receiver} bytes={self.bytes} "
            f"latency={self.latency_ps} transport={self.transport}"
        )
        if self.corrupt:
            line += " corrupt=1"
        return line


@dataclass(frozen=True)
class DropRecord:
    """A signal consumed without firing any transition."""

    time_ps: int
    process: str
    signal: str
    reason: str

    def render(self) -> str:
        """The record as one DROP log line."""
        return (
            f"DROP time={self.time_ps} process={self.process} "
            f"signal={self.signal} reason={self.reason}"
        )


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault (only present with fault injection enabled)."""

    time_ps: int
    kind: str
    signal: str = "-"
    source: str = "-"
    target: str = "-"

    def render(self) -> str:
        """The record as one FAULT log line."""
        return (
            f"FAULT time={self.time_ps} kind={self.kind} signal={self.signal} "
            f"source={self.source} target={self.target}"
        )


LogRecord = Union[ExecRecord, SignalRecord, DropRecord, FaultRecord]


class LogWriter:
    """Accumulates records and renders/writes the log file."""

    def __init__(self, meta: Optional[Dict[str, str]] = None) -> None:
        self.meta: Dict[str, str] = dict(meta or {})
        self.records: List[LogRecord] = []
        self.end_time_ps = 0

    def exec_step(self, **kwargs) -> None:
        """Record one executed run-to-completion step (EXEC line)."""
        self.records.append(ExecRecord(**kwargs))

    def signal(self, **kwargs) -> None:
        """Record one delivered signal instance (SIG line)."""
        self.records.append(SignalRecord(**kwargs))

    def drop(self, **kwargs) -> None:
        """Record a signal consumed without firing a transition (DROP)."""
        self.records.append(DropRecord(**kwargs))

    def fault(self, **kwargs) -> None:
        """Record one injected fault (FAULT line)."""
        self.records.append(FaultRecord(**kwargs))

    def finish(self, end_time_ps: int) -> None:
        """Fix the log horizon written into the END line."""
        self.end_time_ps = end_time_ps

    def render(self) -> str:
        """The complete log text: MAGIC, META, records, END trailer."""
        lines = [MAGIC]
        for key in sorted(self.meta):
            value = str(self.meta[key]).replace("\n", " ")
            lines.append(f"META {key}={value}")
        lines.extend(record.render() for record in self.records)
        lines.append(f"END time={self.end_time_ps} events={len(self.records)}")
        return "\n".join(lines) + "\n"

    def write(self, path) -> None:
        """Render and write the log to ``path``, creating parent dirs."""
        with open(ensure_parent(path), "w", encoding="utf-8") as handle:
            handle.write(self.render())

    # ------------------------------------------------------------------
    # checkpoint/restore protocol
    # ------------------------------------------------------------------

    _RECORD_KINDS = {
        "EXEC": ExecRecord,
        "SIG": SignalRecord,
        "DROP": DropRecord,
        "FAULT": FaultRecord,
    }

    def state_dict(self) -> dict:
        """Meta plus every accumulated record, JSON-safe.

        Restoring this onto a fresh writer makes a resumed run's rendered
        log byte-identical to an uninterrupted run's.
        """
        encoded = []
        for record in self.records:
            tag = next(
                name
                for name, cls in self._RECORD_KINDS.items()
                if isinstance(record, cls)
            )
            # "record" tags the line type; it cannot collide with the
            # dataclass fields (FaultRecord already claims "kind")
            encoded.append({"record": tag, **record.__dict__})
        return {
            "meta": dict(self.meta),
            "records": encoded,
            "end_time_ps": self.end_time_ps,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot onto this (fresh) writer.

        The restored meta replaces what the constructor seeded — the
        snapshot's run is the authoritative one being continued.
        """
        if self.records:
            raise SimulationError(
                "load_state_dict needs a fresh log writer (records already "
                "accumulated)"
            )
        self.meta = dict(state["meta"])
        for data in state["records"]:
            fields = {
                # intern restored names for the same reason parse_log
                # does: a resumed run re-materializes millions of records
                # drawn from a tiny name vocabulary
                key: _intern(value) if isinstance(value, str) else value
                for key, value in data.items()
            }
            cls = self._RECORD_KINDS[fields.pop("record")]
            self.records.append(cls(**fields))
        self.end_time_ps = int(state["end_time_ps"])


class LogFile:
    """A parsed simulation log."""

    def __init__(
        self,
        meta: Dict[str, str],
        records: List[LogRecord],
        end_time_ps: int,
    ) -> None:
        self.meta = meta
        self.records = records
        self.end_time_ps = end_time_ps

    @property
    def exec_records(self) -> List[ExecRecord]:
        """All EXEC records, in log order."""
        return [r for r in self.records if isinstance(r, ExecRecord)]

    @property
    def signal_records(self) -> List[SignalRecord]:
        """All SIG records, in log order."""
        return [r for r in self.records if isinstance(r, SignalRecord)]

    @property
    def drop_records(self) -> List[DropRecord]:
        """All DROP records, in log order."""
        return [r for r in self.records if isinstance(r, DropRecord)]

    @property
    def fault_records(self) -> List[FaultRecord]:
        """All FAULT records, in log order."""
        return [r for r in self.records if isinstance(r, FaultRecord)]

    def faults_by_kind(self) -> Dict[str, int]:
        """Injected-fault counts keyed by fault kind."""
        counts: Dict[str, int] = {}
        for record in self.fault_records:
            counts[record.kind] = counts.get(record.kind, 0) + 1
        return counts

    def cycles_by_process(self) -> Dict[str, int]:
        """Total charged PE cycles per process, over all EXEC records."""
        totals: Dict[str, int] = {}
        for record in self.exec_records:
            totals[record.process] = totals.get(record.process, 0) + record.cycles
        return totals

    def signal_counts(self) -> Dict[tuple, int]:
        """(sender, receiver) -> number of delivered signals."""
        counts: Dict[tuple, int] = {}
        for record in self.signal_records:
            key = (record.sender, record.receiver)
            counts[key] = counts.get(key, 0) + 1
        return counts


def _parse_fields(line: str, start: int) -> Dict[str, str]:
    # intern both keys and values: a log holds a handful of distinct
    # field names, process/PE/signal/state names and transports repeated
    # across millions of lines, so interning collapses them to shared
    # objects — dict lookups and downstream grouping become identity
    # comparisons, and parsed-log memory stays proportional to the name
    # vocabulary instead of the record count (output bytes unchanged)
    fields: Dict[str, str] = {}
    for token in line.split()[start:]:
        key, _, value = token.partition("=")
        fields[_intern(key)] = _intern(value)
    return fields


def parse_log(text: str) -> LogFile:
    """Parse a log file's text; raises :class:`SimulationError` on bad input."""
    lines = text.splitlines()
    if not lines or lines[0].strip() != MAGIC:
        raise SimulationError(f"not a simulation log (expected {MAGIC!r} header)")
    meta: Dict[str, str] = {}
    records: List[LogRecord] = []
    end_time_ps = 0
    saw_end = False
    for number, line in enumerate(lines[1:], start=2):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        kind = line.split(None, 1)[0]
        try:
            if kind == "META":
                fields = _parse_fields(line, 1)
                meta.update(fields)
            elif kind == "EXEC":
                f = _parse_fields(line, 1)
                records.append(
                    ExecRecord(
                        time_ps=int(f["time"]),
                        process=f["process"],
                        pe=f["pe"],
                        cycles=int(f["cycles"]),
                        duration_ps=int(f["duration"]),
                        from_state=f["from"],
                        to_state=f["to"],
                        trigger=f["trigger"],
                    )
                )
            elif kind == "SIG":
                f = _parse_fields(line, 1)
                records.append(
                    SignalRecord(
                        time_ps=int(f["time"]),
                        signal=f["signal"],
                        sender=f["sender"],
                        receiver=f["receiver"],
                        bytes=int(f["bytes"]),
                        latency_ps=int(f["latency"]),
                        transport=f["transport"],
                        corrupt=int(f.get("corrupt", "0")),
                    )
                )
            elif kind == "DROP":
                f = _parse_fields(line, 1)
                records.append(
                    DropRecord(
                        time_ps=int(f["time"]),
                        process=f["process"],
                        signal=f["signal"],
                        reason=f["reason"],
                    )
                )
            elif kind == "FAULT":
                f = _parse_fields(line, 1)
                records.append(
                    FaultRecord(
                        time_ps=int(f["time"]),
                        kind=f["kind"],
                        signal=f.get("signal", "-"),
                        source=f.get("source", "-"),
                        target=f.get("target", "-"),
                    )
                )
            elif kind == "END":
                f = _parse_fields(line, 1)
                end_time_ps = int(f["time"])
                saw_end = True
            else:
                raise SimulationError(f"unknown record kind {kind!r}")
        except (KeyError, ValueError) as exc:
            raise SimulationError(
                f"malformed log line {number}: {line!r} ({exc})"
            ) from exc
    if not saw_end:
        raise SimulationError("log file is truncated (no END record)")
    return LogFile(meta, records, end_time_ps)


def read_log(path) -> LogFile:
    """Read and parse a simulation log file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_log(handle.read())
