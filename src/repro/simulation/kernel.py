"""Deterministic discrete-event kernel.

Time is integer **picoseconds** so all PE/bus clock periods divide evenly
(a 50 MHz cycle is exactly 20 000 ps).  Events at equal times fire in
scheduling order (a monotonic sequence number breaks ties), which makes
every simulation run bit-reproducible.

Two interchangeable backends implement the same contract (see
``docs/kernel.md`` for the architecture guide):

* :class:`Kernel` — the default calendar/bucket queue.  Near-future
  events append into power-of-two-wide time buckets in O(1); one bucket
  activation sorts a whole bucket at once, so every same-tick batch of
  signal deliveries drains back-to-back without per-event heap
  reordering.  Far-future events append to an unsorted overflow list
  that is sorted once — straight into the drain — when the bucket
  window runs dry.
* :class:`HeapKernel` — the original binary-heap-per-event scheduler,
  kept as the differential oracle: both backends must produce
  byte-identical logs, traces and checkpoints for any model.

Events are plain lists (``[time_ps, sequence, callback, cancelled,
dispatched]`` — see the ``EV_*`` index constants) so creating one costs a
single C-level allocation and ordering them uses C list comparison
instead of a Python ``__lt__`` call per heap compare.

Hook dispatch is gated: registering a tracer or an ``after_event`` hook
flips one fused ``_hooks_active`` flag (recomputed only on hook
(un)registration), and the run loop checks that single flag per event.
With no hooks installed the loop stays on a fast path with no per-event
tracer/checkpoint/budget attribute traffic.
"""

from __future__ import annotations

import heapq
import os
from heapq import heapify as _heapify, heappop as _heappop, heappush as _heappush
from typing import Callable, List, Optional, Type

from repro.errors import InvalidScheduleError, SimulationError
from repro.observability.tracer import KERNEL_TRACK, Tracer

PS_PER_US = 1_000_000
PS_PER_MS = 1_000_000_000

#: Event-list layout: index of the absolute dispatch time in picoseconds.
EV_TIME = 0
#: Index of the global monotonic sequence number (same-time tie-breaker).
EV_SEQ = 1
#: Index of the zero-argument callback invoked at dispatch.
EV_CALLBACK = 2
#: Index of the cancellation flag (tombstone; skipped at dispatch).
EV_CANCELLED = 3
#: Index of the dispatched flag (set just before the callback runs).
EV_DISPATCHED = 4

#: An event handle as returned by :meth:`Kernel.schedule` — a plain
#: 5-slot list indexed by the ``EV_*`` constants above.
Event = List

#: Counter name for the scheduler-queue-depth series both backends emit.
#: Traces recorded before the calendar-queue rewrite named this series
#: ``events``; readers should treat that name as an alias of this one.
QUEUE_DEPTH_COUNTER = "queue_depth"

_BUDGET_MESSAGE = "event budget exceeded ({limit} events); runaway model?"


def cycles_to_ps(cycles: int, frequency_hz: int) -> int:
    """Duration of ``cycles`` clock cycles, in picoseconds."""
    if frequency_hz <= 0:
        raise SimulationError("frequency must be positive")
    if cycles < 0:
        # catch this here: a negative duration would otherwise surface
        # later as schedule()'s baffling "cannot schedule into the past"
        raise SimulationError(f"cycle count must be non-negative, got {cycles}")
    return (cycles * 1_000_000_000_000) // frequency_hz


def event_pending(event: Event) -> bool:
    """True while ``event`` awaits dispatch (not fired, not cancelled)."""
    return not event[EV_CANCELLED] and not event[EV_DISPATCHED]


class Kernel:
    """Calendar-queue scheduler with a current time and a hard event budget.

    Pending events live in one of four structures, always drained in
    exact ``(time_ps, sequence)`` order:

    * ``_drain`` — the *active bucket*, sorted descending so ``pop()``
      yields the next event; one sort per bucket activation serves every
      event in the bucket, so same-tick delivery batches cost no
      per-event comparisons.
    * ``_spill`` — a small heap for events scheduled into the active (or
      an earlier) bucket after it was activated; each pop compares the
      spill head against the drain tail so ordering stays exact.
    * ``_buckets``/``_bidx`` — near-future buckets (a dict of unsorted
      lists keyed by ``time_ps >> bucket_shift``, plus a heap of their
      indices); appending is O(1).
    * ``_over`` — unsorted overflow list for events beyond the bucket
      window (``span`` buckets ahead); appending is O(1), and when the
      window runs dry the whole list is sorted once straight into the
      drain (a *re-base*) and the window re-opens past it.

    With a :class:`~repro.observability.tracer.Tracer` installed the run
    loop samples the scheduler queue depth every ``trace_stride``
    dispatches (the ``queue_depth`` counter series in trace exports,
    named ``events`` in traces recorded before the calendar rewrite).
    Tracer and ``after_event`` registration recompute one fused hook
    gate, so an idle kernel pays a single flag check per dispatch.
    """

    __slots__ = (
        "now_ps",
        "max_events",
        "trace_stride",
        "_shift",
        "_span",
        "_drain",
        "_spill",
        "_buckets",
        "_bidx",
        "_over",
        "_active_idx",
        "_limit",
        "_sequence",
        "_dispatched",
        "_size",
        "_tombstones",
        "_drained",
        "_spilled",
        "_activations",
        "_migrations",
        "_tracer",
        "_after_event",
        "_hooks_active",
    )

    #: log2 of the bucket width: 1024 ps buckets keep cycle-granularity
    #: timers (tens of ns) a handful of buckets ahead.
    DEFAULT_BUCKET_SHIFT = 10
    #: buckets tracked ahead of the active one before events overflow to
    #: the fallback heap: 256 × 1024 ps ≈ 262 ns of direct-append window.
    DEFAULT_SPAN = 256

    def __init__(
        self,
        max_events: int = 5_000_000,
        tracer: Optional[Tracer] = None,
        trace_stride: int = 64,
        bucket_shift: int = DEFAULT_BUCKET_SHIFT,
        span: int = DEFAULT_SPAN,
    ) -> None:
        self.now_ps: int = 0
        self.max_events = max_events
        self.trace_stride = max(1, trace_stride)
        self._shift = bucket_shift
        self._span = span
        self._drain: list = []  # active bucket, reverse-sorted
        self._spill: list = []  # heap: late arrivals for the active bucket
        self._buckets: dict = {}  # bucket index -> unsorted event list
        self._bidx: list = []  # heap of occupied bucket indices
        self._over: list = []  # unsorted: events beyond the bucket window
        self._active_idx = -1
        self._limit = span  # first bucket index routed to the overflow heap
        self._sequence = 0
        self._dispatched = 0
        self._size = 0  # entries across all structures (incl. tombstones)
        self._tombstones = 0
        self._drained = 0  # lifetime pops served from the sorted drain
        self._spilled = 0  # lifetime pops served from the spill heap
        self._activations = 0  # bucket activations (one sort each)
        self._migrations = 0  # overflow re-bases (one sort each)
        self._tracer = tracer
        self._after_event: Optional[Callable[[], None]] = None
        self._hooks_active = tracer is not None

    # ------------------------------------------------------------------
    # fused hook gate
    # ------------------------------------------------------------------

    @property
    def tracer(self) -> Optional[Tracer]:
        """Tracer sampled every ``trace_stride`` dispatches (or ``None``)."""
        return self._tracer

    @tracer.setter
    def tracer(self, value: Optional[Tracer]) -> None:
        self._tracer = value
        self._hooks_active = value is not None or self._after_event is not None

    @property
    def after_event(self) -> Optional[Callable[[], None]]:
        """Hook called between dispatches (the queue is quiescent there).

        The checkpoint subsystem snapshots from this hook.  Assigning
        ``None`` unregisters it; (un)registration recomputes the fused
        hook gate, so an unhooked kernel stays on the fast dispatch loop.
        """
        return self._after_event

    @after_event.setter
    def after_event(self, value: Optional[Callable[[], None]]) -> None:
        self._after_event = value
        self._hooks_active = value is not None or self._tracer is not None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def schedule(self, delay_ps: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay_ps`` after the current time."""
        if delay_ps < 0:
            # InvalidScheduleError is a ValueError: negative delays are a
            # caller bug (mirrors the cycles_to_ps negative guard above)
            raise InvalidScheduleError(
                f"cannot schedule into the past ({delay_ps} ps)"
            )
        self._sequence = sequence = self._sequence + 1
        time_ps = self.now_ps + delay_ps
        event = [time_ps, sequence, callback, False, False]
        idx = time_ps >> self._shift
        if idx <= self._active_idx:
            # an empty drain+spill means no ordering constraint yet: the
            # event can seed the drain directly (the self-rescheduling
            # chain shape stays off the heap entirely)
            if self._spill or self._drain:
                _heappush(self._spill, event)
            else:
                self._drain.append(event)
        elif idx < self._limit:
            bucket = self._buckets.get(idx)
            if bucket is None:
                self._buckets[idx] = [event]
                _heappush(self._bidx, idx)
            else:
                bucket.append(event)
        else:
            self._over.append(event)
        self._size += 1
        return event

    def schedule_at(self, time_ps: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at the absolute instant ``time_ps``."""
        return self.schedule(time_ps - self.now_ps, callback)

    def cancel(self, event: Event) -> None:
        """Mark ``event`` cancelled; it is skipped (and dropped) at dispatch.

        Cancelled events stay queued as tombstones; once tombstones
        outnumber live events every structure is compacted in one O(n)
        pass, so cancel-heavy models (timer resets) keep the queue
        proportional to the live event count.
        """
        if event[EV_CANCELLED] or event[EV_DISPATCHED]:
            return
        event[EV_CANCELLED] = True
        self._tombstones += 1
        if self._tombstones > self._size // 2 and self._size > 8:
            self._compact()

    def _compact(self) -> None:
        """Drop tombstones from every structure, strictly in place.

        In-place mutation matters: the run loop caches references to
        ``_drain``/``_spill`` while a callback may trigger this via
        :meth:`cancel`, so the lists must keep their identity.
        """
        self._drain[:] = [e for e in self._drain if not e[EV_CANCELLED]]
        self._spill[:] = [e for e in self._spill if not e[EV_CANCELLED]]
        _heapify(self._spill)
        self._over[:] = [e for e in self._over if not e[EV_CANCELLED]]
        buckets = self._buckets
        for idx in list(buckets):
            kept = [e for e in buckets[idx] if not e[EV_CANCELLED]]
            if kept:
                buckets[idx] = kept
            else:
                del buckets[idx]
        self._bidx[:] = buckets.keys()
        _heapify(self._bidx)
        self._size = (
            len(self._drain)
            + len(self._spill)
            + len(self._over)
            + sum(len(b) for b in buckets.values())
        )
        self._tombstones = 0

    @property
    def pending(self) -> int:
        """Scheduled events not yet dispatched or cancelled (O(1))."""
        return self._size - self._tombstones

    @property
    def dispatched(self) -> int:
        """Events dispatched over the kernel's whole life (survives restore).

        Coherent at quiescent points (before :meth:`run`, after it
        returns or raises, and inside any tracer/``after_event`` hook);
        the unhooked fast loop defers the counter until it exits.
        """
        return self._dispatched

    def queue_stats(self) -> dict:
        """Lifetime queue counters (for benchmarks and diagnostics).

        ``drained`` pops came from the pre-sorted drain (the batched
        path: no per-event comparisons), ``spilled`` pops from the
        fallback heap; ``activations`` counts drain refills (bucket
        sorts plus overflow re-bases) and ``migrations`` the overflow
        re-bases alone.  The batching hit rate is
        ``drained / (drained + spilled)``.
        """
        return {
            "backend": "calendar",
            "drained": self._drained,
            "spilled": self._spilled,
            "activations": self._activations,
            "migrations": self._migrations,
        }

    # ------------------------------------------------------------------
    # run loop
    # ------------------------------------------------------------------

    def _advance(self) -> bool:
        """Activate the next run of events; False when nothing is left.

        Only called with the drain and spill empty.  Two paths:

        * **Bucket activation** — pop the lowest-indexed bucket, sort it
          once, make it the drain.
        * **Overflow re-base** — the bucket window is empty but the
          overflow list is not.  The whole list is sorted once (C
          Timsort over list events) straight into the drain, the cursor
          jumps to the last drained bucket and the window re-opens past
          it.  Every event passes through at most one re-base sort, so
          the amortized cost matches a binary heap's O(log n) with far
          smaller constants — and overflow inserts stay O(1) appends.
        """
        if self._bidx:
            idx = _heappop(self._bidx)
            bucket = self._buckets.pop(idx)
            self._active_idx = idx
            bucket.sort(reverse=True)
            self._drain[:] = bucket
            self._activations += 1
            return True
        over = self._over
        if not over:
            return False
        over.sort(reverse=True)
        self._drain[:] = over
        del over[:]
        self._active_idx = self._drain[0][0] >> self._shift
        self._limit = self._active_idx + 1 + self._span
        self._activations += 1
        self._migrations += 1
        return True

    def run(self, until_ps: Optional[int] = None) -> int:
        """Dispatch events in order until the queue drains or ``until_ps``.

        Returns the number of dispatched events.  The kernel clock is left
        at ``until_ps`` (if given) or at the last event time.
        """
        until = until_ps if until_ps is not None else float("inf")
        total = 0
        while True:
            if self._hooks_active:
                count, exhausted = self._run_hooked(until)
            else:
                count, exhausted = self._run_idle(until)
            total += count
            if exhausted:
                break
        if until_ps is not None and until_ps > self.now_ps:
            self.now_ps = until_ps
        return total

    def _run_idle(self, until) -> tuple:
        """Fast dispatch loop for the no-hooks case.

        Per event: one pop, one cancelled check, one fused-gate check.
        The lifetime dispatch counter and queue statistics accumulate in
        locals and flush when the loop exits (including via exceptions),
        so ``dispatched`` is coherent at every quiescent point.  Returns
        ``(count, exhausted)``; ``exhausted`` is False when a callback
        registered a hook and the hooked loop must take over.
        """
        drain = self._drain
        spill = self._spill
        heappop = _heappop
        budget = self.max_events - self._dispatched
        n = 0
        drained = 0
        spilled = 0
        exhausted = True
        try:
            while True:
                if drain:
                    if spill and spill[0] < drain[-1]:
                        event = heappop(spill)
                        spilled += 1
                    else:
                        event = drain.pop()
                        drained += 1
                elif spill:
                    event = heappop(spill)
                    spilled += 1
                else:
                    if not self._advance():
                        break
                    continue
                time_ps = event[0]
                if time_ps > until:
                    # push-back goes to the spill heap: the event came
                    # from the active bucket window, so the invariant
                    # (spill index <= active index) holds either way
                    _heappush(spill, event)
                    break
                if event[3]:
                    self._size -= 1
                    self._tombstones -= 1
                    continue
                self._size -= 1
                event[4] = True
                self.now_ps = time_ps
                event[2]()
                n += 1
                if n > budget:
                    raise SimulationError(
                        _BUDGET_MESSAGE.format(limit=self.max_events)
                    )
                if self._hooks_active:
                    # the callback just registered a hook: replay this
                    # event's post-dispatch phase under the hooked
                    # contract, then hand over to the hooked loop
                    self._dispatched += n
                    n = 0
                    self._post_dispatch_hooks()
                    exhausted = False
                    break
        finally:
            self._dispatched += n
            self._drained += drained
            self._spilled += spilled
        return n if exhausted else 0, exhausted

    def _post_dispatch_hooks(self) -> None:
        """The per-event hook phase: depth sample, budget, after_event."""
        tracer = self._tracer
        if tracer is not None and self._dispatched % self.trace_stride == 0:
            # sample the live count, not the raw entry count: tombstones
            # are an implementation detail and would make a restored
            # run's samples (tombstone-free queue) diverge
            tracer.counter(
                QUEUE_DEPTH_COUNTER,
                KERNEL_TRACK,
                {"depth": self._size - self._tombstones},
                time_ps=self.now_ps,
            )
        if self._dispatched > self.max_events:
            raise SimulationError(_BUDGET_MESSAGE.format(limit=self.max_events))
        hook = self._after_event
        if hook is not None:
            # quiescent point: the event completed, the next has not
            # started — the checkpoint subsystem snapshots from here
            hook()

    def _run_hooked(self, until) -> tuple:
        """Dispatch loop with tracer/after_event hooks live.

        Identical event ordering and per-event hook phases to the
        original heap kernel; drops back to the fast loop when the last
        hook is unregistered mid-run.
        """
        drain = self._drain
        spill = self._spill
        heappop = _heappop
        n = 0
        while self._hooks_active:
            if drain:
                if spill and spill[0] < drain[-1]:
                    event = heappop(spill)
                    self._spilled += 1
                else:
                    event = drain.pop()
                    self._drained += 1
            elif spill:
                event = heappop(spill)
                self._spilled += 1
            else:
                if not self._advance():
                    return n, True
                continue
            time_ps = event[0]
            if time_ps > until:
                _heappush(spill, event)
                return n, True
            if event[3]:
                self._size -= 1
                self._tombstones -= 1
                continue
            self._size -= 1
            event[4] = True
            self.now_ps = time_ps
            event[2]()
            n += 1
            self._dispatched += 1
            self._post_dispatch_hooks()
        return n, False

    # ------------------------------------------------------------------
    # checkpoint/restore protocol
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """The kernel's serializable state (clock, sequence, dispatch count).

        Pending queue events are *not* serialized — they hold raw
        callbacks.  Each owning component records what its events would
        do and re-materializes them on restore via :meth:`restore_event`.
        Queue shape (bucket width, spill/overflow membership) is a pure
        implementation detail and never reaches a snapshot, so a
        checkpoint taken under one backend or bucket geometry restores
        under any other.
        """
        return {
            "now_ps": self.now_ps,
            "sequence": self._sequence,
            "dispatched": self._dispatched,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore clock/counters; the queue must be empty (fresh kernel)."""
        if self._size or self._dispatched:
            raise SimulationError(
                "load_state_dict needs a fresh kernel (events already "
                "scheduled or dispatched)"
            )
        self.now_ps = int(state["now_ps"])
        self._sequence = int(state["sequence"])
        self._dispatched = int(state["dispatched"])
        # re-base the bucket window on the restored clock so the first
        # re-materialized events append to buckets instead of spilling
        self._active_idx = (self.now_ps >> self._shift) - 1
        self._limit = self._active_idx + 1 + self._span

    def restore_event(
        self, time_ps: int, sequence: int, callback: Callable[[], None]
    ) -> Event:
        """Re-materialize a checkpointed event with its *original* sequence.

        Keeping the original sequence number reproduces same-time dispatch
        order exactly, so a resumed run replays byte-identically.  Only
        valid for events from a snapshot: the sequence must already be
        accounted for by the restored sequence counter.
        """
        if sequence > self._sequence:
            raise SimulationError(
                f"restored event sequence {sequence} is ahead of the "
                f"kernel's counter {self._sequence}"
            )
        if time_ps < self.now_ps:
            raise SimulationError(
                f"restored event at {time_ps} ps is before the restored "
                f"clock ({self.now_ps} ps)"
            )
        event = [time_ps, sequence, callback, False, False]
        idx = time_ps >> self._shift
        if idx <= self._active_idx:
            _heappush(self._spill, event)
        elif idx < self._limit:
            bucket = self._buckets.get(idx)
            if bucket is None:
                self._buckets[idx] = [event]
                _heappush(self._bidx, idx)
            else:
                bucket.append(event)
        else:
            self._over.append(event)
        self._size += 1
        return event


class HeapKernel:
    """The original binary-heap scheduler, kept as the differential oracle.

    Same event contract, checkpoint protocol and hook semantics as
    :class:`Kernel`, with the pre-calendar implementation: one heap, one
    ``heappush``/``heappop`` per event, and per-event ``None`` checks for
    every hook.  ``select_backend("heap")`` (or
    ``REPRO_KERNEL_BACKEND=heap``) swaps it in so any run can be
    replayed against the old scheduler and compared byte-for-byte.
    """

    __slots__ = (
        "now_ps",
        "max_events",
        "tracer",
        "trace_stride",
        "_heap",
        "_sequence",
        "_dispatched",
        "_live",
        "after_event",
    )

    def __init__(
        self,
        max_events: int = 5_000_000,
        tracer: Optional[Tracer] = None,
        trace_stride: int = 64,
    ) -> None:
        self.now_ps: int = 0
        self.max_events = max_events
        self.tracer = tracer
        self.trace_stride = max(1, trace_stride)
        self._heap: list = []
        self._sequence = 0
        self._dispatched = 0
        self._live = 0  # heap entries that are not cancelled tombstones
        # called between dispatches (the heap is quiescent there); the
        # checkpoint subsystem snapshots from this hook.
        self.after_event: Optional[Callable[[], None]] = None

    def schedule(self, delay_ps: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay_ps`` after the current time."""
        if delay_ps < 0:
            raise InvalidScheduleError(
                f"cannot schedule into the past ({delay_ps} ps)"
            )
        self._sequence += 1
        event = [self.now_ps + delay_ps, self._sequence, callback, False, False]
        _heappush(self._heap, event)
        self._live += 1
        return event

    def schedule_at(self, time_ps: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at the absolute instant ``time_ps``."""
        return self.schedule(time_ps - self.now_ps, callback)

    def cancel(self, event: Event) -> None:
        """Mark ``event`` cancelled; it is skipped (and dropped) at dispatch."""
        if event[EV_CANCELLED] or event[EV_DISPATCHED]:
            return
        event[EV_CANCELLED] = True
        self._live -= 1
        tombstones = len(self._heap) - self._live
        if tombstones > len(self._heap) // 2 and len(self._heap) > 8:
            # in place, like Kernel._compact: run() caches no references
            # here, but keeping the identity stable costs nothing
            self._heap[:] = [e for e in self._heap if not e[EV_CANCELLED]]
            _heapify(self._heap)

    @property
    def pending(self) -> int:
        """Scheduled events not yet dispatched or cancelled (O(1))."""
        return self._live

    @property
    def dispatched(self) -> int:
        """Events dispatched over the kernel's whole life (survives restore)."""
        return self._dispatched

    def queue_stats(self) -> dict:
        """Lifetime queue counters; the heap backend has no batched path."""
        return {
            "backend": "heap",
            "drained": 0,
            "spilled": self._dispatched,
            "activations": 0,
            "migrations": 0,
        }

    def run(self, until_ps: Optional[int] = None) -> int:
        """Dispatch events in order until the heap drains or ``until_ps``.

        Returns the number of dispatched events.  The kernel clock is left
        at ``until_ps`` (if given) or at the last event time.
        """
        dispatched = 0
        heap = self._heap
        while heap:
            event = heap[0]
            if event[EV_CANCELLED]:
                _heappop(heap)
                continue
            if until_ps is not None and event[EV_TIME] > until_ps:
                break
            _heappop(heap)
            self._live -= 1
            event[EV_DISPATCHED] = True
            self.now_ps = event[EV_TIME]
            event[EV_CALLBACK]()
            dispatched += 1
            self._dispatched += 1
            if (
                self.tracer is not None
                and self._dispatched % self.trace_stride == 0
            ):
                self.tracer.counter(
                    QUEUE_DEPTH_COUNTER,
                    KERNEL_TRACK,
                    {"depth": self._live},
                    time_ps=self.now_ps,
                )
            if self._dispatched > self.max_events:
                raise SimulationError(
                    _BUDGET_MESSAGE.format(limit=self.max_events)
                )
            if self.after_event is not None:
                self.after_event()
        if until_ps is not None and until_ps > self.now_ps:
            self.now_ps = until_ps
        return dispatched

    def state_dict(self) -> dict:
        """The kernel's serializable state (clock, sequence, dispatch count)."""
        return {
            "now_ps": self.now_ps,
            "sequence": self._sequence,
            "dispatched": self._dispatched,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore clock/counters; the heap must be empty (fresh kernel)."""
        if self._heap or self._dispatched:
            raise SimulationError(
                "load_state_dict needs a fresh kernel (events already "
                "scheduled or dispatched)"
            )
        self.now_ps = int(state["now_ps"])
        self._sequence = int(state["sequence"])
        self._dispatched = int(state["dispatched"])

    def restore_event(
        self, time_ps: int, sequence: int, callback: Callable[[], None]
    ) -> Event:
        """Re-materialize a checkpointed event with its *original* sequence."""
        if sequence > self._sequence:
            raise SimulationError(
                f"restored event sequence {sequence} is ahead of the "
                f"kernel's counter {self._sequence}"
            )
        if time_ps < self.now_ps:
            raise SimulationError(
                f"restored event at {time_ps} ps is before the restored "
                f"clock ({self.now_ps} ps)"
            )
        event = [time_ps, sequence, callback, False, False]
        _heappush(self._heap, event)
        self._live += 1
        return event


#: Environment variable consulted by :func:`select_backend` when no
#: explicit backend name is given.
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

_BACKENDS = {
    "calendar": Kernel,
    "heap": HeapKernel,
}


def select_backend(name: Optional[str] = None) -> Type:
    """Resolve a kernel backend class by name.

    ``calendar`` (the default) and ``heap`` are always available;
    ``compiled`` requires an optional mypyc-built extension module
    (``repro.simulation._ckernel``) and raises if it is missing, while
    ``auto`` falls back to ``calendar`` when the extension is absent.
    With ``name=None`` the ``REPRO_KERNEL_BACKEND`` environment variable
    is consulted first (empty/unset means ``auto``), so a whole
    simulation, exploration campaign or fuzz run can be flipped to
    another backend without touching code.
    """
    if name is None:
        name = os.environ.get(BACKEND_ENV_VAR, "") or "auto"
    if name in _BACKENDS:
        return _BACKENDS[name]
    if name in ("auto", "compiled"):
        try:
            from repro.simulation import _ckernel  # type: ignore[attr-defined]
        except ImportError:
            if name == "compiled":
                raise SimulationError(
                    "compiled kernel backend requested but the "
                    "repro.simulation._ckernel extension is not built"
                )
            return Kernel
        return _ckernel.Kernel
    raise SimulationError(
        f"unknown kernel backend {name!r} "
        f"(expected one of: calendar, heap, compiled, auto)"
    )
