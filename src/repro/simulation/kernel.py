"""Deterministic discrete-event kernel.

Time is integer **picoseconds** so all PE/bus clock periods divide evenly
(a 50 MHz cycle is exactly 20 000 ps).  Events at equal times fire in
scheduling order (a monotonic sequence number breaks ties), which makes
every simulation run bit-reproducible.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from repro.errors import InvalidScheduleError, SimulationError
from repro.observability.tracer import KERNEL_TRACK, Tracer

PS_PER_US = 1_000_000
PS_PER_MS = 1_000_000_000


def cycles_to_ps(cycles: int, frequency_hz: int) -> int:
    """Duration of ``cycles`` clock cycles, in picoseconds."""
    if frequency_hz <= 0:
        raise SimulationError("frequency must be positive")
    if cycles < 0:
        # catch this here: a negative duration would otherwise surface
        # later as schedule()'s baffling "cannot schedule into the past"
        raise SimulationError(f"cycle count must be non-negative, got {cycles}")
    return (cycles * 1_000_000_000_000) // frequency_hz


class Event:
    """A scheduled callback; cancel via :meth:`Kernel.cancel`."""

    __slots__ = ("time_ps", "sequence", "callback", "cancelled", "dispatched")

    def __init__(self, time_ps: int, sequence: int, callback: Callable[[], None]) -> None:
        self.time_ps = time_ps
        self.sequence = sequence
        self.callback = callback
        self.cancelled = False
        self.dispatched = False

    @property
    def pending(self) -> bool:
        """Still in the heap awaiting dispatch (not fired, not cancelled)."""
        return not self.cancelled and not self.dispatched

    def __lt__(self, other: "Event") -> bool:
        return (self.time_ps, self.sequence) < (other.time_ps, other.sequence)


class Kernel:
    """Event heap with a current time and a hard event budget.

    With a :class:`~repro.observability.tracer.Tracer` installed the run
    loop samples the event-heap depth every ``trace_stride`` dispatches
    (the scheduler-queue-depth series in trace exports); ``tracer=None``
    keeps the loop's per-event cost at a single predicate check.
    """

    def __init__(
        self,
        max_events: int = 5_000_000,
        tracer: Optional[Tracer] = None,
        trace_stride: int = 64,
    ) -> None:
        self.now_ps: int = 0
        self.max_events = max_events
        self.tracer = tracer
        self.trace_stride = max(1, trace_stride)
        self._heap: list = []
        self._sequence = 0
        self._dispatched = 0
        self._live = 0  # heap entries that are not cancelled tombstones
        # called between dispatches (the heap is quiescent there); the
        # checkpoint subsystem snapshots from this hook.  None keeps the
        # run loop at a single extra predicate check, like the tracer.
        self.after_event: Optional[Callable[[], None]] = None

    def schedule(self, delay_ps: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay_ps`` after the current time."""
        if delay_ps < 0:
            # InvalidScheduleError is a ValueError: negative delays are a
            # caller bug (mirrors the cycles_to_ps negative guard above)
            raise InvalidScheduleError(
                f"cannot schedule into the past ({delay_ps} ps)"
            )
        self._sequence += 1
        event = Event(self.now_ps + delay_ps, self._sequence, callback)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def schedule_at(self, time_ps: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at the absolute instant ``time_ps``."""
        return self.schedule(time_ps - self.now_ps, callback)

    def cancel(self, event: Event) -> None:
        """Mark ``event`` cancelled; it is skipped (and dropped) at dispatch.

        Cancelled events stay in the heap as tombstones; once tombstones
        outnumber live events the heap is compacted in one O(n) pass, so
        cancel-heavy models (timer resets) keep the heap proportional to
        the live event count.
        """
        if event.cancelled or event.dispatched:
            return
        event.cancelled = True
        self._live -= 1
        tombstones = len(self._heap) - self._live
        if tombstones > len(self._heap) // 2 and len(self._heap) > 8:
            self._heap = [e for e in self._heap if not e.cancelled]
            heapq.heapify(self._heap)

    @property
    def pending(self) -> int:
        """Scheduled events not yet dispatched or cancelled (O(1))."""
        return self._live

    @property
    def dispatched(self) -> int:
        """Events dispatched over the kernel's whole life (survives restore)."""
        return self._dispatched

    def run(self, until_ps: Optional[int] = None) -> int:
        """Dispatch events in order until the heap drains or ``until_ps``.

        Returns the number of dispatched events.  The kernel clock is left
        at ``until_ps`` (if given) or at the last event time.
        """
        dispatched = 0
        while self._heap:
            event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            if until_ps is not None and event.time_ps > until_ps:
                break
            heapq.heappop(self._heap)
            self._live -= 1
            event.dispatched = True
            self.now_ps = event.time_ps
            event.callback()
            dispatched += 1
            self._dispatched += 1
            if (
                self.tracer is not None
                and self._dispatched % self.trace_stride == 0
            ):
                # sample the live count, not len(heap): tombstones are an
                # implementation detail and would make a restored run's
                # samples (tombstone-free heap) diverge from the original
                self.tracer.counter(
                    "events",
                    KERNEL_TRACK,
                    {"depth": self._live},
                    time_ps=self.now_ps,
                )
            if self._dispatched > self.max_events:
                raise SimulationError(
                    f"event budget exceeded ({self.max_events} events); "
                    "runaway model?"
                )
            if self.after_event is not None:
                # quiescent point: the event completed, the next has not
                # started — the checkpoint subsystem snapshots from here
                self.after_event()
        if until_ps is not None and until_ps > self.now_ps:
            self.now_ps = until_ps
        return dispatched

    # ------------------------------------------------------------------
    # checkpoint/restore protocol
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """The kernel's serializable state (clock, sequence, dispatch count).

        Pending heap events are *not* serialized — they hold raw callbacks.
        Each owning component records what its events would do and
        re-materializes them on restore via :meth:`restore_event`.
        """
        return {
            "now_ps": self.now_ps,
            "sequence": self._sequence,
            "dispatched": self._dispatched,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore clock/counters; the heap must be empty (fresh kernel)."""
        if self._heap or self._dispatched:
            raise SimulationError(
                "load_state_dict needs a fresh kernel (events already "
                "scheduled or dispatched)"
            )
        self.now_ps = int(state["now_ps"])
        self._sequence = int(state["sequence"])
        self._dispatched = int(state["dispatched"])

    def restore_event(
        self, time_ps: int, sequence: int, callback: Callable[[], None]
    ) -> Event:
        """Re-materialize a checkpointed event with its *original* sequence.

        Keeping the original sequence number reproduces same-time dispatch
        order exactly, so a resumed run replays byte-identically.  Only
        valid for events from a snapshot: the sequence must already be
        accounted for by the restored sequence counter.
        """
        if sequence > self._sequence:
            raise SimulationError(
                f"restored event sequence {sequence} is ahead of the "
                f"kernel's counter {self._sequence}"
            )
        if time_ps < self.now_ps:
            raise SimulationError(
                f"restored event at {time_ps} ps is before the restored "
                f"clock ({self.now_ps} ps)"
            )
        event = Event(time_ps, sequence, callback)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event
