"""HIBI bus simulation: segment occupancy, arbitration, bridged transfers.

A transfer between PEs crosses the sequence of segments
:meth:`~repro.platform.model.PlatformModel.transfer_path` returns,
store-and-forward at bridge boundaries (HIBI bridges buffer a burst before
re-arbitrating on the next segment).  Each segment grants pending requests
by its arbitration policy:

* ``priority`` — lowest wrapper ``PriorityClass`` wins, FIFO among equals;
* ``round-robin`` — rotate over wrapper addresses, starting after the last
  served address.

A wrapper's ``MaxTime`` (maximum segment reservation) splits long transfers
into chunks, each paying arbitration again.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import SimulationError
from repro.observability.tracer import Tracer, bus_track
from repro.platform.components import SegmentSpec, WrapperSpec
from repro.platform.model import PlatformModel
from repro.simulation.kernel import EV_SEQ, EV_TIME, Kernel, cycles_to_ps


@dataclass
class TransferStats:
    """Aggregate bus statistics, per segment."""

    transfers: int = 0
    words: int = 0
    busy_ps: int = 0
    wait_ps: int = 0


@dataclass
class _Transfer:
    path: List[str]                   # remaining segments to cross
    agents: List[str]                 # agent requesting each remaining hop
    size_bytes: int
    on_complete: Callable[[int], None]  # called with total latency (ps)
    started_ps: int = 0
    enqueued_ps: int = 0
    # fault injection (None without a fault plan): the injected fault kind
    # and the payload after corruption, resolved via on_fault at delivery
    fault: Optional[str] = None
    fault_args: tuple = ()
    on_fault: Optional[Callable[[str, int, tuple], None]] = None
    trace_handle: Optional[int] = None  # open tracer span of the current hop
    # serializable description of the callbacks (set by the system layer);
    # a checkpoint restore passes it back through a resolver to rebuild
    # on_complete/on_fault, since closures themselves cannot be snapshotted
    payload: Optional[dict] = None


class _SegmentRuntime:
    def __init__(self, name: str, spec: SegmentSpec) -> None:
        self.name = name
        self.spec = spec
        self.busy = False
        self.queue: List[tuple] = []  # (wrapper_spec, transfer)
        self.last_served_address = -1
        self.stats = TransferStats()
        # the granted transfer and its pending _release event, while busy
        self.active: Optional[tuple] = None


class HibiBus:
    """Cycle-approximate model of the platform's segmented interconnect."""

    def __init__(
        self,
        platform: PlatformModel,
        kernel: Kernel,
        faults=None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.platform = platform
        self.kernel = kernel
        # an optional repro.faults.FaultPlan; None keeps transfers fault-free
        # with zero per-transfer overhead
        self.faults = faults
        # an optional repro.observability.Tracer: grant→release spans and
        # request-queue depth samples per segment, same None-gated pattern
        self.tracer = tracer
        self.segments: Dict[str, _SegmentRuntime] = {
            name: _SegmentRuntime(name, instance.spec)
            for name, instance in platform.segments.items()
        }

    # ------------------------------------------------------------------
    # public interface
    # ------------------------------------------------------------------

    def transfer(
        self,
        source_pe: str,
        target_pe: str,
        size_bytes: int,
        on_complete: Callable[[int], None],
        signal: str = "",
        args: tuple = (),
        on_fault: Optional[Callable[[str, int, tuple], None]] = None,
        payload: Optional[dict] = None,
    ) -> None:
        """Start a transfer; ``on_complete(latency_ps)`` fires on delivery.

        With a fault plan installed, the transfer's fate is decided here
        (keyed off the current kernel clock).  A corrupted or dropped frame
        still occupies the bus normally; at delivery time
        ``on_fault(kind, latency_ps, args)`` fires instead of
        ``on_complete`` — with the bit-flipped payload for a corruption,
        and not at all for a drop when no ``on_fault`` is given.
        """
        path = self.platform.transfer_path(source_pe, target_pe)
        if not path:
            raise SimulationError(
                f"transfer {source_pe!r}->{target_pe!r} needs no bus; deliver "
                "locally instead"
            )
        agents = [source_pe] + path[:-1]
        transfer = _Transfer(
            path=list(path),
            agents=agents,
            size_bytes=size_bytes,
            on_complete=on_complete,
            started_ps=self.kernel.now_ps,
            payload=payload,
        )
        if self.faults is not None:
            kind, fault_args = self.faults.apply_bus_fault(
                signal, tuple(args), source_pe, target_pe, self.kernel.now_ps
            )
            if kind is not None:
                transfer.fault = kind
                transfer.fault_args = fault_args
                transfer.on_fault = on_fault
        self._request_next_hop(transfer)

    def stats(self) -> Dict[str, TransferStats]:
        """Per-segment aggregate transfer statistics (live references)."""
        return {name: runtime.stats for name, runtime in self.segments.items()}

    def utilization(self, end_time_ps: int) -> Dict[str, float]:
        """Fraction of time each segment was occupied."""
        if end_time_ps <= 0:
            return {name: 0.0 for name in self.segments}
        return {
            name: min(1.0, runtime.stats.busy_ps / end_time_ps)
            for name, runtime in self.segments.items()
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _wrapper_between(self, agent: str, segment: str) -> WrapperSpec:
        for wrapper in self.platform.wrappers:
            if wrapper.agent_name == agent and wrapper.segment_name == segment:
                return wrapper.spec
            if wrapper.agent_name == segment and wrapper.segment_name == agent:
                return wrapper.spec
        raise SimulationError(f"no wrapper between {agent!r} and {segment!r}")

    def _request_next_hop(self, transfer: _Transfer) -> None:
        if not transfer.path:
            latency = self.kernel.now_ps - transfer.started_ps
            if transfer.fault is not None:
                if transfer.on_fault is not None:
                    transfer.on_fault(transfer.fault, latency, transfer.fault_args)
                return
            transfer.on_complete(latency)
            return
        segment_name = transfer.path[0]
        agent = transfer.agents[0]
        runtime = self.segments[segment_name]
        wrapper = self._wrapper_between(agent, segment_name)
        transfer.enqueued_ps = self.kernel.now_ps
        runtime.queue.append((wrapper, transfer))
        if self.tracer is not None:
            # wrapper FIFO depth: its high-water mark is the contention metric
            self.tracer.counter(
                "requests",
                bus_track(segment_name),
                {"depth": len(runtime.queue)},
                time_ps=self.kernel.now_ps,
            )
        if not runtime.busy:
            self._grant(runtime)

    def _grant(self, runtime: _SegmentRuntime) -> None:
        if runtime.busy or not runtime.queue:
            return
        index = self._select(runtime)
        wrapper, transfer = runtime.queue.pop(index)
        runtime.busy = True
        runtime.last_served_address = wrapper.address
        occupancy_cycles = self._occupancy_cycles(runtime.spec, wrapper, transfer)
        duration_ps = cycles_to_ps(occupancy_cycles, runtime.spec.frequency_hz)
        runtime.stats.transfers += 1
        runtime.stats.words += runtime.spec.words_for_bytes(transfer.size_bytes)
        runtime.stats.busy_ps += duration_ps
        runtime.stats.wait_ps += self.kernel.now_ps - transfer.enqueued_ps
        if self.tracer is not None:
            args = {
                "bytes": transfer.size_bytes,
                "wait_ps": self.kernel.now_ps - transfer.enqueued_ps,
            }
            if transfer.fault is not None:
                args["fault"] = transfer.fault
            transfer.trace_handle = self.tracer.begin(
                transfer.agents[0] if transfer.agents else "transfer",
                bus_track(runtime.name),
                category="bus",
                time_ps=self.kernel.now_ps,
                **args,
            )
        event = self.kernel.schedule(
            duration_ps, lambda r=runtime, t=transfer: self._release(r, t)
        )
        runtime.active = (transfer, event)

    def _release(self, runtime: _SegmentRuntime, transfer: _Transfer) -> None:
        runtime.busy = False
        runtime.active = None
        if self.tracer is not None and transfer.trace_handle is not None:
            self.tracer.end(transfer.trace_handle, time_ps=self.kernel.now_ps)
            transfer.trace_handle = None
        transfer.path = transfer.path[1:]
        transfer.agents = transfer.agents[1:]
        self._request_next_hop(transfer)
        self._grant(runtime)

    def _select(self, runtime: _SegmentRuntime) -> int:
        """Index into ``runtime.queue`` of the transfer to grant next."""
        if runtime.spec.arbitration == "round-robin":
            best_index = 0
            best_key = None
            for index, (wrapper, _) in enumerate(runtime.queue):
                # distance ahead of the last served address, cyclically
                distance = (wrapper.address - runtime.last_served_address) % (1 << 32)
                if distance == 0:
                    distance = 1 << 32
                key = (distance, index)
                if best_key is None or key < best_key:
                    best_key = key
                    best_index = index
            return best_index
        # priority: lowest PriorityClass wins, FIFO among equals
        best_index = 0
        best_key = None
        for index, (wrapper, _) in enumerate(runtime.queue):
            key = (wrapper.priority_class, index)
            if best_key is None or key < best_key:
                best_key = key
                best_index = index
        return best_index

    # ------------------------------------------------------------------
    # checkpoint/restore protocol
    # ------------------------------------------------------------------

    @staticmethod
    def _transfer_state(transfer: _Transfer) -> dict:
        if transfer.payload is None:
            raise SimulationError(
                "in-flight transfer carries no serializable payload; the "
                "system layer must pass payload= to transfer() for "
                "checkpointing to work"
            )
        return {
            "path": list(transfer.path),
            "agents": list(transfer.agents),
            "size_bytes": transfer.size_bytes,
            "started_ps": transfer.started_ps,
            "enqueued_ps": transfer.enqueued_ps,
            "fault": transfer.fault,
            "fault_args": list(transfer.fault_args),
            "trace_handle": transfer.trace_handle,
            "payload": transfer.payload,
        }

    def _restore_transfer(
        self, data: dict, resolve: Callable[[dict], tuple]
    ) -> _Transfer:
        on_complete, on_fault = resolve(data["payload"])
        return _Transfer(
            path=list(data["path"]),
            agents=list(data["agents"]),
            size_bytes=int(data["size_bytes"]),
            on_complete=on_complete,
            started_ps=int(data["started_ps"]),
            enqueued_ps=int(data["enqueued_ps"]),
            fault=data["fault"],
            fault_args=tuple(data["fault_args"]),
            on_fault=on_fault if data["fault"] is not None else None,
            trace_handle=data["trace_handle"],
            payload=dict(data["payload"]),
        )

    def state_dict(self) -> dict:
        """Per-segment arbiter state, queues, stats and in-flight transfers.

        Transfer callbacks are not serialized — each transfer's ``payload``
        (a JSON-safe description the system layer attached) goes into the
        snapshot instead, and :meth:`load_state_dict` rebuilds the
        callbacks through a resolver.
        """
        segments = {}
        for name in sorted(self.segments):
            runtime = self.segments[name]
            active = None
            if runtime.active is not None:
                transfer, event = runtime.active
                active = {
                    "transfer": self._transfer_state(transfer),
                    "release_ps": event[EV_TIME],
                    "sequence": event[EV_SEQ],
                }
            segments[name] = {
                "busy": runtime.busy,
                "last_served_address": runtime.last_served_address,
                "stats": {
                    "transfers": runtime.stats.transfers,
                    "words": runtime.stats.words,
                    "busy_ps": runtime.stats.busy_ps,
                    "wait_ps": runtime.stats.wait_ps,
                },
                "queue": [
                    self._transfer_state(transfer)
                    for _, transfer in runtime.queue
                ],
                "active": active,
            }
        return {"segments": segments}

    def load_state_dict(
        self, state: dict, resolve: Callable[[dict], tuple]
    ) -> None:
        """Restore a snapshot; ``resolve(payload) -> (on_complete, on_fault)``.

        Queued requests get their wrapper specs re-looked-up from the
        platform; granted transfers re-materialize their pending
        ``_release`` kernel events with the original sequence numbers.
        """
        for runtime in self.segments.values():
            if runtime.busy or runtime.queue:
                raise SimulationError(
                    "load_state_dict needs a fresh bus (transfers already "
                    "in flight)"
                )
        for name, data in state["segments"].items():
            runtime = self.segments.get(name)
            if runtime is None:
                raise SimulationError(
                    f"snapshot references unknown bus segment {name!r}"
                )
            runtime.busy = bool(data["busy"])
            runtime.last_served_address = int(data["last_served_address"])
            stats = data["stats"]
            runtime.stats = TransferStats(
                transfers=int(stats["transfers"]),
                words=int(stats["words"]),
                busy_ps=int(stats["busy_ps"]),
                wait_ps=int(stats["wait_ps"]),
            )
            for transfer_data in data["queue"]:
                transfer = self._restore_transfer(transfer_data, resolve)
                wrapper = self._wrapper_between(
                    transfer.agents[0], transfer.path[0]
                )
                runtime.queue.append((wrapper, transfer))
            if data["active"] is not None:
                transfer = self._restore_transfer(
                    data["active"]["transfer"], resolve
                )
                event = self.kernel.restore_event(
                    int(data["active"]["release_ps"]),
                    int(data["active"]["sequence"]),
                    lambda r=runtime, t=transfer: self._release(r, t),
                )
                runtime.active = (transfer, event)

    def _occupancy_cycles(
        self, spec: SegmentSpec, wrapper: WrapperSpec, transfer: _Transfer
    ) -> int:
        transfer_cycles = spec.transfer_cycles(transfer.size_bytes)
        chunks = 1
        if wrapper.max_reservation_cycles > 0:
            chunks = -(-transfer_cycles // wrapper.max_reservation_cycles)
        return transfer_cycles + chunks * spec.arbitration_cycles
