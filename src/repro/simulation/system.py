"""Full-system simulation: application × platform × mapping → log-file.

This is the executable stand-in for the paper's "Simulation" box in
Figure 2: application processes run as EFSMs on their mapped processing
elements (non-preemptive priority scheduling per PE), signals between PEs
cross the HIBI bus model, and everything is recorded in the simulation
log-file the profiling tool consumes.

Environment (testbench) processes execute outside the platform with zero
cycle cost — the paper's Table 4 reports the Environment row at 0 cycles.
"""

from __future__ import annotations


from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.application.model import ApplicationModel
from repro.mapping.model import MappingModel
from repro.observability.tracer import SYSTEM_TRACK, Tracer, pe_track
from repro.platform.model import PlatformModel
from repro.simulation.bus import HibiBus, TransferStats
from repro.simulation.executor import ProcessExecutor, SendIntent, StepOutcome
from repro.simulation.kernel import (
    EV_CALLBACK,
    EV_SEQ,
    EV_TIME,
    PS_PER_US,
    cycles_to_ps,
    event_pending,
    select_backend,
)
from repro.simulation.logfile import (
    LogFile,
    LogWriter,
    TRANSPORT_BUS,
    TRANSPORT_ENV,
    TRANSPORT_LOCAL,
    parse_log,
)
from repro.simulation.timing import CostModel, timer_duration_ps

ENVIRONMENT_PE = "-"


def _noop() -> None:
    """Placeholder callback replaced right after scheduling (see
    :meth:`SystemSimulation._schedule_deliver`)."""


@dataclass
class _Activation:
    """A pending reason to run a process: start, signal, or timer."""

    kind: str  # 'start' | 'signal' | 'timer'
    process: str
    signal: str = ""
    args: Tuple[int, ...] = ()
    timer: str = ""
    sender: str = ""
    sent_ps: int = 0
    transport: str = TRANSPORT_LOCAL
    bytes: int = 0
    corrupt: bool = False  # payload was bit-corrupted in transit

    def describe(self) -> str:
        """Human-readable trigger label used in log and trace records."""
        if self.kind == "signal":
            return self.signal
        if self.kind == "timer":
            return f"timer:{self.timer}"
        return "start"

    def to_dict(self) -> dict:
        """JSON-safe form for checkpoint snapshots."""
        return {
            "kind": self.kind,
            "process": self.process,
            "signal": self.signal,
            "args": list(self.args),
            "timer": self.timer,
            "sender": self.sender,
            "sent_ps": self.sent_ps,
            "transport": self.transport,
            "bytes": self.bytes,
            "corrupt": self.corrupt,
        }

    @staticmethod
    def from_dict(data: dict) -> "_Activation":
        """Rebuild an activation from :meth:`to_dict` output."""
        return _Activation(
            kind=data["kind"],
            process=data["process"],
            signal=data["signal"],
            args=tuple(data["args"]),
            timer=data["timer"],
            sender=data["sender"],
            sent_ps=int(data["sent_ps"]),
            transport=data["transport"],
            bytes=int(data["bytes"]),
            corrupt=bool(data["corrupt"]),
        )


class _PERuntime:
    """Non-preemptive scheduler for one processing element.

    The ready-queue policy comes from the PE's «PlatformRtos» stereotype
    (paper future work): ``priority`` (default), ``fifo``, or
    ``round-robin`` over the mapped processes.  ``dispatch_overhead``
    cycles are charged per step when an RTOS is configured.
    """

    def __init__(
        self,
        name: str,
        cost_model: CostModel,
        policy: str = "priority",
        dispatch_overhead_cycles: int = 0,
        tick_period_us: int = 0,
    ) -> None:
        self.name = name
        self.cost_model = cost_model
        self.policy = policy
        self.dispatch_overhead_cycles = dispatch_overhead_cycles
        self.tick_period_us = tick_period_us
        self.ready: List[tuple] = []  # (seq, priority, activation)
        self.busy = False
        self.busy_ps = 0
        self.last_process: Optional[str] = None
        self._seq = 0
        # the in-flight step while busy, for checkpointing:
        # (activation, outcome, cycles, started_ps, completion event)
        self.active_step: Optional[tuple] = None

    def enqueue(self, activation: _Activation, priority: int) -> None:
        """Add an activation to the ready queue (insertion order preserved)."""
        self._seq += 1
        self.ready.append((self._seq, priority, activation))

    def pop(self) -> Optional[_Activation]:
        """Remove and return the next activation per the queue policy."""
        if not self.ready:
            return None
        if self.policy == "fifo":
            index = min(range(len(self.ready)), key=lambda i: self.ready[i][0])
        elif self.policy == "round-robin":
            index = self._round_robin_index()
        else:  # priority: highest priority, FIFO among equals
            index = min(
                range(len(self.ready)),
                key=lambda i: (-self.ready[i][1], self.ready[i][0]),
            )
        return self.ready.pop(index)[2]

    def _round_robin_index(self) -> int:
        """The earliest entry of the 'next' process after the last served."""
        names = sorted({entry[2].process for entry in self.ready})
        if self.last_process is not None:
            after = [n for n in names if n > self.last_process]
            next_name = after[0] if after else names[0]
        else:
            next_name = names[0]
        candidates = [
            (entry[0], i)
            for i, entry in enumerate(self.ready)
            if entry[2].process == next_name
        ]
        return min(candidates)[1]


@dataclass
class SimulationResult:
    """Everything a simulation run produced."""

    writer: LogWriter
    end_time_ps: int
    dispatched_events: int
    pe_busy_ps: Dict[str, int]
    bus_stats: Dict[str, TransferStats]
    dropped_signals: int
    fault_stats: Optional[object] = None  # repro.faults.FaultStats when injecting
    trace: Optional[Tracer] = None        # the run's tracer when tracing was on
    _parsed: Optional[LogFile] = field(default=None, repr=False)

    @property
    def log(self) -> LogFile:
        """The run's log, parsed lazily from the writer's rendering."""
        if self._parsed is None:
            self._parsed = parse_log(self.writer.render())
        return self._parsed

    def pe_utilization(self) -> Dict[str, float]:
        """Busy fraction of the simulated interval, per processing element."""
        if self.end_time_ps <= 0:
            return {pe: 0.0 for pe in self.pe_busy_ps}
        return {
            pe: min(1.0, busy / self.end_time_ps)
            for pe, busy in self.pe_busy_ps.items()
        }

    def total_cycles(self) -> int:
        """Total PE clock cycles charged across all logged steps."""
        return sum(self.log.cycles_by_process().values())


class SystemSimulation:
    """Executes an application mapped onto a platform."""

    def __init__(
        self,
        application: ApplicationModel,
        platform: PlatformModel,
        mapping: MappingModel,
        max_events: int = 5_000_000,
        faults=None,
        tracer: Optional[Tracer] = None,
        kernel_backend: Optional[str] = None,
    ) -> None:
        mapping.check_complete()
        self.application = application
        self.platform = platform
        self.mapping = mapping
        # The tracer mirrors the faults pattern: every hook sits behind a
        # None check, so an untraced run is byte-identical (log and all)
        # to the pre-observability simulator.
        self.tracer = tracer
        # kernel_backend=None defers to REPRO_KERNEL_BACKEND / "auto";
        # every backend honours the same ordering and checkpoint
        # contract, so the choice never changes simulation output
        kernel_cls = select_backend(kernel_backend)
        self.kernel = kernel_cls(max_events=max_events, tracer=tracer)
        if tracer is not None:
            tracer.bind_clock(lambda: self.kernel.now_ps)
        # A disabled plan (all rates zero, no windows) is treated exactly
        # like no plan: every fault hook stays behind a None check, so the
        # fault-free simulation is bit-identical to the pre-fault simulator.
        self.faults = faults if faults is not None and faults.enabled else None
        self.bus = HibiBus(
            platform, self.kernel, faults=self.faults, tracer=tracer
        )
        self.writer = LogWriter(
            meta={
                "application": application.top.name,
                "platform": platform.top.name,
            }
        )
        self.pe_runtimes: Dict[str, _PERuntime] = {
            name: _PERuntime(
                name,
                CostModel(instance.spec),
                policy=instance.scheduling_policy(),
                dispatch_overhead_cycles=instance.dispatch_overhead_cycles(),
                tick_period_us=instance.tick_period_us(),
            )
            for name, instance in platform.processing_elements.items()
        }
        self.executors: Dict[str, ProcessExecutor] = {}
        self.pe_of_process: Dict[str, Optional[str]] = {}
        for name, process in application.processes.items():
            self.executors[name] = ProcessExecutor(
                name, process.behavior, tracer=tracer
            )
            if process.is_environment:
                self.pe_of_process[name] = None
            else:
                pe_name = mapping.pe_of_process(name)
                if pe_name is None:
                    raise SimulationError(
                        f"process {name!r} has no platform mapping"
                    )
                self.pe_of_process[name] = pe_name
        self.timers: Dict[Tuple[str, str], object] = {}
        self.dropped = 0
        self._started = False
        self._restored = False
        # pending signal/start deliveries keyed by their kernel event
        # sequence; entries are removed when the event fires, so at any
        # quiescent instant this is exactly the set of in-flight deliveries
        # a checkpoint must re-materialize
        self._pending_deliveries: Dict[int, tuple] = {}

    # ------------------------------------------------------------------
    # run
    # ------------------------------------------------------------------

    def run(self, duration_us: int) -> SimulationResult:
        """Run for ``duration_us`` microseconds of simulated time.

        After :meth:`load_state_dict` the run continues from the restored
        clock; the ``duration_us`` horizon is absolute simulated time, so
        a resumed run passes the *same* duration as the original."""
        if self._started:
            raise SimulationError("a SystemSimulation instance runs only once")
        self._started = True
        if not self._restored:
            # canonical start order (name-sorted): the same design produces
            # the same log regardless of model construction or reload order
            for name in sorted(self.application.processes):
                activation = _Activation(kind="start", process=name)
                self._schedule_deliver(0, activation)
        self.kernel.run(until_ps=duration_us * PS_PER_US)
        end = self.kernel.now_ps
        self.writer.finish(end)
        fault_stats = None
        if self.faults is not None:
            fault_stats = self.faults.stats
            self.writer.meta.update(fault_stats.as_meta(self.faults.seed))
        return SimulationResult(
            writer=self.writer,
            end_time_ps=end,
            # the kernel's lifetime counter survives checkpoint/restore, so
            # a resumed run reports the same total as an uninterrupted one
            dispatched_events=self.kernel.dispatched,
            pe_busy_ps={n: r.busy_ps for n, r in self.pe_runtimes.items()},
            bus_stats=self.bus.stats(),
            dropped_signals=self.dropped,
            fault_stats=fault_stats,
            trace=self.tracer,
        )

    # ------------------------------------------------------------------
    # activation delivery and execution
    # ------------------------------------------------------------------

    def _schedule_deliver(self, delay_ps: int, activation: _Activation) -> None:
        """Schedule a delivery and register it for checkpointing.

        The registry entry is keyed by the event's sequence number and
        removed when the event fires, so the registry always holds exactly
        the in-flight deliveries a snapshot must capture."""
        event = self.kernel.schedule(delay_ps, _noop)
        sequence = event[EV_SEQ]
        event[EV_CALLBACK] = (
            lambda a=activation, s=sequence: self._fire_delivery(a, s)
        )
        self._pending_deliveries[sequence] = (activation, event)

    def _fire_delivery(self, activation: _Activation, sequence: int) -> None:
        self._pending_deliveries.pop(sequence, None)
        self._deliver(activation)

    def _deliver(self, activation: _Activation) -> None:
        """An activation arrives at its process (kernel time = arrival)."""
        pe_name = self.pe_of_process[activation.process]
        if (
            self.faults is not None
            and pe_name is not None
            and self.faults.pe_crashed(pe_name, self.kernel.now_ps)
        ):
            # the PE is inside a crash window: the activation is lost
            self.writer.fault(
                time_ps=self.kernel.now_ps,
                kind="pe-crash",
                signal=activation.describe(),
                source=pe_name,
                target=activation.process,
            )
            self.dropped += 1
            self.writer.drop(
                time_ps=self.kernel.now_ps,
                process=activation.process,
                signal=activation.describe(),
                reason="pe-crash",
            )
            if self.tracer is not None:
                self.tracer.instant(
                    "pe-crash",
                    pe_track(pe_name),
                    category="fault",
                    signal=activation.describe(),
                    process=activation.process,
                )
                self._trace_drop(activation, "pe-crash")
            return
        if activation.kind == "signal":
            self.writer.signal(
                time_ps=self.kernel.now_ps,
                signal=activation.signal,
                sender=activation.sender,
                receiver=activation.process,
                bytes=activation.bytes,
                latency_ps=self.kernel.now_ps - activation.sent_ps,
                transport=activation.transport,
                corrupt=1 if activation.corrupt else 0,
            )
            if self.faults is not None and not activation.corrupt:
                # a clean delivery may repair an earlier tracked loss
                self.faults.note_delivery(activation.signal, activation.args)
            if self.tracer is not None:
                self.tracer.instant(
                    activation.signal,
                    SYSTEM_TRACK,
                    category="signal",
                    sender=activation.sender,
                    receiver=activation.process,
                    latency_ps=self.kernel.now_ps - activation.sent_ps,
                    transport=activation.transport,
                    bytes=activation.bytes,
                    corrupt=1 if activation.corrupt else 0,
                )
        if pe_name is None:
            self._run_environment_step(activation)
            return
        runtime = self.pe_runtimes[pe_name]
        priority = self.application.find_process(activation.process).priority()
        runtime.enqueue(activation, priority)
        if self.tracer is not None:
            # ready-queue depth sample: its high-water mark feeds metrics
            self.tracer.counter(
                "ready", pe_track(pe_name), {"depth": len(runtime.ready)}
            )
        if not runtime.busy:
            self._start_next(runtime)

    def _trace_drop(self, activation: _Activation, reason: str) -> None:
        """Mirror a DROP log record as a trace instant (tracing only)."""
        self.tracer.instant(
            activation.describe(),
            SYSTEM_TRACK,
            category="drop",
            process=activation.process,
            reason=reason,
        )

    def _start_next(self, runtime: _PERuntime) -> None:
        """Pop ready activations until one fires a step or the queue drains."""
        while not runtime.busy:
            activation = runtime.pop()
            if activation is None:
                return
            executor = self.executors[activation.process]
            if executor.terminated:
                continue
            outcome, reason = self._execute(executor, activation)
            if outcome is None:
                self.dropped += 1
                self.writer.drop(
                    time_ps=self.kernel.now_ps,
                    process=activation.process,
                    signal=activation.describe(),
                    reason=reason or "no-transition",
                )
                if self.tracer is not None:
                    self._trace_drop(activation, reason or "no-transition")
                continue
            process = self.application.find_process(activation.process)
            cost = runtime.cost_model.step_cost(
                process_type=process.process_type(),
                statements=outcome.statements,
                guards_evaluated=outcome.guards_evaluated,
                sends=len(outcome.sends),
                context_switch=(
                    runtime.last_process is not None
                    and runtime.last_process != activation.process
                ),
            )
            cycles = cost.cycles + runtime.dispatch_overhead_cycles
            duration_ps = cost.duration_ps + cycles_to_ps(
                runtime.dispatch_overhead_cycles,
                runtime.cost_model.spec.frequency_hz,
            )
            if self.faults is not None:
                stalled_ps = self.faults.stall_duration_ps(
                    runtime.name, self.kernel.now_ps, duration_ps
                )
                if stalled_ps != duration_ps:
                    self.writer.fault(
                        time_ps=self.kernel.now_ps,
                        kind="pe-stall",
                        signal=activation.describe(),
                        source=runtime.name,
                        target=activation.process,
                    )
                    if self.tracer is not None:
                        self.tracer.instant(
                            "pe-stall",
                            pe_track(runtime.name),
                            category="fault",
                            process=activation.process,
                            extra_ps=stalled_ps - duration_ps,
                        )
                    duration_ps = stalled_ps
            runtime.busy = True
            runtime.last_process = activation.process
            started_ps = self.kernel.now_ps
            event = self.kernel.schedule(
                duration_ps,
                lambda r=runtime, a=activation, o=outcome, c=cycles, s=started_ps: (
                    self._complete_step(r, a, o, c, s)
                ),
            )
            runtime.active_step = (activation, outcome, cycles, started_ps, event)
            return

    def _execute(self, executor: ProcessExecutor, activation: _Activation):
        if activation.kind == "start":
            return executor.start(), None
        if activation.kind == "signal":
            return executor.consume_signal(activation.signal, activation.args)
        if activation.kind == "timer":
            self.timers.pop((activation.process, activation.timer), None)
            return executor.fire_timer(activation.timer)
        raise SimulationError(f"unknown activation kind {activation.kind!r}")

    def _complete_step(
        self,
        runtime: _PERuntime,
        activation: _Activation,
        outcome: StepOutcome,
        cycles: int,
        started_ps: int,
    ) -> None:
        runtime.busy = False
        runtime.active_step = None
        # accrue busy time at completion so it equals the sum of logged
        # step durations exactly (steps in flight at the horizon are not
        # logged and not counted)
        runtime.busy_ps += self.kernel.now_ps - started_ps
        self.writer.exec_step(
            time_ps=started_ps,
            process=activation.process,
            pe=runtime.name,
            cycles=cycles,
            duration_ps=self.kernel.now_ps - started_ps,
            from_state=outcome.from_state,
            to_state=outcome.to_state,
            trigger=activation.describe(),
        )
        if self.tracer is not None:
            self.tracer.span(
                activation.process,
                pe_track(runtime.name),
                start_ps=started_ps,
                duration_ps=self.kernel.now_ps - started_ps,
                category="exec",
                from_state=outcome.from_state,
                to_state=outcome.to_state,
                trigger=activation.describe(),
                cycles=cycles,
            )
        self._apply_outcome(activation.process, outcome)
        self._start_next(runtime)

    def _run_environment_step(self, activation: _Activation) -> None:
        """Environment processes execute instantly at zero cycle cost."""
        executor = self.executors[activation.process]
        if executor.terminated:
            return
        outcome, reason = self._execute(executor, activation)
        if outcome is None:
            self.dropped += 1
            self.writer.drop(
                time_ps=self.kernel.now_ps,
                process=activation.process,
                signal=activation.describe(),
                reason=reason or "no-transition",
            )
            if self.tracer is not None:
                self._trace_drop(activation, reason or "no-transition")
            return
        self.writer.exec_step(
            time_ps=self.kernel.now_ps,
            process=activation.process,
            pe=ENVIRONMENT_PE,
            cycles=0,
            duration_ps=0,
            from_state=outcome.from_state,
            to_state=outcome.to_state,
            trigger=activation.describe(),
        )
        self._apply_outcome(activation.process, outcome)

    # ------------------------------------------------------------------
    # outcome side effects: timers and sends
    # ------------------------------------------------------------------

    def _apply_outcome(self, process_name: str, outcome: StepOutcome) -> None:
        # timer operations replay in program order: a reset after a set
        # cancels it, a second set re-arms (replacing the first)
        for operation, timer_name, duration_us in outcome.timer_ops:
            key = (process_name, timer_name)
            previous = self.timers.pop(key, None)
            if previous is not None:
                self.kernel.cancel(previous)
            if operation == "set":
                activation = _Activation(
                    kind="timer", process=process_name, timer=timer_name
                )
                delay_ps = timer_duration_ps(duration_us)
                pe_name = self.pe_of_process.get(process_name)
                if pe_name is not None:
                    tick_us = self.pe_runtimes[pe_name].tick_period_us
                    if tick_us > 0:
                        # RTOS tick bounds timer resolution: round up
                        tick_ps = timer_duration_ps(tick_us)
                        delay_ps = -(-delay_ps // tick_ps) * tick_ps
                self.timers[key] = self.kernel.schedule(
                    delay_ps,
                    lambda a=activation: self._deliver(a),
                )
        for intent in outcome.sends:
            self._dispatch_send(process_name, intent)

    def _dispatch_send(self, sender: str, intent: SendIntent) -> None:
        receiver, _port = self.application.route(sender, intent.signal, intent.via)
        signal = self.application.find_signal(intent.signal)
        size = signal.size_bytes()
        sender_pe = self.pe_of_process[sender]
        receiver_pe = self.pe_of_process[receiver]
        if self.tracer is not None:
            self.tracer.instant(
                intent.signal,
                SYSTEM_TRACK,
                category="dispatch",
                sender=sender,
                receiver=receiver,
            )
        deliveries = 1
        if self.faults is not None:
            fault = self.faults.apply_dispatch_fault(
                intent.signal, intent.args, sender, receiver, self.kernel.now_ps
            )
            if fault is not None:
                self.writer.fault(
                    time_ps=self.kernel.now_ps,
                    kind=fault,
                    signal=intent.signal,
                    source=sender,
                    target=receiver,
                )
                if self.tracer is not None:
                    self.tracer.instant(
                        fault,
                        SYSTEM_TRACK,
                        category="fault",
                        signal=intent.signal,
                        source=sender,
                        target=receiver,
                    )
                if fault == "signal-drop":
                    return  # the signal is lost before any transport
                deliveries = 2  # signal-dup: delivered twice, independently
        for _ in range(deliveries):
            activation = _Activation(
                kind="signal",
                process=receiver,
                signal=intent.signal,
                args=intent.args,
                sender=sender,
                sent_ps=self.kernel.now_ps,
                bytes=size,
            )
            self._transport(activation, sender_pe, receiver_pe)

    def _transport(
        self,
        activation: _Activation,
        sender_pe: Optional[str],
        receiver_pe: Optional[str],
    ) -> None:
        if sender_pe is None or receiver_pe is None:
            # Environment boundary: no platform transport involved.
            activation.transport = TRANSPORT_ENV
            self._schedule_deliver(0, activation)
        elif sender_pe == receiver_pe:
            activation.transport = TRANSPORT_LOCAL
            self._schedule_deliver(
                self._receive_delay_ps(receiver_pe), activation
            )
        else:
            # Bus transport pays the wire latency plus the same receive
            # cost a local delivery pays (wrapper -> CPU hand-off).
            activation.transport = TRANSPORT_BUS
            on_fault = None
            if self.faults is not None:
                on_fault = (
                    lambda kind, _latency, args, a=activation, pe=receiver_pe: (
                        self._bus_fault(kind, args, a, pe)
                    )
                )
            self.bus.transfer(
                sender_pe,
                receiver_pe,
                activation.bytes,
                lambda _latency, a=activation, pe=receiver_pe: (
                    self._schedule_deliver(self._receive_delay_ps(pe), a)
                ),
                signal=activation.signal,
                args=activation.args,
                on_fault=on_fault,
                # snapshot description: enough to rebuild both callbacks
                payload={
                    "activation": activation.to_dict(),
                    "receiver_pe": receiver_pe,
                },
            )

    def _bus_fault(
        self,
        kind: str,
        args: Tuple[int, ...],
        activation: _Activation,
        receiver_pe: str,
    ) -> None:
        """A bus transfer resolved with an injected fault (at delivery time)."""
        self.writer.fault(
            time_ps=self.kernel.now_ps,
            kind=kind,
            signal=activation.signal,
            source=activation.sender,
            target=activation.process,
        )
        if self.tracer is not None:
            self.tracer.instant(
                kind,
                SYSTEM_TRACK,
                category="fault",
                signal=activation.signal,
                source=activation.sender,
                target=activation.process,
            )
        if kind == "bus-drop":
            return  # the frame is gone; only an ARQ timeout can notice
        # bus-corrupt: the frame arrives with a flipped payload bit — the
        # receiver's CRC check is responsible for catching it
        activation.args = tuple(args)
        activation.corrupt = True
        self._schedule_deliver(self._receive_delay_ps(receiver_pe), activation)

    def _receive_delay_ps(self, pe_name: str) -> int:
        runtime = self.pe_runtimes[pe_name]
        return cycles_to_ps(
            runtime.cost_model.receive_cost_cycles(),
            runtime.cost_model.spec.frequency_hz,
        )

    # ------------------------------------------------------------------
    # checkpoint/restore protocol
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """The full simulation state as a JSON-safe dict.

        Callable only at a quiescent instant (between kernel dispatches —
        the :attr:`Kernel.after_event` hook, which is where the checkpoint
        subsystem calls it from).  Pending kernel events are not serialized
        as callbacks; each owner records what its events would do and
        :meth:`load_state_dict` re-materializes them with their original
        sequence numbers, so a resumed run replays byte-identically.
        """
        runtimes = {}
        for name in sorted(self.pe_runtimes):
            runtime = self.pe_runtimes[name]
            active = None
            if runtime.active_step is not None:
                activation, outcome, cycles, started_ps, event = (
                    runtime.active_step
                )
                active = {
                    "activation": activation.to_dict(),
                    "outcome": outcome.to_dict(),
                    "cycles": cycles,
                    "started_ps": started_ps,
                    "time_ps": event[EV_TIME],
                    "sequence": event[EV_SEQ],
                }
            runtimes[name] = {
                "ready": [
                    [seq, priority, activation.to_dict()]
                    for seq, priority, activation in runtime.ready
                ],
                "busy": runtime.busy,
                "busy_ps": runtime.busy_ps,
                "last_process": runtime.last_process,
                "seq": runtime._seq,
                "active_step": active,
            }
        return {
            "kernel": self.kernel.state_dict(),
            "dropped": self.dropped,
            "executors": {
                name: self.executors[name].state_dict()
                for name in sorted(self.executors)
            },
            "runtimes": runtimes,
            "timers": [
                {
                    "process": process,
                    "timer": timer,
                    "time_ps": event[EV_TIME],
                    "sequence": event[EV_SEQ],
                }
                for (process, timer), event in sorted(self.timers.items())
                if event_pending(event)
            ],
            "deliveries": [
                {
                    "sequence": sequence,
                    "time_ps": event[EV_TIME],
                    "activation": activation.to_dict(),
                }
                for sequence, (activation, event) in sorted(
                    self._pending_deliveries.items()
                )
                if event_pending(event)
            ],
            "bus": self.bus.state_dict(),
            "writer": self.writer.state_dict(),
            "faults": (
                self.faults.state_dict() if self.faults is not None else None
            ),
            "tracer": (
                self.tracer.state_dict() if self.tracer is not None else None
            ),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot onto this freshly-constructed simulation.

        The simulation must have been built from the *same* application,
        platform, mapping and configuration (tracer on/off, fault seed) as
        the one that produced the snapshot; mismatches raise
        :class:`SimulationError`.  After restoring, call :meth:`run` with
        the original duration to continue the run."""
        if self._started:
            raise SimulationError(
                "load_state_dict needs a fresh simulation (already run)"
            )
        if (state["tracer"] is not None) != (self.tracer is not None):
            raise SimulationError(
                "snapshot/simulation tracer mismatch: both or neither must "
                "have tracing enabled"
            )
        if (state["faults"] is not None) != (self.faults is not None):
            raise SimulationError(
                "snapshot/simulation fault-plan mismatch: both or neither "
                "must have fault injection enabled"
            )
        self.kernel.load_state_dict(state["kernel"])
        self.dropped = int(state["dropped"])
        for name, executor_state in state["executors"].items():
            executor = self.executors.get(name)
            if executor is None:
                raise SimulationError(
                    f"snapshot references unknown process {name!r}"
                )
            executor.load_state_dict(executor_state)
        for name, runtime_state in state["runtimes"].items():
            runtime = self.pe_runtimes.get(name)
            if runtime is None:
                raise SimulationError(
                    f"snapshot references unknown processing element {name!r}"
                )
            runtime.ready = [
                (seq, priority, _Activation.from_dict(activation))
                for seq, priority, activation in runtime_state["ready"]
            ]
            runtime.busy = bool(runtime_state["busy"])
            runtime.busy_ps = int(runtime_state["busy_ps"])
            runtime.last_process = runtime_state["last_process"]
            runtime._seq = int(runtime_state["seq"])
            step = runtime_state["active_step"]
            if step is not None:
                activation = _Activation.from_dict(step["activation"])
                outcome = StepOutcome.from_dict(step["outcome"])
                cycles = int(step["cycles"])
                started_ps = int(step["started_ps"])
                event = self.kernel.restore_event(
                    int(step["time_ps"]),
                    int(step["sequence"]),
                    lambda r=runtime, a=activation, o=outcome, c=cycles, s=started_ps: (
                        self._complete_step(r, a, o, c, s)
                    ),
                )
                runtime.active_step = (
                    activation, outcome, cycles, started_ps, event,
                )
        for entry in state["timers"]:
            activation = _Activation(
                kind="timer", process=entry["process"], timer=entry["timer"]
            )
            event = self.kernel.restore_event(
                int(entry["time_ps"]),
                int(entry["sequence"]),
                lambda a=activation: self._deliver(a),
            )
            self.timers[(entry["process"], entry["timer"])] = event
        for entry in state["deliveries"]:
            activation = _Activation.from_dict(entry["activation"])
            sequence = int(entry["sequence"])
            event = self.kernel.restore_event(
                int(entry["time_ps"]),
                sequence,
                lambda a=activation, s=sequence: self._fire_delivery(a, s),
            )
            self._pending_deliveries[sequence] = (activation, event)
        self.bus.load_state_dict(state["bus"], self._resolve_bus_payload)
        self.writer.load_state_dict(state["writer"])
        if self.faults is not None:
            self.faults.load_state_dict(state["faults"])
        if self.tracer is not None:
            self.tracer.load_state_dict(state["tracer"])
        self._restored = True

    def _resolve_bus_payload(self, payload: dict) -> tuple:
        """Rebuild an in-flight transfer's callbacks from its payload."""
        activation = _Activation.from_dict(payload["activation"])
        receiver_pe = payload["receiver_pe"]
        on_complete = lambda _latency, a=activation, pe=receiver_pe: (
            self._schedule_deliver(self._receive_delay_ps(pe), a)
        )
        on_fault = lambda kind, _latency, args, a=activation, pe=receiver_pe: (
            self._bus_fault(kind, args, a, pe)
        )
        return on_complete, on_fault
