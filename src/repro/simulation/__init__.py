"""Discrete-event simulation of TUT-Profile systems.

The simulator plays the role of the paper's verification/simulation stage
(Figure 2): it executes application EFSMs on the mapped platform (or on a
workstation reference PE) and produces the simulation log-file consumed by
the profiling tool.
"""

from repro.simulation.kernel import (
    HeapKernel,
    Kernel,
    PS_PER_MS,
    PS_PER_US,
    QUEUE_DEPTH_COUNTER,
    cycles_to_ps,
    event_pending,
    select_backend,
)
from repro.simulation.logfile import (
    DropRecord,
    ExecRecord,
    FaultRecord,
    LogFile,
    LogWriter,
    SignalRecord,
    TRANSPORT_BUS,
    TRANSPORT_ENV,
    TRANSPORT_LOCAL,
    parse_log,
    read_log,
)
from repro.simulation.timing import (
    CostModel,
    StepCost,
    WORKSTATION_SPEC,
    timer_duration_ps,
)
from repro.simulation.executor import ProcessExecutor, SendIntent, StepOutcome
from repro.simulation.bus import HibiBus, TransferStats
from repro.simulation.system import SimulationResult, SystemSimulation
from repro.simulation.reference import (
    REFERENCE_PE,
    build_reference_mapping,
    build_reference_platform,
    run_reference_simulation,
)

__all__ = [
    "CostModel",
    "DropRecord",
    "ExecRecord",
    "FaultRecord",
    "HeapKernel",
    "HibiBus",
    "Kernel",
    "LogFile",
    "LogWriter",
    "PS_PER_MS",
    "PS_PER_US",
    "ProcessExecutor",
    "QUEUE_DEPTH_COUNTER",
    "REFERENCE_PE",
    "SendIntent",
    "SignalRecord",
    "SimulationResult",
    "StepCost",
    "StepOutcome",
    "SystemSimulation",
    "TRANSPORT_BUS",
    "TRANSPORT_ENV",
    "TRANSPORT_LOCAL",
    "TransferStats",
    "WORKSTATION_SPEC",
    "build_reference_mapping",
    "build_reference_platform",
    "cycles_to_ps",
    "event_pending",
    "parse_log",
    "read_log",
    "run_reference_simulation",
    "select_backend",
    "timer_duration_ps",
]
