"""Platform-aware mapping lint (rules M001-M005) and the static estimator.

The paper's Figure 2 closes the PSM loop by hand: a designer reads the
profiling report and re-groups/re-maps.  This pass checks the mapping
view *before* any simulation: completeness (M001), statically
overcommitted PEs (M002), chatty group pairs split across HIBI segments
(M003), bridge saturation (M004) and contradictory «PlatformMapping»
dependencies (M005).

The numbers behind M002-M004 come from :func:`static_application_profile`
(per-group statement weights plus the directed group-to-group traffic
matrix priced in wire bytes) and :func:`static_mapping_estimate`, which
scores one assignment without simulating: computation seconds per PE from
``cycles_per_statement``/``frequency_hz``, communication bytes weighted
by segment hop count, and a scalar ``cost`` shaped like the exploration
objective (bytes + 1000 * max PE share).  The exploration engine reuses
exactly this estimate as its pre-simulation pruning oracle
(``run_candidates(prune_static=...)``), so the lint rules and the pruner
can never disagree about what "expensive" means.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.core import Finding, LintContext, register_rule
from repro.analysis.efsm import machine_blocks
from repro.analysis.sigflow import signal_flow_matrix
from repro.application.model import ENVIRONMENT_GROUP
from repro.tutprofile.tags import process_runs_on
from repro.uml.actions import walk_statements
from repro.uml.classifier import Signal
from repro.uml.dependency import Dependency
from repro.tutprofile import PLATFORM_MAPPING

register_rule(
    "M001",
    "unmapped-or-dangling-group",
    "error",
    "A process group with members has no «PlatformMapping» dependency (the "
    "flow cannot place its processes), a non-environment process belongs to "
    "no group, or a mapping points at an empty group — the lint-grade twin "
    "of MappingModel.check_complete().",
)
register_rule(
    "M002",
    "pe-overcommitted",
    "warning",
    "The static load estimate concentrates almost all computation on one "
    "PE while other compatible PEs sit idle, so the mapping wastes the "
    "platform's parallelism before any simulation is run.",
)
register_rule(
    "M003",
    "chatty-pair-split",
    "warning",
    "Two process groups that exchange a dominant share of the static "
    "traffic are mapped to PEs on disjoint HIBI segments, so their "
    "conversation pays bridge latency on every signal.",
)
register_rule(
    "M004",
    "bridge-saturated",
    "warning",
    "The static signal-flow matrix routes a dominant share of all "
    "inter-PE bytes across a bridge segment, making the bridge the "
    "bottleneck of the whole interconnect.",
)
register_rule(
    "M005",
    "fixed-mapping-contradiction",
    "error",
    "The «PlatformMapping» dependencies contradict each other or the type "
    "system: duplicate mappings for one group, or a Fixed mapping whose "
    "process type cannot execute on the target PE.",
)

#: M002 fires when one PE's static load share exceeds this and at least one
#: other compatible PE carries (almost) nothing.
OVERCOMMIT_SHARE = 0.90

#: M003 fires when a split pair carries at least this share of all
#: cross-group traffic bytes.
CHATTY_PAIR_SHARE = 0.35

#: M004 fires when bridge-crossing bytes are at least this share of all
#: inter-PE bytes.
BRIDGE_SATURATION_SHARE = 0.60


# ---------------------------------------------------------------------------
# Static profile + estimator (exploration's pruning oracle)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StaticProfile:
    """What the estimator needs from an application, computed once.

    ``statement_weight`` counts action-language statements per group (a
    static stand-in for computation volume); ``pair_bytes`` prices the
    directed group-to-group signal flow in wire bytes (send sites times
    :meth:`Signal.size_bytes`).
    """

    statement_weight: Dict[str, int]
    group_types: Dict[str, str]
    pair_bytes: Dict[Tuple[str, str], int]

    def total_pair_bytes(self) -> int:
        return sum(self.pair_bytes.values())


@dataclass
class StaticEstimate:
    """One assignment scored without simulation."""

    cost: float
    pe_seconds: Dict[str, float]
    max_share: float
    cross_bytes: int
    bridge_bytes: int
    infeasible: Optional[str] = None

    def to_json_dict(self) -> dict:
        payload = {
            "cost": round(self.cost, 6),
            "max_share": round(self.max_share, 6),
            "cross_bytes": self.cross_bytes,
            "bridge_bytes": self.bridge_bytes,
        }
        if self.infeasible is not None:
            payload["infeasible"] = self.infeasible
        return payload


def _signal_bytes(application, signal_name: str) -> int:
    declared = application.signals.get(signal_name)
    if declared is None:
        return Signal.HEADER_BITS // 8
    return declared.size_bytes()


def static_application_profile(application) -> StaticProfile:
    """Group statement weights and the directed group traffic matrix."""
    assignment = application.group_assignment()
    group_types = {
        name: group.tag("ProcessGroup", "ProcessType", "general")
        for name, group in sorted(application.groups.items())
    }
    weights: Dict[str, int] = {}
    for name, process in sorted(application.processes.items()):
        if process.is_environment:
            continue
        group = application.group_of(name)
        if group is None:
            continue
        machine = process.component.classifier_behavior
        count = 0
        if machine is not None:
            for _, stmts, _ in machine_blocks(machine):
                count += sum(1 for _ in walk_statements(stmts))
        weights[group] = weights.get(group, 0) + count
    pair_bytes: Dict[Tuple[str, str], int] = {}
    for (sender, receiver), signals in signal_flow_matrix(application).items():
        group_a = assignment.get(sender)
        group_b = assignment.get(receiver)
        if ENVIRONMENT_GROUP in (group_a, group_b) or None in (group_a, group_b):
            continue
        if group_a == group_b:
            continue
        total = sum(
            count * _signal_bytes(application, signal)
            for signal, count in signals.items()
        )
        key = (group_a, group_b)
        pair_bytes[key] = pair_bytes.get(key, 0) + total
    return StaticProfile(weights, group_types, pair_bytes)


def static_mapping_estimate(
    profile: StaticProfile, platform, assignment: Dict[str, str]
) -> StaticEstimate:
    """Score ``assignment`` (group name -> PE name) on ``platform``.

    An infeasible assignment — missing group, unknown PE, or a process
    type the PE cannot execute — gets ``infeasible`` set and an infinite
    cost, so pruning and ranking need no special cases.
    """
    pe_seconds: Dict[str, float] = {}
    for group, weight in sorted(profile.statement_weight.items()):
        pe_name = assignment.get(group)
        if pe_name is None:
            return StaticEstimate(
                float("inf"), {}, 0.0, 0, 0,
                infeasible=f"group {group!r} is not mapped",
            )
        if pe_name not in platform.processing_elements:
            return StaticEstimate(
                float("inf"), {}, 0.0, 0, 0,
                infeasible=f"platform has no PE named {pe_name!r}",
            )
        pe = platform.pe(pe_name)
        group_type = profile.group_types.get(group, "general")
        if not process_runs_on(group_type, pe.spec.component_type):
            return StaticEstimate(
                float("inf"), {}, 0.0, 0, 0,
                infeasible=(
                    f"group {group!r} ({group_type}) cannot run on "
                    f"{pe_name!r} ({pe.spec.component_type})"
                ),
            )
        cycles = pe.spec.cycles_per_statement.get(group_type)
        if cycles is None:
            return StaticEstimate(
                float("inf"), {}, 0.0, 0, 0,
                infeasible=(
                    f"PE {pe_name!r} has no cycle cost for {group_type!r}"
                ),
            )
        seconds = weight * cycles / float(pe.spec.frequency_hz)
        pe_seconds[pe_name] = pe_seconds.get(pe_name, 0.0) + seconds

    bridges = {
        name for name, segment in platform.segments.items() if segment.is_bridge
    }
    cross_bytes = 0
    bridge_bytes = 0
    for (group_a, group_b), size in sorted(profile.pair_bytes.items()):
        pe_a = assignment.get(group_a)
        pe_b = assignment.get(group_b)
        if pe_a is None or pe_b is None or pe_a == pe_b:
            continue
        path = platform.transfer_path(pe_a, pe_b)
        cross_bytes += size * max(1, len(path))
        if len(path) > 1 or any(segment in bridges for segment in path):
            bridge_bytes += size

    total_seconds = sum(pe_seconds.values())
    max_share = (
        max(pe_seconds.values()) / total_seconds if total_seconds > 0 else 0.0
    )
    cost = cross_bytes + 1000.0 * max_share
    return StaticEstimate(cost, pe_seconds, max_share, cross_bytes, bridge_bytes)


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


def _compatible_pes(profile: StaticProfile, platform, group: str) -> List[str]:
    group_type = profile.group_types.get(group, "general")
    return [
        name
        for name, pe in sorted(platform.processing_elements.items())
        if process_runs_on(group_type, pe.spec.component_type)
    ]


def check_mapping(ctx: LintContext, findings: List[Finding]) -> None:
    """Run the mapping rules (M001-M005); needs platform and mapping views."""
    application, platform, mapping = ctx.application, ctx.platform, ctx.mapping
    if application is None or platform is None or mapping is None:
        return

    # M001: completeness — the lint-grade twin of check_complete().
    for group_name, group in sorted(application.groups.items()):
        if group_name == ENVIRONMENT_GROUP:
            continue
        members = application.processes_in(group_name)
        mapped = mapping.pe_of_group(group_name) is not None
        if members and not mapped:
            ctx.emit(
                findings,
                "M001",
                f"process group {group_name!r} has "
                f"{len(members)} member process(es) but no «PlatformMapping» "
                "dependency",
                f"group {group_name}",
                (group,),
            )
        elif not members and mapped:
            ctx.emit(
                findings,
                "M001",
                f"«PlatformMapping» of group {group_name!r} dangles: the "
                "group has no member processes",
                f"group {group_name}",
                (mapping.mappings.get(group_name), group),
            )
    for name, process in sorted(application.processes.items()):
        if process.is_environment or application.group_of(name) is not None:
            continue
        ctx.emit(
            findings,
            "M001",
            f"process {name!r} belongs to no process group and can never "
            "be mapped",
            f"process {name}",
            (process.part,),
        )

    profile = static_application_profile(application)
    assignment = mapping.assignment()
    estimate = static_mapping_estimate(profile, platform, assignment)

    # M002: one PE hoards the static load while a compatible peer idles.
    if estimate.infeasible is None and len(estimate.pe_seconds) >= 0:
        total_seconds = sum(estimate.pe_seconds.values())
        if total_seconds > 0:
            for pe_name, seconds in sorted(estimate.pe_seconds.items()):
                share = seconds / total_seconds
                if share < OVERCOMMIT_SHARE:
                    continue
                movable = [
                    group
                    for group, mapped_pe in sorted(assignment.items())
                    if mapped_pe == pe_name
                    and len(_compatible_pes(profile, platform, group)) > 1
                ]
                if not movable:
                    continue  # nothing could run elsewhere anyway
                ctx.emit(
                    findings,
                    "M002",
                    f"PE {pe_name!r} carries {share:.0%} of the static load "
                    f"estimate; group(s) {', '.join(movable)} could move to "
                    "an idle compatible PE",
                    f"pe {pe_name}",
                    (platform.pe(pe_name).part,),
                )

    # M003: chatty pair split across disjoint segments.
    total_pair = profile.total_pair_bytes()
    if total_pair > 0:
        seen_pairs = set()
        for (group_a, group_b) in sorted(profile.pair_bytes):
            pair = tuple(sorted((group_a, group_b)))
            if pair in seen_pairs:
                continue
            seen_pairs.add(pair)
            volume = profile.pair_bytes.get((pair[0], pair[1]), 0) + profile.pair_bytes.get(
                (pair[1], pair[0]), 0
            )
            share = volume / total_pair
            if share < CHATTY_PAIR_SHARE:
                continue
            pe_a = assignment.get(pair[0])
            pe_b = assignment.get(pair[1])
            if pe_a is None or pe_b is None or pe_a == pe_b:
                continue
            if set(platform.segments_of(pe_a)) & set(platform.segments_of(pe_b)):
                continue
            ctx.emit(
                findings,
                "M003",
                f"groups {pair[0]!r} (on {pe_a}) and {pair[1]!r} (on {pe_b}) "
                f"exchange {share:.0%} of all cross-group bytes across "
                "disjoint HIBI segments",
                f"groups {pair[0]}<->{pair[1]}",
                (application.groups.get(pair[0]), application.groups.get(pair[1])),
            )

    # M004: the bridge carries a dominant share of all inter-PE bytes.  The
    # share is computed over *unweighted* bytes — ``estimate.cross_bytes``
    # multiplies by hop count, which would cap a 3-hop bridge path at 1/3.
    raw_cross_bytes = sum(
        size
        for (group_a, group_b), size in profile.pair_bytes.items()
        if assignment.get(group_a) is not None
        and assignment.get(group_b) is not None
        and assignment[group_a] != assignment[group_b]
    )
    if estimate.infeasible is None and raw_cross_bytes > 0:
        bridge_share = estimate.bridge_bytes / raw_cross_bytes
        if bridge_share >= BRIDGE_SATURATION_SHARE:
            bridge_parts = tuple(
                segment.part
                for name, segment in sorted(platform.segments.items())
                if segment.is_bridge
            )
            ctx.emit(
                findings,
                "M004",
                f"{bridge_share:.0%} of the statically estimated inter-PE "
                "bytes cross a bridge segment; the bridge becomes the "
                "interconnect bottleneck",
                "platform bridge",
                bridge_parts,
            )

    # M005: contradictory «PlatformMapping» dependencies.
    by_group: Dict[str, List[Dependency]] = {}
    for dependency in mapping.package.members_of_type(Dependency):
        if not dependency.has_stereotype(PLATFORM_MAPPING):
            continue
        if len(dependency.clients) != 1 or len(dependency.suppliers) != 1:
            continue
        by_group.setdefault(dependency.client.name, []).append(dependency)
    for group_name, dependencies in sorted(by_group.items()):
        if len(dependencies) > 1:
            targets = ", ".join(
                sorted(dependency.supplier.name for dependency in dependencies)
            )
            ctx.emit(
                findings,
                "M005",
                f"group {group_name!r} has {len(dependencies)} "
                f"«PlatformMapping» dependencies ({targets}); the flow keeps "
                "an arbitrary one",
                f"group {group_name}",
                tuple(dependencies),
            )
    for group_name in sorted(mapping.mappings):
        if not mapping.is_fixed(group_name):
            continue
        pe_name = mapping.pe_of_group(group_name)
        if pe_name not in platform.processing_elements:
            ctx.emit(
                findings,
                "M005",
                f"fixed mapping of group {group_name!r} targets unknown PE "
                f"{pe_name!r}",
                f"group {group_name}",
                (mapping.mappings[group_name],),
            )
            continue
        group_type = profile.group_types.get(group_name, "general")
        pe = platform.pe(pe_name)
        if not process_runs_on(group_type, pe.spec.component_type):
            ctx.emit(
                findings,
                "M005",
                f"fixed mapping pins group {group_name!r} ({group_type}) to "
                f"{pe_name!r} ({pe.spec.component_type}), which cannot "
                "execute it",
                f"group {group_name}",
                (mapping.mappings[group_name],),
            )
