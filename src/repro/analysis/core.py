"""Core of ``tutlint``: rules, findings, configuration and suppression.

The paper motivates the profile's "strict rules" with "the support of
external tools for automatic analyzing, profiling, and modifying the UML
2.0 model" (Section 3).  ``tutlint`` is such a tool: a static-analysis
engine that runs behavioural passes over a parsed model *without
simulating it* and reports :class:`Finding` records against a registered
rule catalogue.

Three mechanisms shape a run:

* the **rule registry** (:data:`RULES`) — every rule has an id, a default
  severity and a rationale (rendered into ``docs/static_analysis.md``);
* a :class:`LintConfig` — per-rule severity overrides and disabled rules;
* **inline suppressions** — a UML comment ``tutlint: disable=E001,S004``
  attached to a model element (or any of its owners) suppresses matching
  findings on that element, keeping the justification inside the model so
  it survives XMI round-trips.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: Rank used for "severity >= threshold" comparisons.
SEVERITY_RANK: Dict[str, int] = {SEVERITY_WARNING: 1, SEVERITY_ERROR: 2}

#: Prefix of an inline suppression comment on a model element.
SUPPRESSION_PREFIX = "tutlint:"


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    id: str
    title: str
    default_severity: str
    rationale: str

    def __str__(self) -> str:
        return f"{self.id} ({self.title})"


#: The rule catalogue, id -> Rule.  Populated by the pass modules at import.
RULES: Dict[str, Rule] = {}


def register_rule(
    rule_id: str, title: str, default_severity: str, rationale: str
) -> Rule:
    """Register a rule in the catalogue (idempotent per id)."""
    if default_severity not in SEVERITY_RANK:
        raise ValueError(f"unknown severity {default_severity!r}")
    existing = RULES.get(rule_id)
    if existing is not None:
        return existing
    rule = Rule(rule_id, title, default_severity, rationale)
    RULES[rule_id] = rule
    return rule


@dataclass
class Finding:
    """One lint finding: a rule violation at a model location."""

    rule: str
    severity: str
    message: str
    subject: str
    elements: Tuple = ()
    suppressed: bool = False

    def to_record(self) -> Dict[str, str]:
        record = {
            "severity": self.severity,
            "rule": self.rule,
            "subject": self.subject,
            "message": self.message,
        }
        if self.suppressed:
            record["suppressed"] = True
        return record

    def __str__(self) -> str:
        mark = " (suppressed)" if self.suppressed else ""
        return f"[{self.severity}] {self.rule} {self.subject}: {self.message}{mark}"


class LintConfig:
    """Per-run rule configuration.

    ``severities`` overrides the default severity of a rule; listing a rule
    in ``disabled`` (or mapping it to ``"off"``) drops its findings
    entirely.  ``rules`` (when not ``None``) restricts the run to exactly
    those rule ids.  ``fail_on`` is the exit-code threshold used by the
    CLI.  Every rule id mentioned anywhere is checked against the
    registered catalogue by :meth:`validate` — unknown ids raise
    :class:`~repro.errors.LintConfigError` instead of being silently
    ignored.
    """

    FAIL_ON_CHOICES = ("error", "warning", "never")

    def __init__(
        self,
        severities: Optional[Dict[str, str]] = None,
        disabled: Sequence[str] = (),
        fail_on: str = "error",
        rules: Optional[Sequence[str]] = None,
    ) -> None:
        if fail_on not in self.FAIL_ON_CHOICES:
            raise ValueError(f"fail_on must be one of {self.FAIL_ON_CHOICES}")
        self.severities = dict(severities or {})
        self.disabled = set(disabled)
        self.fail_on = fail_on
        self.rules = None if rules is None else list(rules)

    def validate(self) -> None:
        """Reject rule ids that are not in the registered catalogue.

        Called by the lint entry points *after* the pass modules have
        populated :data:`RULES`, so a config created before any pass was
        imported still validates against the full catalogue.
        """
        from repro.errors import LintConfigError

        mentioned = set(self.severities) | set(self.disabled)
        if self.rules is not None:
            mentioned |= set(self.rules)
        unknown = sorted(rule_id for rule_id in mentioned if rule_id not in RULES)
        if unknown:
            valid = sorted(RULES)
            raise LintConfigError(
                f"unknown rule id(s): {', '.join(unknown)}; valid ids are "
                f"{', '.join(valid)}",
                unknown=unknown,
                valid=valid,
            )

    def severity_of(self, rule_id: str) -> Optional[str]:
        """Effective severity of a rule, or ``None`` when it is disabled."""
        if self.rules is not None and rule_id not in self.rules:
            return None
        if rule_id in self.disabled:
            return None
        override = self.severities.get(rule_id)
        if override == "off":
            return None
        if override is not None:
            if override not in SEVERITY_RANK:
                raise ValueError(f"unknown severity {override!r} for {rule_id}")
            return override
        rule = RULES.get(rule_id)
        return rule.default_severity if rule is not None else SEVERITY_ERROR


def suppressed_rules(element) -> set:
    """Rule ids disabled by ``tutlint:`` comments on ``element`` or its owners.

    The comment body reads ``tutlint: disable=E001,S004 -- justification``;
    ``disable=all`` suppresses every rule.  Returns a set of rule ids
    (possibly containing ``"all"``).
    """
    disabled: set = set()
    node = element
    while node is not None:
        for comment in getattr(node, "comments", ()):
            body = comment.body.strip()
            if not body.startswith(SUPPRESSION_PREFIX):
                continue
            directive = body[len(SUPPRESSION_PREFIX):].strip()
            for token in directive.split():
                if token.startswith("disable="):
                    for rule_id in token[len("disable="):].split(","):
                        rule_id = rule_id.strip()
                        if rule_id:
                            disabled.add(rule_id)
        node = getattr(node, "owner", None)
    return disabled


def is_suppressed(finding: Finding) -> bool:
    """True when any element the finding anchors on suppresses its rule."""
    for element in finding.elements:
        disabled = suppressed_rules(element)
        if "all" in disabled or finding.rule in disabled:
            return True
    return False


class LintReport:
    """All findings of one ``tutlint`` run."""

    def __init__(self, findings: Iterable[Finding] = ()) -> None:
        self.findings: List[Finding] = list(findings)

    @property
    def active(self) -> List[Finding]:
        """Findings that are not suppressed."""
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.active if f.severity == SEVERITY_ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.active if f.severity == SEVERITY_WARNING]

    @property
    def ok(self) -> bool:
        return not self.errors

    def by_rule(self, rule_id: str) -> List[Finding]:
        return [f for f in self.findings if f.rule == rule_id]

    def exit_code(self, fail_on: str = "error") -> int:
        """0 when no active finding reaches the ``fail_on`` severity."""
        if fail_on == "never":
            return 0
        threshold = SEVERITY_RANK[fail_on]
        for finding in self.active:
            if SEVERITY_RANK[finding.severity] >= threshold:
                return 1
        return 0


@dataclass
class LintContext:
    """Everything a pass may consult.  ``platform``/``mapping`` are optional;
    passes that need them (the cross-segment deadlock check) skip silently
    when they are absent."""

    application: object
    platform: object = None
    mapping: object = None
    config: LintConfig = field(default_factory=LintConfig)

    def emit(
        self,
        findings: List[Finding],
        rule_id: str,
        message: str,
        subject: str,
        elements: Tuple = (),
    ) -> None:
        """Append a finding unless its rule is disabled; apply severity
        configuration and inline suppression."""
        severity = self.config.severity_of(rule_id)
        if severity is None:
            return
        finding = Finding(rule_id, severity, message, subject, elements)
        finding.suppressed = is_suppressed(finding)
        findings.append(finding)


def const_value(expr) -> Optional[int]:
    """Constant-fold an action-language expression; ``None`` = not constant.

    Booleans fold to 0/1.  Logical operators short-circuit on a constant
    deciding side even when the other side is non-constant, matching the
    interpreter.  Division/modulo by a folded zero does not fold (the
    div-by-zero rule reports it instead).
    """
    from repro.uml.actions import (
        BinaryOp,
        BoolLiteral,
        Conditional,
        IntLiteral,
        UnaryOp,
    )

    if isinstance(expr, IntLiteral):
        return expr.value
    if isinstance(expr, BoolLiteral):
        return 1 if expr.value else 0
    if isinstance(expr, UnaryOp):
        operand = const_value(expr.operand)
        if operand is None:
            return None
        if expr.op == "-":
            return -operand
        if expr.op == "!":
            return 0 if operand else 1
        if expr.op == "~":
            return ~operand
        return None
    if isinstance(expr, Conditional):
        condition = const_value(expr.condition)
        if condition is None:
            return None
        branch = expr.then_value if condition else expr.else_value
        return const_value(branch)
    if isinstance(expr, BinaryOp):
        left = const_value(expr.left)
        right = const_value(expr.right)
        if expr.op == "&&":
            if left == 0 or right == 0:
                return 0
            if left is not None and right is not None:
                return 1
            return None
        if expr.op == "||":
            if (left is not None and left != 0) or (right is not None and right != 0):
                return 1
            if left == 0 and right == 0:
                return 0
            return None
        if left is None or right is None:
            return None
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op in ("/", "%"):
            if right == 0:
                return None
            if expr.op == "/":
                return int(left / right) if (left < 0) != (right < 0) else left // right
            quotient = int(left / right) if (left < 0) != (right < 0) else left // right
            return left - right * quotient
        if expr.op == "<<":
            return left << right
        if expr.op == ">>":
            return left >> right
        if expr.op == "&":
            return left & right
        if expr.op == "|":
            return left | right
        if expr.op == "^":
            return left ^ right
        if expr.op == "==":
            return 1 if left == right else 0
        if expr.op == "!=":
            return 1 if left != right else 0
        if expr.op == "<":
            return 1 if left < right else 0
        if expr.op == "<=":
            return 1 if left <= right else 0
        if expr.op == ">":
            return 1 if left > right else 0
        if expr.op == ">=":
            return 1 if left >= right else 0
    return None
