"""Report rendering shared by the ``lint`` and ``validate`` CLIs.

Both commands reduce to the same shape — a list of records with a
severity, a rule id, a location and a message — so one renderer produces
the text and JSON presentations for both, and one helper turns a report
into a process exit code.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.core import RULES, LintReport
from repro.uml.validation import ValidationReport
from repro.util.jsonout import render_envelope

FORMAT_CHOICES = ("text", "json")


def lint_records(report: LintReport, show_suppressed: bool = False) -> List[Dict]:
    findings = report.findings if show_suppressed else report.active
    return [finding.to_record() for finding in findings]


def validation_records(report: ValidationReport, source: str = "") -> List[Dict]:
    records = []
    for issue in report.issues:
        record = {
            "severity": issue.severity,
            "rule": issue.rule,
            "subject": getattr(issue.element, "qualified_name", "") or "",
            "message": issue.message,
        }
        if source:
            record["source"] = source
        records.append(record)
    return records


def render_text(records: List[Dict], title: str = "") -> str:
    """One line per record plus a severity summary, stable across commands."""
    lines: List[str] = []
    if title:
        lines.append(title)
    for record in records:
        suppressed = " (suppressed)" if record.get("suppressed") else ""
        subject = record.get("subject") or "-"
        lines.append(
            f"[{record['severity']}] {record['rule']} {subject}: "
            f"{record['message']}{suppressed}"
        )
    counted = [r for r in records if not r.get("suppressed")]
    errors = sum(1 for r in counted if r["severity"] == "error")
    warnings = sum(1 for r in counted if r["severity"] == "warning")
    suppressed = len(records) - len(counted)
    summary = f"{errors} error(s), {warnings} warning(s)"
    if suppressed:
        summary += f", {suppressed} suppressed"
    if not counted:
        summary = f"ok: {summary}"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    records: List[Dict], meta: Optional[Dict] = None, kind: str = "lint"
) -> str:
    """The findings in the shared CLI envelope (``repro.<kind>/1``)."""
    counted = [r for r in records if not r.get("suppressed")]
    results = {
        "findings": records,
        "errors": sum(1 for r in counted if r["severity"] == "error"),
        "warnings": sum(1 for r in counted if r["severity"] == "warning"),
        "suppressed": len(records) - len(counted),
    }
    return render_envelope(kind, results, meta)


def render_records(
    records: List[Dict],
    format: str = "text",
    title: str = "",
    meta: Optional[Dict] = None,
    kind: str = "lint",
) -> str:
    """Render records as text (``title`` heading) or enveloped JSON."""
    if format == "json":
        return render_json(records, meta, kind=kind)
    return render_text(records, title)


def render_matrix(matrix: Dict) -> str:
    """Render the static signal-flow matrix as an aligned text table."""
    lines = ["static signal-flow matrix (send sites that can route):"]
    if not matrix:
        lines.append("  (empty)")
        return "\n".join(lines)
    width = max(len(f"{s} -> {r}") for s, r in matrix) + 2
    for (sender, receiver), signals in sorted(matrix.items()):
        if isinstance(signals, dict):
            cell = ", ".join(
                f"{name} x{count}" if count > 1 else name
                for name, count in sorted(signals.items())
            )
        else:
            cell = ", ".join(sorted(signals))
        lines.append(f"  {f'{sender} -> {receiver}':<{width}} {cell}")
    return "\n".join(lines)


def render_rule_catalogue() -> str:
    """The registered rules as a text table (the CLI's ``lint --list-rules``)."""
    lines = ["tutlint rule catalogue:"]
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        lines.append(f"  {rule.id}  {rule.default_severity:<8} {rule.title}")
    return "\n".join(lines)


def rule_catalogue_records() -> List[Dict]:
    """The registered rules as records for the ``repro.lint-rules/1`` envelope."""
    return [
        {
            "rule": rule.id,
            "severity": rule.default_severity,
            "title": rule.title,
            "rationale": rule.rationale,
        }
        for rule_id, rule in sorted(RULES.items())
    ]
