"""EFSM structure analysis (rules E001-E006).

Runs over one «ApplicationComponent» state machine at a time and checks
properties the simulator's run-to-completion semantics make observable
only as silent misbehaviour: states that can never activate, transitions
that can never fire, states the process can never leave, and timers armed
or handled on one side only.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.analysis.core import Finding, LintContext, const_value, register_rule
from repro.uml.actions import SetTimer, walk_statements
from repro.uml.statemachine import (
    CompletionTrigger,
    SignalTrigger,
    StateMachine,
    TimerTrigger,
)
from repro.uml.validation import reachable_states

register_rule(
    "E001",
    "unreachable-state",
    "error",
    "No path of transitions (including initial-substate descent) reaches the "
    "state from the machine's initial state, so its behaviour is dead code.",
)
register_rule(
    "E002",
    "guard-always-false",
    "warning",
    "The transition guard constant-folds to false, so the transition can "
    "never fire regardless of variable values.",
)
register_rule(
    "E003",
    "shadowed-transition",
    "warning",
    "An earlier transition from the same state with the same trigger and no "
    "guard (or a guard that folds to true) always wins under the executor's "
    "priority-then-declaration ordering, so this transition can never fire.",
)
register_rule(
    "E004",
    "stuck-state",
    "warning",
    "A non-final leaf state with no outgoing transitions from itself or any "
    "enclosing state traps the process forever once entered.",
)
register_rule(
    "E005",
    "timer-unhandled",
    "error",
    "set_timer() arms a timer whose expiry signal no transition handles, so "
    "the timeout is silently dropped at run time.",
)
register_rule(
    "E006",
    "timer-unarmed",
    "warning",
    "A timer-triggered transition waits on a timer no action ever arms with "
    "set_timer(), so the transition can never fire.",
)


def machine_label(machine: StateMachine) -> str:
    """Human-readable location of a machine: ``Component.Behavior``."""
    context = getattr(machine, "context", None)
    name = machine.name or "behavior"
    if context is not None and getattr(context, "name", ""):
        return f"{context.name}.{name}"
    return name


def machine_blocks(machine: StateMachine):
    """Yield every action block of a machine as ``(where, stmts, anchor)``."""
    for state in machine.states:
        if state.entry:
            yield f"state {state.name!r} entry", state.entry, state
        if state.exit:
            yield f"state {state.name!r} exit", state.exit, state
    for transition in machine.transitions:
        if transition.effect:
            yield f"transition {transition.describe()!r}", transition.effect, transition


def _trigger_key(trigger) -> Tuple:
    if isinstance(trigger, SignalTrigger):
        return ("signal", trigger.signal_name)
    if isinstance(trigger, TimerTrigger):
        return ("timer", trigger.timer_name)
    return ("completion",)


def check_machine(
    machine: StateMachine, ctx: LintContext, findings: List[Finding]
) -> None:
    """Run all EFSM rules over one state machine."""
    label = machine_label(machine)
    reachable = reachable_states(machine)

    # E001: unreachable states.
    for state in machine.states:
        if state not in reachable:
            ctx.emit(
                findings,
                "E001",
                f"state {state.name!r} is unreachable from the initial state",
                label,
                (state,),
            )

    # E002: constant-false guards.
    for transition in machine.transitions:
        if transition.guard is not None and const_value(transition.guard) == 0:
            ctx.emit(
                findings,
                "E002",
                f"guard [{transition.guard.unparse()}] of transition "
                f"{transition.describe()!r} is always false",
                label,
                (transition,),
            )

    # E003: same-trigger transitions shadowed by an earlier catch-all.
    for state in machine.states:
        by_trigger = {}
        for transition in machine.outgoing(state):
            by_trigger.setdefault(_trigger_key(transition.trigger), []).append(
                transition
            )
        for group in by_trigger.values():
            blocker = None
            for transition in group:
                if blocker is not None:
                    ctx.emit(
                        findings,
                        "E003",
                        f"transition {transition.describe()!r} is shadowed by "
                        f"earlier unguarded {blocker.describe()!r}",
                        label,
                        (transition,),
                    )
                    continue
                guard_const = (
                    None if transition.guard is None else const_value(transition.guard)
                )
                if transition.guard is None or (
                    guard_const is not None and guard_const != 0
                ):
                    blocker = transition
                # A constant-false guard never blocks later transitions
                # (E002 already reports it).

    # E004: reachable non-final leaf states with no way out.  Transitions
    # from enclosing composite states count — the executor bubbles up.
    for state in machine.states:
        if state.is_final or state.is_composite or state not in reachable:
            continue
        sources = [state] + state.ancestors()
        if any(t.source in sources for t in machine.transitions):
            continue
        ctx.emit(
            findings,
            "E004",
            f"state {state.name!r} is not final but has no outgoing "
            "transitions (the process can never leave it)",
            label,
            (state,),
        )

    # E005/E006: set_timer() arms vs timer-trigger handlers.
    armed = {}
    for where, stmts, anchor in machine_blocks(machine):
        for stmt in walk_statements(stmts):
            if isinstance(stmt, SetTimer):
                armed.setdefault(stmt.timer, (where, anchor))
    handled = set(machine.timer_names())
    for timer, (where, anchor) in sorted(armed.items()):
        if timer not in handled:
            ctx.emit(
                findings,
                "E005",
                f"timer {timer!r} is armed in {where} but no transition "
                "handles its expiry",
                label,
                (anchor,),
            )
    for transition in machine.transitions:
        trigger = transition.trigger
        if isinstance(trigger, TimerTrigger) and trigger.timer_name not in armed:
            ctx.emit(
                findings,
                "E006",
                f"transition {transition.describe()!r} waits on timer "
                f"{trigger.timer_name!r} that is never armed with set_timer()",
                label,
                (transition,),
            )
