"""Cross-process signal-flow analysis (rules S001-S004).

Builds the static send/receive matrix of the application from the
behaviours (every ``send`` statement) and the composite-structure routing
(:meth:`ApplicationModel.send_destinations`), then checks it for:

* sends that route nowhere (S002) or to processes that never trigger on
  the signal (S001 — "lost signals");
* triggers on signals nothing ever sends (S003 — "dead receivers");
* request/reply cycles between process groups mapped to PEs on different
  HIBI segments, which can deadlock when both directions saturate the
  finite wrapper FIFOs (S004 — needs the platform and mapping views).

The matrix itself (:func:`signal_flow_matrix`) is the static twin of the
profiler's *measured* signal-count matrix (paper Figure 2): the profiler
counts transfers that happened in one simulation; this counts send
statements that can route, so the two can be cross-referenced.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.core import Finding, LintContext, register_rule
from repro.analysis.efsm import machine_blocks
from repro.uml.actions import Send, walk_statements

register_rule(
    "S001",
    "lost-signal",
    "error",
    "The send routes to a process whose state machine never triggers on the "
    "signal, so every delivery is dropped at the receiver's queue.",
)
register_rule(
    "S002",
    "unrouted-send",
    "error",
    "No connector path carries the signal from the sending process, so the "
    "send faults (or vanishes) at run time.",
)
register_rule(
    "S003",
    "dead-receiver",
    "warning",
    "The state machine waits on a signal no process (or environment "
    "boundary) ever sends to it, so the triggered transitions are dead.",
)
register_rule(
    "S004",
    "cross-segment-cycle",
    "warning",
    "Two process groups on PEs of different HIBI segments send to each "
    "other (request/reply); with finite wrapper FIFOs both directions can "
    "fill across the bridge and deadlock the bus.",
)


def _machine_of(process) -> Optional[object]:
    return process.component.classifier_behavior


def process_sends(application) -> List[Tuple[str, Send, str, object]]:
    """Every send site: ``(process, stmt, where, anchor)`` over all behaviours."""
    sites = []
    seen_components: Dict[int, List[Tuple[Send, str, object]]] = {}
    for name, process in sorted(application.processes.items()):
        machine = _machine_of(process)
        if machine is None:
            continue
        key = id(machine)
        if key not in seen_components:
            collected = []
            for where, stmts, anchor in machine_blocks(machine):
                for stmt in walk_statements(stmts):
                    if isinstance(stmt, Send):
                        collected.append((stmt, where, anchor))
            seen_components[key] = collected
        for stmt, where, anchor in seen_components[key]:
            sites.append((name, stmt, where, anchor))
    return sites


def signal_flow_matrix(application) -> Dict[Tuple[str, str], Dict[str, int]]:
    """Static send matrix: ``(sender, receiver) -> {signal: send-site count}``.

    Counts distinct routable send statements, so a cell's signals are the
    alphabet that *can* flow on that edge — compare with the profiler's
    measured per-run counts (paper Figure 2).
    """
    matrix: Dict[Tuple[str, str], Dict[str, int]] = {}
    for sender, stmt, _, _ in process_sends(application):
        for receiver, _ in application.send_destinations(sender, stmt.signal, stmt.via):
            cell = matrix.setdefault((sender, receiver), {})
            cell[stmt.signal] = cell.get(stmt.signal, 0) + 1
    return matrix


def group_flow_matrix(application) -> Dict[Tuple[str, str], Set[str]]:
    """Group-level aggregation of the signal-flow matrix (Figure 2 shape)."""
    assignment = application.group_assignment()
    matrix: Dict[Tuple[str, str], Set[str]] = {}
    for (sender, receiver), signals in signal_flow_matrix(application).items():
        key = (assignment.get(sender), assignment.get(receiver))
        matrix.setdefault(key, set()).update(signals)
    return matrix


def check_application(ctx: LintContext, findings: List[Finding]) -> None:
    """Run all signal-flow rules over the application (plus platform/mapping
    when present for S004)."""
    application = ctx.application

    received: Dict[str, Set[str]] = {}
    for name, process in application.processes.items():
        machine = _machine_of(process)
        received[name] = set(machine.received_signal_names()) if machine else set()

    # S001/S002 per send site; collect the delivery matrix along the way.
    delivered_to: Dict[str, Set[str]] = {name: set() for name in received}
    for sender, stmt, where, anchor in process_sends(application):
        destinations = application.send_destinations(sender, stmt.signal, stmt.via)
        if not destinations:
            via = f" via {stmt.via!r}" if stmt.via else ""
            ctx.emit(
                findings,
                "S002",
                f"send {stmt.signal!r}{via} in {where} has no route to any "
                "process",
                f"process {sender}",
                (anchor,),
            )
            continue
        for receiver, _port in destinations:
            delivered_to[receiver].add(stmt.signal)
            process = application.processes[receiver]
            if process.is_environment:
                continue  # the testbench absorbs whatever crosses the boundary
            if stmt.signal not in received[receiver]:
                ctx.emit(
                    findings,
                    "S001",
                    f"send {stmt.signal!r} in {where} routes to process "
                    f"{receiver!r}, which never triggers on it",
                    f"process {sender}",
                    (anchor, application.processes[receiver].part),
                )

    # S003: triggers never fed by any send.
    for name in sorted(received):
        process = application.processes[name]
        if process.is_environment:
            continue
        machine = _machine_of(process)
        for signal in sorted(received[name] - delivered_to[name]):
            ctx.emit(
                findings,
                "S003",
                f"process {name!r} triggers on signal {signal!r} but no "
                "send ever routes it there",
                f"process {name}",
                (machine, process.part),
            )

    if ctx.platform is not None and ctx.mapping is not None:
        _check_cross_segment_cycles(ctx, findings)


def _check_cross_segment_cycles(ctx: LintContext, findings: List[Finding]) -> None:
    application, platform, mapping = ctx.application, ctx.platform, ctx.mapping
    group_matrix = group_flow_matrix(application)
    groups = sorted(
        g for g in application.groups if mapping.pe_of_group(g) is not None
    )
    for i, group_a in enumerate(groups):
        for group_b in groups[i + 1:]:
            forward = group_matrix.get((group_a, group_b))
            backward = group_matrix.get((group_b, group_a))
            if not forward or not backward:
                continue
            pe_a = mapping.pe_of_group(group_a)
            pe_b = mapping.pe_of_group(group_b)
            if pe_a == pe_b:
                continue
            segments_a = set(platform.segments_of(pe_a))
            segments_b = set(platform.segments_of(pe_b))
            if segments_a & segments_b:
                continue  # same segment: the wrapper pair cannot cross-block
            depths = []
            for pe, segments in ((pe_a, segments_a), (pe_b, segments_b)):
                for segment in sorted(segments):
                    depths.append(platform.wrapper_of(pe, segment).spec.rx_buffer_words)
            depth = min(depths) if depths else 0
            ctx.emit(
                findings,
                "S004",
                f"groups {group_a!r} (on {pe_a}) and {group_b!r} (on {pe_b}) "
                f"exchange request/reply traffic "
                f"({', '.join(sorted(forward))} / {', '.join(sorted(backward))}) "
                "across different HIBI segments; with wrapper FIFOs of "
                f"{depth} word(s) both directions can fill the bridge and "
                "deadlock",
                f"groups {group_a}<->{group_b}",
                (application.groups[group_a], application.groups[group_b]),
            )
