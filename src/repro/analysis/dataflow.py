"""Action-language dataflow analysis (rules D001-D007).

Walks every action block of a machine (state entry/exit, transition
guards and effects) with a definite-assignment analysis: an EFSM variable
declared with ``variable()`` is always initialised; a name introduced
only by assignment is tracked per block; trigger parameters are bound for
the whole transition firing (the executor keeps them bound through exit,
effect and entry actions).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.analysis.core import Finding, LintContext, const_value, register_rule
from repro.analysis.efsm import machine_label
from repro.uml.actions import (
    Assign,
    BinaryOp,
    Expr,
    If,
    Name,
    Send,
    SetTimer,
    While,
    walk_expressions,
    walk_statements,
)
from repro.uml.statemachine import SignalTrigger, StateMachine

register_rule(
    "D001",
    "undefined-name",
    "error",
    "The name is read but never declared as an EFSM variable, bound as a "
    "trigger parameter, or assigned anywhere in the machine — the "
    "interpreter raises ActionRuntimeError the first time it executes.",
)
register_rule(
    "D002",
    "maybe-uninitialized",
    "warning",
    "The name is only introduced by assignment, and this read is not "
    "definitely preceded by one — on some path the variable is read before "
    "any value was stored.",
)
register_rule(
    "D003",
    "dead-store",
    "warning",
    "The variable is declared or assigned but never read by any guard or "
    "expression in the machine, so the stores are wasted work.",
)
register_rule(
    "D004",
    "send-arity",
    "error",
    "A send statement's argument count differs from the declared Signal's "
    "parameter list, so receivers bind garbage (or the simulator faults).",
)
register_rule(
    "D005",
    "send-undeclared-signal",
    "warning",
    "The sent signal is not declared in the application's Signals package, "
    "so its wire size and parameters cannot be checked.",
)
register_rule(
    "D006",
    "division-by-zero",
    "error",
    "The divisor/modulus constant-folds to zero, so evaluating the "
    "expression always raises at run time.",
)
register_rule(
    "D007",
    "trigger-arity",
    "error",
    "A signal trigger binds more parameter names than the declared Signal "
    "carries, so consuming the signal raises at run time.",
)


def _signal_params(machine: StateMachine) -> Set[str]:
    """All trigger-parameter names bound anywhere in the machine."""
    names: Set[str] = set()
    for transition in machine.transitions:
        if isinstance(transition.trigger, SignalTrigger):
            names.update(transition.trigger.parameter_names)
    return names


def _assigned_names(machine: StateMachine) -> Set[str]:
    names: Set[str] = set()
    for state in machine.states:
        for stmt in walk_statements(state.entry + state.exit):
            if isinstance(stmt, Assign):
                names.add(stmt.target)
    for transition in machine.transitions:
        for stmt in walk_statements(transition.effect):
            if isinstance(stmt, Assign):
                names.add(stmt.target)
    return names


class _BlockChecker:
    """Definite-assignment walk over one action block."""

    def __init__(
        self,
        ctx: LintContext,
        findings: List[Finding],
        label: str,
        where: str,
        anchor,
        declared: Set[str],
        params: Set[str],
        assigned_anywhere: Set[str],
    ) -> None:
        self.ctx = ctx
        self.findings = findings
        self.label = label
        self.where = where
        self.anchor = anchor
        self.declared = declared
        self.params = params
        self.assigned_anywhere = assigned_anywhere
        self.reported: Set[str] = set()

    def check_block(self, stmts, assigned: Set[str]) -> Set[str]:
        """Walk ``stmts``; returns the definitely-assigned set afterwards."""
        for stmt in stmts:
            if isinstance(stmt, Assign):
                self.check_expr(stmt.value, assigned)
                assigned.add(stmt.target)
            elif isinstance(stmt, Send):
                for arg in stmt.args:
                    self.check_expr(arg, assigned)
            elif isinstance(stmt, If):
                self.check_expr(stmt.condition, assigned)
                then_set = self.check_block(stmt.then_body, set(assigned))
                else_set = self.check_block(stmt.else_body, set(assigned))
                assigned |= then_set & else_set
            elif isinstance(stmt, While):
                self.check_expr(stmt.condition, assigned)
                # The body may run zero times: its assignments are not
                # definite afterwards, but reads inside it see earlier
                # assignments of the same iteration.
                self.check_block(stmt.body, set(assigned))
            elif isinstance(stmt, SetTimer):
                self.check_expr(stmt.duration, assigned)
        return assigned

    def check_expr(self, expr: Expr, assigned: Set[str]) -> None:
        if isinstance(expr, Name):
            self.check_read(expr.identifier, assigned)
            return
        for child in expr.children():
            self.check_expr(child, assigned)

    def check_read(self, name: str, assigned: Set[str]) -> None:
        if name in self.declared or name in self.params or name in assigned:
            return
        if name in self.reported:
            return
        self.reported.add(name)
        if name in self.assigned_anywhere:
            self.ctx.emit(
                self.findings,
                "D002",
                f"{name!r} may be read before assignment in {self.where}",
                self.label,
                (self.anchor,),
            )
        else:
            self.ctx.emit(
                self.findings,
                "D001",
                f"{name!r} read in {self.where} is never declared, bound or "
                "assigned",
                self.label,
                (self.anchor,),
            )


def check_machine(
    machine: StateMachine,
    ctx: LintContext,
    findings: List[Finding],
    signal_decls: Optional[Dict[str, object]] = None,
) -> None:
    """Run all dataflow rules over one state machine.

    ``signal_decls`` maps signal name -> declared ``Signal``; when empty or
    None the send/trigger checks against declarations are skipped (the
    machine is analysed stand-alone).
    """
    label = machine_label(machine)
    declared = set(machine.variables)
    all_params = _signal_params(machine)
    assigned_anywhere = _assigned_names(machine)

    def run_block(where, stmts, anchor, params: Set[str], pre: Set[str]) -> None:
        checker = _BlockChecker(
            ctx, findings, label, where, anchor, declared, params, assigned_anywhere
        )
        checker.check_block(list(stmts), set(pre))

    # D001/D002: definite assignment per block.  The executor keeps trigger
    # parameters bound through exit, effect and entry actions of the fired
    # transition, so state entry/exit conservatively sees every parameter.
    for state in machine.states:
        if state.entry:
            run_block(f"state {state.name!r} entry", state.entry, state, all_params, set())
        if state.exit:
            run_block(f"state {state.name!r} exit", state.exit, state, all_params, set())
    for transition in machine.transitions:
        params: Set[str] = set()
        if isinstance(transition.trigger, SignalTrigger):
            params = set(transition.trigger.parameter_names)
        where = f"transition {transition.describe()!r}"
        if transition.guard is not None:
            checker = _BlockChecker(
                ctx,
                findings,
                label,
                f"guard of {where}",
                transition,
                declared,
                params,
                assigned_anywhere,
            )
            checker.check_expr(transition.guard, set())
        if transition.effect:
            run_block(where, transition.effect, transition, params, set())

    # D003: stores never read.  A read anywhere (guards included, and
    # self-references like ``n = n + 1``) keeps a variable alive.
    read_names: Set[str] = set()
    for _, stmts, _ in _all_blocks(machine):
        for expr in walk_expressions(stmts):
            if isinstance(expr, Name):
                read_names.add(expr.identifier)
    for transition in machine.transitions:
        if transition.guard is not None:
            for expr in _expand(transition.guard):
                if isinstance(expr, Name):
                    read_names.add(expr.identifier)
    for name in sorted((declared | assigned_anywhere) - read_names - all_params):
        kind = "declared" if name in declared else "assigned"
        ctx.emit(
            findings,
            "D003",
            f"variable {name!r} is {kind} but never read",
            label,
            (machine,),
        )

    # D004/D005: send statements against declared signals.
    # D007: trigger parameter lists against declared signals.
    if signal_decls:
        for where, stmts, anchor in _all_blocks(machine):
            for stmt in walk_statements(stmts):
                if not isinstance(stmt, Send):
                    continue
                decl = signal_decls.get(stmt.signal)
                if decl is None:
                    ctx.emit(
                        findings,
                        "D005",
                        f"send of undeclared signal {stmt.signal!r} in {where}",
                        label,
                        (anchor,),
                    )
                    continue
                expected = len(decl.parameter_names())
                if len(stmt.args) != expected:
                    ctx.emit(
                        findings,
                        "D004",
                        f"send {stmt.signal!r} in {where} passes "
                        f"{len(stmt.args)} argument(s) but the signal declares "
                        f"{expected} parameter(s)",
                        label,
                        (anchor,),
                    )
        for transition in machine.transitions:
            trigger = transition.trigger
            if not isinstance(trigger, SignalTrigger):
                continue
            decl = signal_decls.get(trigger.signal_name)
            if decl is None:
                continue
            declared_count = len(decl.parameter_names())
            if len(trigger.parameter_names) > declared_count:
                ctx.emit(
                    findings,
                    "D007",
                    f"transition {transition.describe()!r} binds "
                    f"{len(trigger.parameter_names)} parameter(s) but signal "
                    f"{trigger.signal_name!r} declares {declared_count}",
                    label,
                    (transition,),
                )

    # D006: division/modulo by constant zero anywhere.
    for where, stmts, anchor in _all_blocks(machine):
        for expr in walk_expressions(stmts):
            _check_div(expr, ctx, findings, label, where, anchor)
    for transition in machine.transitions:
        if transition.guard is not None:
            for expr in _expand(transition.guard):
                _check_div(
                    expr,
                    ctx,
                    findings,
                    label,
                    f"guard of transition {transition.describe()!r}",
                    transition,
                )


def _check_div(expr, ctx, findings, label, where, anchor) -> None:
    if (
        isinstance(expr, BinaryOp)
        and expr.op in ("/", "%")
        and const_value(expr.right) == 0
    ):
        ctx.emit(
            findings,
            "D006",
            f"expression {expr.unparse()} in {where} divides by constant zero",
            label,
            (anchor,),
        )


def _all_blocks(machine: StateMachine):
    from repro.analysis.efsm import machine_blocks

    return list(machine_blocks(machine))


def _expand(expr: Expr):
    yield expr
    for child in expr.children():
        yield from _expand(child)
