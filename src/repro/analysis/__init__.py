"""``tutlint``: behavioural static analysis for TUT-Profile models.

The engine runs pluggable passes over a parsed application (plus,
optionally, the platform and mapping views) without simulating it:

* :mod:`repro.analysis.efsm` — per-machine EFSM structure (E001-E006);
* :mod:`repro.analysis.dataflow` — action-language dataflow (D001-D007);
* :mod:`repro.analysis.values` — interval-domain value analysis (A001-A004);
* :mod:`repro.analysis.sigflow` — cross-process signal flow (S001-S004);
* :mod:`repro.analysis.mapping` — platform/mapping rules (M001-M005) and
  the static cost estimator the exploration engine prunes with.

Entry points: :func:`run_lint` for a whole application,
:func:`lint_machine` for one state machine (the code generator's
precondition hook).  See ``docs/static_analysis.md`` for the catalogue.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis import dataflow, efsm, sigflow, values
from repro.analysis import mapping as mapping_pass
from repro.analysis.core import (
    RULES,
    Finding,
    LintConfig,
    LintContext,
    LintReport,
    Rule,
    const_value,
    register_rule,
)
from repro.analysis.report import (
    lint_records,
    render_matrix,
    render_records,
    render_rule_catalogue,
    validation_records,
)
from repro.analysis.sigflow import group_flow_matrix, signal_flow_matrix

_SEVERITY_ORDER = {"error": 0, "warning": 1}


def _sorted(findings: List[Finding]) -> List[Finding]:
    return sorted(
        findings,
        key=lambda f: (_SEVERITY_ORDER.get(f.severity, 2), f.rule, f.subject, f.message),
    )


def run_lint(
    application,
    platform=None,
    mapping=None,
    config: Optional[LintConfig] = None,
) -> LintReport:
    """Run every pass over ``application`` and return the full report.

    ``platform`` and ``mapping`` enable the mapping-aware rules (S004);
    without them the purely behavioural rules still run.
    """
    ctx = LintContext(
        application=application,
        platform=platform,
        mapping=mapping,
        config=config if config is not None else LintConfig(),
    )
    ctx.config.validate()
    findings: List[Finding] = []
    seen = set()
    for _, process in sorted(application.processes.items()):
        machine = process.component.classifier_behavior
        if machine is None or id(machine) in seen:
            continue
        seen.add(id(machine))
        efsm.check_machine(machine, ctx, findings)
        dataflow.check_machine(machine, ctx, findings, application.signals)
        values.check_machine(machine, ctx, findings)
    sigflow.check_application(ctx, findings)
    mapping_pass.check_mapping(ctx, findings)
    return LintReport(_sorted(findings))


def lint_machine(
    machine,
    signal_decls=None,
    config: Optional[LintConfig] = None,
) -> LintReport:
    """Run the per-machine passes (EFSM + dataflow) over one behaviour.

    This is the code generator's precondition: a machine that fails it
    would compile into C that can never run correctly.
    """
    ctx = LintContext(
        application=None,
        config=config if config is not None else LintConfig(),
    )
    ctx.config.validate()
    findings: List[Finding] = []
    efsm.check_machine(machine, ctx, findings)
    dataflow.check_machine(machine, ctx, findings, signal_decls)
    values.check_machine(machine, ctx, findings)
    return LintReport(_sorted(findings))


from repro.analysis.mapping import (
    StaticEstimate,
    StaticProfile,
    static_application_profile,
    static_mapping_estimate,
)
from repro.analysis.report import rule_catalogue_records
from repro.analysis.values import Interval, analyze_machine

__all__ = [
    "Finding",
    "Interval",
    "LintConfig",
    "LintContext",
    "LintReport",
    "RULES",
    "Rule",
    "StaticEstimate",
    "StaticProfile",
    "analyze_machine",
    "const_value",
    "group_flow_matrix",
    "lint_machine",
    "lint_records",
    "register_rule",
    "render_matrix",
    "render_records",
    "render_rule_catalogue",
    "rule_catalogue_records",
    "run_lint",
    "signal_flow_matrix",
    "static_application_profile",
    "static_mapping_estimate",
    "validation_records",
]
