"""Interval-domain value analysis over EFSM variables (rules A001-A004).

An abstract interpreter runs each state machine to a fixpoint: every
reachable leaf state is mapped to an :class:`Interval` environment that
over-approximates the variable valuations the simulator can observe
there.  Transition semantics mirror the executor exactly — guard
evaluated in the source context, hierarchical exit up to the exclusive
LCA, effect, hierarchical entry plus initial-substate descent — and
trigger parameters are unknown (top), so anything the analysis rules out
is ruled out for every run.

Joins at a state are widened to +/-infinity after a few rounds, which
guarantees termination on counting loops at the cost of precision.

The rules powered by the fixpoint:

* **A001** — a guard that is false under *every* reachable valuation (a
  strict superset of E002's constant-fold check);
* **A002** — a variable whose proven finite range leaves the generated
  ``int32_t`` storage (``crc32()`` results count as unknown bit patterns,
  not magnitudes);
* **A003** — a transition whose source is reachable in the state graph
  but never activates under value analysis;
* **A004** — a division/modulo whose divisor interval *provably*
  contains zero without being constant zero (D006) or fully unknown, so
  the report has no D006-style false positives on parameter-driven
  divisors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.core import Finding, LintContext, const_value, register_rule
from repro.uml.actions import (
    Assign,
    BinaryOp,
    BoolLiteral,
    Call,
    Conditional,
    Expr,
    If,
    IntLiteral,
    Name,
    ResetTimer,
    Send,
    SetTimer,
    Stmt,
    UnaryOp,
    While,
)
from repro.uml.statemachine import State, StateMachine, Transition
from repro.uml.validation import reachable_states

register_rule(
    "A001",
    "guard-infeasible",
    "warning",
    "Interval analysis proves the guard false under every variable "
    "valuation reachable in the source state, so the transition can never "
    "fire even though the guard does not constant-fold to false.",
)
register_rule(
    "A002",
    "variable-range-overflow",
    "warning",
    "The variable's proven value range leaves the signed 32-bit storage "
    "the code generator emits (int32_t), so generated C would wrap where "
    "the simulator computes unbounded integers.",
)
register_rule(
    "A003",
    "transition-dead-by-values",
    "warning",
    "The transition's source state is reachable in the state graph but "
    "value analysis proves no execution ever activates it, so the "
    "transition is dead despite passing the structural checks.",
)
register_rule(
    "A004",
    "division-possibly-zero",
    "warning",
    "The divisor's proven interval contains zero without being constant "
    "zero (D006) or fully unknown, so some reachable valuation raises a "
    "division error at run time.",
)

#: Joins tolerated at one state before bounds are widened to infinity.
WIDEN_AFTER = 3

#: The code generator stores EFSM variables as ``int32_t``.
INT32_MIN = -(2**31)
INT32_MAX = 2**31 - 1

NEG_INF = float("-inf")
POS_INF = float("inf")


@dataclass(frozen=True)
class Interval:
    """A closed integer interval; bounds may be +/-infinity."""

    lo: float
    hi: float

    @staticmethod
    def const(value: int) -> "Interval":
        return Interval(value, value)

    @staticmethod
    def top() -> "Interval":
        return Interval(NEG_INF, POS_INF)

    @property
    def is_top(self) -> bool:
        return self.lo == NEG_INF and self.hi == POS_INF

    @property
    def is_const(self) -> bool:
        return self.lo == self.hi

    def contains(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def widen(self, newer: "Interval") -> "Interval":
        """Classic interval widening: unstable bounds jump to infinity."""
        lo = self.lo if newer.lo >= self.lo else NEG_INF
        hi = self.hi if newer.hi <= self.hi else POS_INF
        return Interval(lo, hi)

    def intersect(self, other: "Interval") -> Optional["Interval"]:
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        return Interval(lo, hi) if lo <= hi else None

    def __str__(self) -> str:
        fmt = lambda b: "-inf" if b == NEG_INF else "+inf" if b == POS_INF else str(int(b))
        return f"[{fmt(self.lo)}, {fmt(self.hi)}]"


TOP = Interval.top()
BOOL = Interval(0, 1)
TRUE = Interval.const(1)
FALSE = Interval.const(0)

#: Abstract environment: variable name -> interval.  Names absent from the
#: mapping (trigger parameters, undeclared reads) are top.  ``None`` stands
#: for bottom — an unreachable program point.
Env = Dict[str, Interval]


def _mul_bound(a: float, b: float) -> float:
    if a == 0 or b == 0:
        return 0
    return a * b


def _div_bound(a: float, b: float) -> float:
    """C truncated division of interval corners; ``b`` is never zero."""
    if a in (NEG_INF, POS_INF):
        return a if b > 0 else -a
    if b in (NEG_INF, POS_INF):
        return 0  # |a/b| < 1 truncates to 0
    quotient = int(a / b) if (a < 0) != (b < 0) else int(a) // int(b)
    return quotient


def _corners(left: Interval, right: Interval, fn) -> Interval:
    values = [
        fn(a, b)
        for a in (left.lo, left.hi)
        for b in (right.lo, right.hi)
    ]
    return Interval(min(values), max(values))


def truthiness(interval: Interval) -> Optional[bool]:
    """Definite truth value of an interval, or ``None`` when undecided."""
    if interval == FALSE:
        return False
    if not interval.contains(0):
        return True
    return None


def _bool_of(value: Optional[bool]) -> Interval:
    if value is True:
        return TRUE
    if value is False:
        return FALSE
    return BOOL


#: Optional hook invoked on every ``/`` or ``%`` with the divisor interval.
DivHook = Optional[Callable[[BinaryOp, Interval], None]]


def abstract_eval(expr: Expr, env: Env, on_division: DivHook = None) -> Interval:
    """Evaluate an expression over intervals; sound for every concrete run."""
    if isinstance(expr, IntLiteral):
        return Interval.const(expr.value)
    if isinstance(expr, BoolLiteral):
        return TRUE if expr.value else FALSE
    if isinstance(expr, Name):
        return env.get(expr.identifier, TOP)
    if isinstance(expr, UnaryOp):
        operand = abstract_eval(expr.operand, env, on_division)
        if expr.op == "-":
            return Interval(-operand.hi, -operand.lo)
        if expr.op == "!":
            truth = truthiness(operand)
            return _bool_of(None if truth is None else not truth)
        if expr.op == "~":
            return Interval(-operand.hi - 1, -operand.lo - 1)
        return TOP
    if isinstance(expr, Conditional):
        abstract_eval(expr.condition, env, on_division)
        then_env = refine_env(env, expr.condition, True)
        else_env = refine_env(env, expr.condition, False)
        branches = []
        if then_env is not None:
            branches.append(abstract_eval(expr.then_value, then_env, on_division))
        if else_env is not None:
            branches.append(abstract_eval(expr.else_value, else_env, on_division))
        if not branches:
            return TOP
        result = branches[0]
        for other in branches[1:]:
            result = result.join(other)
        return result
    if isinstance(expr, Call):
        return _eval_call(expr, env, on_division)
    if isinstance(expr, BinaryOp):
        return _eval_binary(expr, env, on_division)
    return TOP


def _eval_call(expr: Call, env: Env, on_division: DivHook) -> Interval:
    if expr.function == "crc32":
        # A CRC is a 32-bit *pattern*, not a magnitude: the generated C pipes
        # it through one consistent uint32->int32 conversion, so a range would
        # only feed A002 false alarms.  Treat it as unknown.
        return TOP
    if expr.function == "rand16":
        return Interval(0, 0xFFFF)
    args = [abstract_eval(arg, env, on_division) for arg in expr.args]
    if not args:
        return TOP
    if expr.function == "min":
        return Interval(min(a.lo for a in args), min(a.hi for a in args))
    if expr.function == "max":
        return Interval(max(a.lo for a in args), max(a.hi for a in args))
    if expr.function == "abs":
        operand = args[0]
        if operand.lo >= 0:
            return operand
        if operand.hi <= 0:
            return Interval(-operand.hi, -operand.lo)
        return Interval(0, max(-operand.lo, operand.hi))
    return TOP


def _eval_binary(expr: BinaryOp, env: Env, on_division: DivHook) -> Interval:
    op = expr.op
    if op == "&&":
        left = truthiness(abstract_eval(expr.left, env, on_division))
        if left is False:
            return FALSE
        # Short-circuit: the right side only runs where the left held.
        narrowed = refine_env(env, expr.left, True)
        if narrowed is None:
            return FALSE
        right = truthiness(abstract_eval(expr.right, narrowed, on_division))
        if right is False:
            return FALSE
        if left is True and right is True:
            return TRUE
        return BOOL
    if op == "||":
        left = truthiness(abstract_eval(expr.left, env, on_division))
        if left is True:
            return TRUE
        narrowed = refine_env(env, expr.left, False)
        if narrowed is None:
            return TRUE
        right = truthiness(abstract_eval(expr.right, narrowed, on_division))
        if right is True:
            return TRUE
        if left is False and right is False:
            return FALSE
        return BOOL

    left = abstract_eval(expr.left, env, on_division)
    right = abstract_eval(expr.right, env, on_division)
    if op == "+":
        return Interval(left.lo + right.lo, left.hi + right.hi)
    if op == "-":
        return Interval(left.lo - right.hi, left.hi - right.lo)
    if op == "*":
        return _corners(left, right, _mul_bound)
    if op in ("/", "%"):
        if on_division is not None:
            on_division(expr, right)
        if right.contains(0):
            # A run hitting the zero divisor raises instead of producing a
            # value; the surviving runs have a divisor adjacent to zero,
            # which top soundly covers.
            return TOP
        if op == "/":
            return _corners(left, right, _div_bound)
        # C-style modulo: |x % y| <= min(|x|, |y| - 1), sign follows x.
        magnitude = max(abs(right.lo), abs(right.hi)) - 1
        x_magnitude = max(abs(left.lo), abs(left.hi))
        bound = min(magnitude, x_magnitude)
        lo = 0 if left.lo >= 0 else -bound
        hi = 0 if left.hi <= 0 else bound
        return Interval(lo, hi)
    if op == "<<":
        if right.lo >= 0 and right.hi != POS_INF:
            shifted = Interval(2 ** int(right.lo), 2 ** int(right.hi))
            return _corners(left, shifted, _mul_bound)
        return TOP
    if op == ">>":
        if right.lo >= 0:
            if right.hi != POS_INF and left.lo != NEG_INF and left.hi != POS_INF:
                values = [
                    int(a) >> b
                    for a in (left.lo, left.hi)
                    for b in (int(right.lo), int(right.hi))
                ]
                return Interval(min(values), max(values))
            if left.lo >= 0:
                return Interval(0, left.hi)
        return TOP
    if op in ("&", "|", "^"):
        if left.lo >= 0 and right.lo >= 0:
            if op == "&":
                return Interval(0, min(left.hi, right.hi))
            return Interval(0, left.hi + right.hi)
        return TOP
    if op in ("==", "!=", "<", "<=", ">", ">="):
        return _bool_of(_compare(op, left, right))
    return TOP


def _compare(op: str, left: Interval, right: Interval) -> Optional[bool]:
    if op == "<":
        if left.hi < right.lo:
            return True
        if left.lo >= right.hi:
            return False
    elif op == "<=":
        if left.hi <= right.lo:
            return True
        if left.lo > right.hi:
            return False
    elif op == ">":
        return _compare("<", right, left)
    elif op == ">=":
        return _compare("<=", right, left)
    elif op == "==":
        if left.is_const and right.is_const and left.lo == right.lo:
            return True
        if left.intersect(right) is None:
            return False
    elif op == "!=":
        equal = _compare("==", left, right)
        return None if equal is None else not equal
    return None


_NEGATED = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!=", "!=": "=="}
_MIRRORED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}


def _refine_name(env: Env, name: str, op: str, bound: Interval) -> Optional[Env]:
    """Narrow ``name`` so that ``name <op> bound`` can hold; None = bottom."""
    current = env.get(name, TOP)
    if op == "<":
        narrowed = current.intersect(Interval(NEG_INF, bound.hi - 1))
    elif op == "<=":
        narrowed = current.intersect(Interval(NEG_INF, bound.hi))
    elif op == ">":
        narrowed = current.intersect(Interval(bound.lo + 1, POS_INF))
    elif op == ">=":
        narrowed = current.intersect(Interval(bound.lo, POS_INF))
    elif op == "==":
        narrowed = current.intersect(bound)
    elif op == "!=":
        narrowed = current
        if bound.is_const:
            if current.is_const and current.lo == bound.lo:
                return None
            if current.lo == bound.lo:
                narrowed = Interval(current.lo + 1, current.hi)
            elif current.hi == bound.hi:
                narrowed = Interval(current.lo, current.hi - 1)
    else:
        return env
    if narrowed is None:
        return None
    if narrowed == current:
        return env
    refined = dict(env)
    refined[name] = narrowed
    return refined


def _join_envs(a: Optional[Env], b: Optional[Env]) -> Optional[Env]:
    if a is None:
        return b
    if b is None:
        return a
    joined: Env = {}
    for name in set(a) & set(b):
        joined[name] = a[name].join(b[name])
    return joined


def refine_env(env: Optional[Env], guard: Expr, want: bool) -> Optional[Env]:
    """The part of ``env`` where ``guard`` evaluates to ``want``.

    Sound over-approximation: the result contains every concrete valuation
    of ``env`` satisfying the condition; ``None`` means there is provably
    none (bottom).
    """
    if env is None:
        return None
    if isinstance(guard, UnaryOp) and guard.op == "!":
        return refine_env(env, guard.operand, not want)
    if isinstance(guard, BinaryOp) and guard.op in ("&&", "||"):
        both = (guard.op == "&&") == want
        if both:
            first = refine_env(env, guard.left, want)
            return refine_env(first, guard.right, want)
        return _join_envs(
            refine_env(env, guard.left, want),
            refine_env(env, guard.right, want),
        )
    if isinstance(guard, BinaryOp) and guard.op in _NEGATED:
        op = guard.op if want else _NEGATED[guard.op]
        refined: Optional[Env] = env
        if isinstance(guard.left, Name):
            bound = abstract_eval(guard.right, env)
            refined = _refine_name(refined, guard.left.identifier, op, bound)
        if refined is not None and isinstance(guard.right, Name):
            bound = abstract_eval(guard.left, refined)
            refined = _refine_name(
                refined, guard.right.identifier, _MIRRORED[op], bound
            )
        if refined is not None:
            value = truthiness(abstract_eval(guard, refined))
            if value is not None and value != want:
                return None
        return refined
    if isinstance(guard, Name):
        interval = env.get(guard.identifier, TOP)
        if want:
            if interval == FALSE:
                return None
            return env
        if not interval.contains(0):
            return None
        refined = dict(env)
        refined[guard.identifier] = FALSE
        return refined
    value = truthiness(abstract_eval(guard, env))
    if value is not None and value != want:
        return None
    return env


def abstract_exec(
    stmts: Sequence[Stmt], env: Optional[Env], on_division: DivHook = None
) -> Optional[Env]:
    """Run a block over intervals, joining branch and loop effects."""
    for stmt in stmts:
        if env is None:
            return None
        env = _exec_one(stmt, env, on_division)
    return env


def _exec_one(stmt: Stmt, env: Env, on_division: DivHook) -> Optional[Env]:
    if isinstance(stmt, Assign):
        value = abstract_eval(stmt.value, env, on_division)
        updated = dict(env)
        updated[stmt.target] = value
        return updated
    if isinstance(stmt, Send):
        for arg in stmt.args:
            abstract_eval(arg, env, on_division)
        return env
    if isinstance(stmt, SetTimer):
        abstract_eval(stmt.duration, env, on_division)
        return env
    if isinstance(stmt, ResetTimer):
        return env
    if isinstance(stmt, If):
        abstract_eval(stmt.condition, env, on_division)
        then_env = abstract_exec(
            stmt.then_body, refine_env(env, stmt.condition, True), on_division
        )
        else_env = abstract_exec(
            stmt.else_body, refine_env(env, stmt.condition, False), on_division
        )
        return _join_envs(then_env, else_env)
    if isinstance(stmt, While):
        abstract_eval(stmt.condition, env, on_division)
        exit_env = refine_env(env, stmt.condition, False)
        current: Optional[Env] = env
        for round_ in range(WIDEN_AFTER + 2):
            body_in = refine_env(current, stmt.condition, True)
            if body_in is None:
                break
            body_out = abstract_exec(stmt.body, body_in, on_division)
            joined = _join_envs(current, body_out)
            if joined == current:
                break
            if round_ >= WIDEN_AFTER and current is not None and joined is not None:
                joined = {
                    name: current[name].widen(joined[name])
                    if name in current
                    else joined[name]
                    for name in joined
                }
            current = joined
        after_loop = refine_env(current, stmt.condition, False)
        return _join_envs(exit_env, after_loop)
    return env


# ---------------------------------------------------------------------------
# Machine fixpoint
# ---------------------------------------------------------------------------


@dataclass
class MachineValues:
    """Fixpoint result: per-leaf-state abstract environments."""

    machine: StateMachine
    #: id(leaf State) -> joined environment over every visit.
    state_envs: Dict[int, Env]
    #: id(leaf State) -> the State, for iteration in insertion order.
    leaves: Dict[int, State]

    def env_of(self, leaf: State) -> Optional[Env]:
        return self.state_envs.get(id(leaf))

    def joined_env(self) -> Env:
        """Join of every reachable state environment (per-variable)."""
        joined: Env = {}
        for env in self.state_envs.values():
            for name, interval in env.items():
                existing = joined.get(name)
                joined[name] = interval if existing is None else existing.join(interval)
        return joined

    def source_leaves(self, transition: Transition) -> List[State]:
        """Reachable leaves from which ``transition`` may fire (bubbling)."""
        found = []
        for leaf in self.leaves.values():
            if leaf.is_final:
                continue
            if transition.source is leaf or transition.source in leaf.ancestors():
                found.append(leaf)
        return found


def _entry_descent(state: State) -> List[State]:
    """States entered when ``state`` is entered: itself plus initial descent."""
    chain = [state]
    node = state
    while node.initial_substate is not None:
        node = node.initial_substate
        chain.append(node)
    return chain


def _transition_step(
    leaf: State,
    transition: Transition,
    env: Env,
    on_division: DivHook = None,
) -> Tuple[Optional[State], Optional[Env]]:
    """Abstractly fire ``transition`` from ``leaf``; mirrors ``_take``.

    Returns ``(new_leaf, env)``; ``(None, None)`` when the guard is
    provably false under ``env``.
    """
    current: Optional[Env] = env
    if transition.guard is not None:
        current = refine_env(current, transition.guard, True)
        if on_division is not None:
            abstract_eval(transition.guard, env, on_division)
        if current is None:
            return None, None
    if transition.internal:
        return leaf, abstract_exec(transition.effect, current, on_division)
    target = transition.target
    source_chain = set(id(s) for s in transition.source.ancestors())
    lca = None
    node = target.parent
    while node is not None:
        if id(node) in source_chain:
            lca = node
            break
        node = node.parent
    node = leaf
    while node is not None and node is not lca:
        current = abstract_exec(node.exit, current, on_division)
        node = node.parent
    current = abstract_exec(transition.effect, current, on_division)
    for state in target.path_from_root():
        if lca is not None and (state is lca or not lca.contains(state)):
            continue
        current = abstract_exec(state.entry, current, on_division)
    new_leaf = target
    while new_leaf.initial_substate is not None:
        new_leaf = new_leaf.initial_substate
        current = abstract_exec(new_leaf.entry, current, on_division)
    return new_leaf, current


def analyze_machine(machine: StateMachine) -> Optional[MachineValues]:
    """Run the interval fixpoint; ``None`` when the machine cannot start."""
    if machine.initial_state is None:
        return None
    env: Optional[Env] = {
        name: Interval.const(value) for name, value in machine.variables.items()
    }
    for state in _entry_descent(machine.initial_state):
        env = abstract_exec(state.entry, env)
    if env is None:
        return None
    start_leaf = machine.initial_state.enter_target()

    state_envs: Dict[int, Env] = {}
    leaves: Dict[int, State] = {}
    join_counts: Dict[int, int] = {}
    worklist: List[State] = []

    def push(leaf: State, incoming: Optional[Env]) -> None:
        if incoming is None:
            return
        known = state_envs.get(id(leaf))
        if known is None:
            updated = dict(incoming)
        else:
            updated = _join_envs(known, incoming)
            if updated == known:
                return
            join_counts[id(leaf)] = join_counts.get(id(leaf), 0) + 1
            if join_counts[id(leaf)] > WIDEN_AFTER:
                updated = {
                    name: known[name].widen(updated[name])
                    if name in known
                    else updated[name]
                    for name in updated
                }
                if updated == known:
                    return
        state_envs[id(leaf)] = updated
        leaves[id(leaf)] = leaf
        worklist.append(leaf)

    push(start_leaf, env)
    while worklist:
        leaf = worklist.pop()
        if leaf.is_final:
            continue
        current = state_envs[id(leaf)]
        for source in [leaf] + leaf.ancestors():
            for transition in machine.outgoing(source):
                new_leaf, out = _transition_step(leaf, transition, current)
                if new_leaf is not None:
                    push(new_leaf, out)
    return MachineValues(machine, state_envs, leaves)


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


def _guard_infeasible(values: MachineValues, transition: Transition) -> bool:
    """True when the guard is false in every reachable source context."""
    sources = values.source_leaves(transition)
    if not sources:
        return False
    for leaf in sources:
        env = values.env_of(leaf)
        if refine_env(env, transition.guard, True) is not None:
            return False
    return True


def check_machine(
    machine: StateMachine, ctx: LintContext, findings: List[Finding]
) -> None:
    """Run the value-analysis rules (A001-A004) over one state machine."""
    from repro.analysis.efsm import machine_label

    label = machine_label(machine)
    values = analyze_machine(machine)
    if values is None:
        return
    graph_reachable = reachable_states(machine)

    # A001: guards infeasible under every reachable valuation.  Constant
    # guards stay with E002; A001 needs the fixpoint to decide.
    for transition in machine.transitions:
        if transition.guard is None or const_value(transition.guard) is not None:
            continue
        if _guard_infeasible(values, transition):
            ctx.emit(
                findings,
                "A001",
                f"guard [{transition.guard.unparse()}] of transition "
                f"{transition.describe()!r} is infeasible under every "
                "reachable variable valuation",
                label,
                (transition,),
            )

    # A002: proven finite ranges outside the generated int32_t storage.
    joined = values.joined_env()
    for name in sorted(machine.variables):
        interval = joined.get(name)
        if interval is None:
            continue
        overflow_hi = interval.hi != POS_INF and interval.hi > INT32_MAX
        overflow_lo = interval.lo != NEG_INF and interval.lo < INT32_MIN
        if overflow_hi or overflow_lo:
            ctx.emit(
                findings,
                "A002",
                f"variable {name!r} reaches proven range {interval} outside "
                "the int32_t storage generated for EFSM variables",
                label,
                (machine,),
            )

    # A003: graph-reachable source state that value analysis proves never
    # activates (E001 keeps graph-unreachable states).
    for transition in machine.transitions:
        source = transition.source
        if source not in graph_reachable:
            continue
        if source.is_composite:
            activated = any(
                source.contains(leaf) for leaf in values.leaves.values()
            )
        else:
            activated = values.env_of(source) is not None
        if not activated:
            ctx.emit(
                findings,
                "A003",
                f"transition {transition.describe()!r} is dead: value "
                f"analysis proves state {source.name!r} never activates",
                label,
                (transition,),
            )

    # A004: division/modulo whose divisor provably straddles zero.  A final
    # pass over the fixpoint re-runs every block with a division hook.
    sites: Dict[Tuple[int, str], List] = {}
    where = {"current": ""}
    anchors = {"current": None}

    def on_division(expr: BinaryOp, divisor: Interval) -> None:
        key = (id(anchors["current"]), expr.unparse())
        entry = sites.get(key)
        if entry is None:
            sites[key] = [where["current"], anchors["current"], expr, divisor]
        else:
            entry[3] = entry[3].join(divisor)

    init_env: Optional[Env] = {
        name: Interval.const(value) for name, value in machine.variables.items()
    }
    for state in _entry_descent(machine.initial_state):
        where["current"] = f"state {state.name!r} entry"
        anchors["current"] = state
        init_env = abstract_exec(state.entry, init_env, on_division)
        if init_env is None:
            break
    for leaf in values.leaves.values():
        if leaf.is_final:
            continue
        env = values.env_of(leaf)
        for source in [leaf] + leaf.ancestors():
            for transition in machine.outgoing(source):
                where["current"] = f"transition {transition.describe()!r}"
                anchors["current"] = transition
                _transition_step(leaf, transition, env, on_division)

    for _, (where_str, anchor, expr, divisor) in sorted(
        sites.items(), key=lambda item: (item[1][0], item[1][2].unparse())
    ):
        if not divisor.contains(0) or divisor.is_top:
            continue
        if const_value(expr.right) == 0:
            continue  # D006 reports constant-zero divisors
        ctx.emit(
            findings,
            "A004",
            f"divisor {expr.right.unparse()} of {expr.unparse()} in "
            f"{where_str} has proven range {divisor} containing zero",
            label,
            (anchor,),
        )
