"""TUT-Profile: a UML 2.0 profile for embedded system design.

Reproduction of Kukkala, Riihimaki, Hannikainen, Hamalainen, Kronlof,
"UML 2.0 Profile for Embedded System Design", DATE 2005.

Public entry points:

* :mod:`repro.uml` -- the UML 2.0 metamodel subset and profile mechanism
* :mod:`repro.tutprofile` -- the TUT-Profile stereotypes and design rules
* :mod:`repro.application` / :mod:`repro.platform` / :mod:`repro.mapping`
  -- the three design views of the paper
* :mod:`repro.simulation` -- discrete-event execution producing log-files
* :mod:`repro.codegen` -- C code generation with profiling instrumentation
* :mod:`repro.profiling` -- the profiling tool (model parse + log analysis)
* :mod:`repro.flow` -- the Figure 2 end-to-end design flow
* :mod:`repro.cases` -- the TUTMAC / TUTWLAN case study (Figures 4-8)
"""

__version__ = "1.0.0"
