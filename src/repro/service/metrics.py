"""Service-level observability: the ``/v1/metrics`` snapshot.

Everything here is computed from the spool's job *records* (the small
``summary`` blocks written at finish time) plus the in-memory counters a
server accumulates — result files are never opened, so the endpoint
stays O(jobs) with a tiny constant and is safe to poll aggressively.

The snapshot is the body of the ``repro.service-metrics/1`` envelope
(see ``docs/service.md``): queue depth and in-flight counts, terminal
state counts, the campaign-level cache-hit ratio, and nearest-rank
p50/p99 turnaround latency over finished jobs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    SERVED_CACHE,
    SERVED_EVALUATED,
    JobRecord,
)
from repro.service.jobstore import JobStore

#: Schema kind of the metrics envelope.
METRICS_SCHEMA = "service-metrics"


def percentile(values: Sequence[float], fraction: float) -> Optional[float]:
    """Nearest-rank percentile (deterministic, no interpolation).

    Returns None for an empty sample so JSON consumers can tell "no
    finished jobs yet" from "instant turnaround".
    """
    if not values:
        return None
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1)))))
    return round(ordered[rank], 6)


def service_metrics(
    store: JobStore,
    counters: Optional[Dict[str, int]] = None,
) -> Dict[str, object]:
    """One metrics snapshot over the spool (plus server ``counters``).

    ``counters`` carries the ephemeral per-server tallies (submissions
    accepted, rejected with 429, served by the submit-time fast path);
    they reset when the server restarts, unlike the spool-derived
    numbers, and are echoed under ``"server"``.
    """
    records: List[JobRecord] = store.list()
    by_state = {state: 0 for state in (QUEUED, RUNNING, DONE, FAILED, CANCELLED)}
    served = {SERVED_EVALUATED: 0, SERVED_CACHE: 0}
    evaluated = 0
    cache_hits = 0
    pruned = 0
    latencies: List[float] = []
    for record in records:
        by_state[record.state] = by_state.get(record.state, 0) + 1
        if record.served in served:
            served[record.served] += 1
        if record.summary:
            evaluated += int(record.summary.get("evaluated", 0))
            cache_hits += int(record.summary.get("cache_hits", 0))
            pruned += int(record.summary.get("pruned", 0))
        if record.terminal and record.finished and record.submitted:
            latencies.append(max(0.0, record.finished - record.submitted))
    lookups = evaluated + cache_hits
    return {
        "jobs": {
            "total": len(records),
            "by_state": by_state,
            "served": served,
        },
        "queue": {
            "depth": store.queued_count(),
            "in_flight": store.running_count(),
        },
        "cache": {
            "evaluated": evaluated,
            "cache_hits": cache_hits,
            "hit_ratio": (
                round(cache_hits / lookups, 6) if lookups else None
            ),
        },
        "pruned": pruned,
        "latency_s": {
            "p50": percentile(latencies, 0.50),
            "p99": percentile(latencies, 0.99),
            "samples": len(latencies),
        },
        "server": dict(counters or {}),
    }


__all__ = ["METRICS_SCHEMA", "percentile", "service_metrics"]
