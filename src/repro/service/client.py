"""Thin stdlib client for the exploration farm HTTP API.

Wraps ``urllib.request`` with the service's envelope conventions: every
call returns the envelope's ``results`` body (plus ``meta`` where it
matters), HTTP errors become :class:`~repro.errors.ServiceError` with
the status attached, and :meth:`ServiceClient.result_run` reconstructs a
first-class :class:`~repro.exploration.ExplorationRun` from the wire —
byte-identical to the run an in-process campaign would have produced,
which is what makes ``repro explore --remote`` a drop-in transport.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, Iterable, List, Optional

from repro.errors import ServiceError
from repro.exploration import ExplorationRun
from repro.service.jobs import TERMINAL_STATES, JobRequest

#: Default per-request socket timeout (server handlers never block on
#: campaign execution, so responses are prompt even under load).
DEFAULT_TIMEOUT_S = 30.0


class ServiceClient:
    """One farm endpoint, e.g. ``ServiceClient("http://127.0.0.1:8753")``."""

    def __init__(self, base_url: str, timeout_s: float = DEFAULT_TIMEOUT_S):
        self.base_url = base_url.rstrip("/")
        if "://" not in self.base_url:
            self.base_url = "http://" + self.base_url
        self.timeout_s = timeout_s

    # -- transport -----------------------------------------------------

    def _call(
        self,
        verb: str,
        path: str,
        body: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        data = (
            json.dumps(body, sort_keys=True).encode("utf-8")
            if body is not None
            else None
        )
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=verb,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                envelope = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            detail = f"HTTP {exc.code}"
            try:
                payload = json.loads(exc.read().decode("utf-8"))
                detail = payload.get("results", {}).get("error", detail)
            except Exception:
                pass
            raise ServiceError(detail, status=exc.code)
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {exc.reason}"
            )
        except (ValueError, OSError) as exc:
            raise ServiceError(f"bad response from {self.base_url}: {exc}")
        if not isinstance(envelope, dict) or "results" not in envelope:
            raise ServiceError(
                f"response from {self.base_url} is not a repro envelope"
            )
        return envelope

    # -- API -----------------------------------------------------------

    def submit(self, request: JobRequest) -> Dict[str, object]:
        """Submit a campaign; returns the job's public record (its
        ``state`` is ``done`` when the cache fast path served it)."""
        return self._call("POST", "/v1/jobs", request.to_json_dict())["results"]

    def job(self, job_id: str) -> Dict[str, object]:
        return self._call("GET", f"/v1/jobs/{job_id}")["results"]

    def jobs(self, state: Optional[str] = None) -> List[Dict[str, object]]:
        path = "/v1/jobs" + (f"?state={state}" if state else "")
        return self._call("GET", path)["results"]

    def result(self, job_id: str) -> Dict[str, object]:
        """The finished campaign's full ``repro.explore/1`` envelope."""
        return self._call("GET", f"/v1/jobs/{job_id}/result")

    def result_run(self, job_id: str) -> ExplorationRun:
        """The finished campaign as a live :class:`ExplorationRun`."""
        return ExplorationRun.from_json_dict(self.result(job_id)["results"])

    def cancel(self, job_id: str) -> Dict[str, object]:
        envelope = self._call("POST", f"/v1/jobs/{job_id}/cancel")
        record = dict(envelope["results"])
        record["cancel"] = (envelope.get("meta") or {}).get("cancel")
        return record

    def metrics(self) -> Dict[str, object]:
        return self._call("GET", "/v1/metrics")["results"]

    def health(self) -> Dict[str, object]:
        return self._call("GET", "/v1/health")["results"]

    def wait(
        self,
        job_id: str,
        timeout_s: Optional[float] = None,
        poll_s: float = 0.25,
        on_poll=None,
    ) -> Dict[str, object]:
        """Poll until the job is terminal; returns its final record.

        ``on_poll`` (record -> None), when given, fires after every
        status read — the CLI uses it for progress lines.  Raises
        ``ServiceError`` on timeout with the last seen state attached.
        """
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        while True:
            record = self.job(job_id)
            if on_poll is not None:
                on_poll(record)
            if record.get("state") in TERMINAL_STATES:
                return record
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"timed out waiting for job {job_id} "
                    f"(last state: {record.get('state')})"
                )
            time.sleep(poll_s)

    def submit_and_wait(
        self,
        request: JobRequest,
        timeout_s: Optional[float] = None,
        poll_s: float = 0.25,
        on_poll=None,
    ) -> Dict[str, object]:
        """Submit, then :meth:`wait`; fast-path results skip the poll."""
        record = self.submit(request)
        if record.get("state") in TERMINAL_STATES:
            return record
        return self.wait(
            record["id"], timeout_s=timeout_s, poll_s=poll_s, on_poll=on_poll
        )


def submit_specs(
    base_url: str,
    specs: Iterable,
    **request_fields,
) -> Dict[str, object]:
    """Convenience one-shot: build a request from specs and submit it."""
    client = ServiceClient(base_url)
    return client.submit(JobRequest(specs=tuple(specs), **request_fields))


__all__ = ["DEFAULT_TIMEOUT_S", "ServiceClient", "submit_specs"]
