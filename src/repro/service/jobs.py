"""Job model of the exploration service: requests, records, states.

A **job** is one exploration campaign submitted to the service: a list
of candidate specs plus the campaign policy (worker fan-out, fault
tolerance, injected worker faults, static pruning, checkpointing).  The
request is encoded entirely by value — the same canonical JSON that the
in-process engine hashes — so a job's :meth:`JobRequest.digest` is a
content address: two identical submissions share one digest, and the
service evaluates the campaign once while every other submission is
served from the content-addressed result cache.

The on-disk/over-the-wire shape is the ``repro.job/1`` envelope body
(see ``docs/service.md``): a :class:`JobRecord` with the lifecycle state
machine ``queued -> running -> done | failed | cancelled``.  Records are
deliberately small — the full campaign result JSON lives in a separate
spool file — so listing and polling stay cheap at thousands of jobs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ServiceError
from repro.exploration import (
    CandidateSpec,
    PruneConfig,
    SupervisorConfig,
    WorkerFaultPlan,
    parse_worker_faults,
    resolve_builder,
)

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a job can never leave.
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})
#: Every valid state, for validation of spool records.
ALL_STATES = frozenset({QUEUED, RUNNING}) | TERMINAL_STATES

#: How a finished job's result was produced (the ``served`` field):
#: ``evaluated`` — at least one candidate was simulated for this job;
#: ``cache`` — every candidate came out of the content-addressed cache
#: (including the submit-time fast path that never queues the job).
SERVED_EVALUATED = "evaluated"
SERVED_CACHE = "cache"

#: Ceiling on per-job campaign fan-out accepted over the wire.
MAX_JOB_WORKERS = 16


@dataclass(frozen=True)
class JobRequest:
    """One submitted campaign, by value.

    ``specs`` carry their presentation labels separately from the
    canonical spec encoding (labels are excluded from spec digests, so
    they ride alongside).  ``mode`` is presentation-only metadata for
    result rendering (``mappings`` or ``faults`` — which extra columns
    the text table shows).
    """

    specs: tuple                      # Tuple[CandidateSpec, ...]
    workers: int = 0
    mode: str = "mappings"
    timeout_s: Optional[float] = None
    max_retries: int = 2
    quarantine_after: int = 3
    worker_faults: tuple = ()         # Tuple[str, ...] "INDEX:MODE[:COUNT]"
    prune_static: bool = False
    prune_margin: Optional[float] = None
    checkpoint_every_events: Optional[int] = None
    label: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.specs:
            raise ServiceError("a job needs at least one candidate spec")
        if not 0 <= self.workers <= MAX_JOB_WORKERS:
            raise ServiceError(
                f"workers must be in [0, {MAX_JOB_WORKERS}], "
                f"got {self.workers}"
            )
        if self.mode not in ("mappings", "faults"):
            raise ServiceError(f"unknown job mode {self.mode!r}")
        for spec in self.specs:
            if spec.digest() is None:
                raise ServiceError(
                    "service jobs need builders importable by name "
                    "('module:callable'); got an unnamed builder"
                )

    # -- canonical encoding / hashing ----------------------------------

    def to_json_dict(self) -> Dict[str, object]:
        """The wire shape (the body of a ``POST /v1/jobs``)."""
        return {
            "specs": [
                {"spec": spec.to_json_dict(), "label": spec.label}
                for spec in self.specs
            ],
            "workers": self.workers,
            "mode": self.mode,
            "supervisor": {
                "timeout_s": self.timeout_s,
                "max_retries": self.max_retries,
                "quarantine_after": self.quarantine_after,
            },
            "worker_faults": list(self.worker_faults),
            "prune": (
                {"margin": self.prune_margin} if self.prune_static else None
            ),
            "checkpoint_every_events": self.checkpoint_every_events,
            "label": self.label,
        }

    @classmethod
    def from_json_dict(cls, data: object) -> "JobRequest":
        """Parse and validate a submission body (raises ServiceError)."""
        if not isinstance(data, dict):
            raise ServiceError("job request body must be a JSON object")
        entries = data.get("specs")
        if not isinstance(entries, list) or not entries:
            raise ServiceError("job request needs a non-empty 'specs' list")
        specs = []
        for position, entry in enumerate(entries):
            if not isinstance(entry, dict) or "spec" not in entry:
                raise ServiceError(
                    f"specs[{position}] must be an object with a 'spec' key"
                )
            try:
                specs.append(
                    CandidateSpec.from_json_dict(
                        entry["spec"], label=str(entry.get("label", ""))
                    )
                )
            except Exception as exc:
                raise ServiceError(f"specs[{position}]: {exc}")
        supervisor = data.get("supervisor") or {}
        if not isinstance(supervisor, dict):
            raise ServiceError("'supervisor' must be an object")
        prune = data.get("prune")
        if prune is not None and not isinstance(prune, dict):
            raise ServiceError("'prune' must be an object or null")
        faults = data.get("worker_faults") or []
        if not isinstance(faults, list):
            raise ServiceError("'worker_faults' must be a list of strings")
        try:
            request = cls(
                specs=tuple(specs),
                workers=int(data.get("workers", 0)),
                mode=str(data.get("mode", "mappings")),
                timeout_s=(
                    float(supervisor["timeout_s"])
                    if supervisor.get("timeout_s") is not None
                    else None
                ),
                max_retries=int(supervisor.get("max_retries", 2)),
                quarantine_after=int(supervisor.get("quarantine_after", 3)),
                worker_faults=tuple(str(entry) for entry in faults),
                prune_static=prune is not None,
                prune_margin=(
                    float(prune["margin"])
                    if prune is not None and prune.get("margin") is not None
                    else None
                ),
                checkpoint_every_events=(
                    int(data["checkpoint_every_events"])
                    if data.get("checkpoint_every_events") is not None
                    else None
                ),
                label=str(data.get("label", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"malformed job request: {exc}")
        # fail fast on policy the engine would reject at run time
        try:
            request.supervisor_config()
            request.worker_fault_plan()
            request.prune_config()
        except Exception as exc:
            raise ServiceError(f"invalid campaign policy: {exc}", status=400)
        return request

    def digest(self) -> str:
        """Content address of the campaign (labels excluded).

        Two submissions with the same digest evaluate the same design
        points under the same policy, so the service runs one of them and
        serves the rest from the shared result cache.
        """
        body = self.to_json_dict()
        del body["label"]
        for entry in body["specs"]:
            del entry["label"]
        canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # -- engine-side materialisation -----------------------------------

    def validate_builders(self) -> None:
        """Resolve every builder reference now (submission-time 400s)."""
        for spec in self.specs:
            resolve_builder(spec.builder)

    def supervisor_config(self) -> SupervisorConfig:
        return SupervisorConfig(
            timeout_s=self.timeout_s,
            max_retries=self.max_retries,
            quarantine_after=self.quarantine_after,
        )

    def worker_fault_plan(self) -> Optional[WorkerFaultPlan]:
        return parse_worker_faults(list(self.worker_faults))

    def prune_config(self) -> Optional[PruneConfig]:
        if not self.prune_static:
            return None
        if self.prune_margin is not None:
            return PruneConfig(margin=self.prune_margin)
        return PruneConfig()


@dataclass
class JobRecord:
    """One job's spool record — the ``repro.job/1`` envelope body.

    The record is the source of truth for the job's lifecycle; the full
    campaign result JSON lives next to it in the spool's ``results/``
    directory and is only referenced here by the ``summary`` block
    (evaluated/cache-hit counters and wall time) so ``GET /v1/jobs`` and
    ``/v1/metrics`` never have to read result files.
    """

    id: str
    state: str
    request: Dict[str, object]        # JobRequest.to_json_dict() echo
    digest: str
    submitted: float                  # unix timestamps (0.0 = not yet)
    started: float = 0.0
    finished: float = 0.0
    attempts: int = 0
    owner: str = ""                   # worker identity while running
    served: Optional[str] = None      # SERVED_EVALUATED | SERVED_CACHE
    error: Optional[str] = None       # failure detail (state == failed)
    summary: Optional[Dict[str, object]] = None

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "id": self.id,
            "state": self.state,
            "request": self.request,
            "digest": self.digest,
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "attempts": self.attempts,
            "owner": self.owner,
            "served": self.served,
            "error": self.error,
            "summary": self.summary,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "JobRecord":
        state = data.get("state")
        if state not in ALL_STATES:
            raise ServiceError(f"job record has unknown state {state!r}")
        return cls(
            id=str(data["id"]),
            state=str(state),
            request=dict(data["request"]),
            digest=str(data["digest"]),
            submitted=float(data["submitted"]),
            started=float(data.get("started", 0.0)),
            finished=float(data.get("finished", 0.0)),
            attempts=int(data.get("attempts", 0)),
            owner=str(data.get("owner", "")),
            served=data.get("served"),
            error=data.get("error"),
            summary=data.get("summary"),
        )

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def public_dict(self) -> Dict[str, object]:
        """The status-endpoint view (request echoed without spec bodies)."""
        body = self.to_json_dict()
        request = dict(self.request)
        request["specs"] = len(self.request.get("specs", []))
        body["request"] = request
        return body


def run_summary(run_json: Dict[str, object]) -> Dict[str, object]:
    """The small per-job counters block kept on the record.

    Everything ``/v1/metrics`` aggregates across jobs comes from here, so
    computing service-wide cache-hit ratios never opens a result file.
    """
    supervisor = run_json.get("supervisor", {})
    return {
        "candidates": run_json.get("candidates_total", 0),
        "evaluated": run_json.get("evaluated", 0),
        "cache_hits": run_json.get("cache_hits", 0),
        "pruned": (run_json.get("pruned") or {}).get("count", 0),
        "quarantined": len(supervisor.get("quarantine", [])),
        "wall_s": run_json.get("wall_s", 0.0),
    }


def job_sort_key(record: JobRecord):
    """Submission order: timestamp, then id (ids embed a creation nonce)."""
    return (record.submitted, record.id)


def validate_job_id(job_id: str) -> str:
    """Reject ids that could escape the spool directory."""
    if (
        not job_id
        or len(job_id) > 64
        or not all(ch.isalnum() or ch in "-_" for ch in job_id)
    ):
        raise ServiceError(f"malformed job id {job_id!r}", status=400)
    return job_id


__all__ = [
    "ALL_STATES",
    "CANCELLED",
    "DONE",
    "FAILED",
    "JobRecord",
    "JobRequest",
    "MAX_JOB_WORKERS",
    "QUEUED",
    "RUNNING",
    "SERVED_CACHE",
    "SERVED_EVALUATED",
    "TERMINAL_STATES",
    "job_sort_key",
    "run_summary",
    "validate_job_id",
]
