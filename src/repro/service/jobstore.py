"""Persistent, crash-safe job spool shared by servers and workers.

The spool is a plain directory tree — no database, no broker — so any
number of worker processes (on any number of machines, when the spool
and the result cache sit on a shared filesystem) can cooperate with any
number of HTTP frontends, and a killed process loses nothing::

    <spool>/
      jobs/<id>.json       job records (atomic temp-file + os.replace)
      results/<id>.json    full campaign result JSON per finished job
      index/queued/<id>    empty state-marker files: O(1) queue depth,
      index/running/<id>   claim scans without reading job records
      claims/<id>          O_EXCL claim files — exactly one owner may
                           transition a job out of ``queued``
      leases/<id>.json     worker heartbeat leases for running jobs
      active/<digest>      in-flight request-digest markers (dedupe)
      cancel/<id>          cooperative cancel-request markers

Every write goes through :func:`repro.util.fsio.write_json_atomic` (or
is an empty marker file), so a reader never sees torn JSON and a crash
at any instant leaves either the old or the new state.  The markers are
best-effort acceleration — the job record is always the source of
truth — and :meth:`JobStore.recover` reconciles them after a crash.

Concurrency contract:

* **Claims** serialise state transitions per job: ``O_CREAT|O_EXCL`` on
  ``claims/<id>`` has exactly one winner across processes and machines.
* **Leases** make crashes detectable: a running job whose lease expired
  is returned to ``queued`` by :meth:`recover` (and by any worker that
  finds it), so a SIGKILL-ed worker forfeits only its in-flight attempt.
* **Digest markers** prevent *concurrent duplicate evaluation*: while a
  job for digest D runs, other queued jobs with digest D are skipped;
  once it finishes they run against a warm content-addressed cache and
  evaluate nothing.  The marker is an optimisation, never a correctness
  requirement — a stale marker is stolen, and the worst case of every
  race is duplicated work against an idempotent cache, never a wrong or
  torn result.
"""

from __future__ import annotations

import os
import time
import uuid
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import ServiceError
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobRecord,
    JobRequest,
    job_sort_key,
    run_summary,
    validate_job_id,
)
from repro.util.fsio import ensure_parent, write_json_atomic

import json


class JobStore:
    """One spool directory (see module docstring for the layout)."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.results_dir = self.root / "results"
        self.queued_dir = self.root / "index" / "queued"
        self.running_dir = self.root / "index" / "running"
        self.claims_dir = self.root / "claims"
        self.leases_dir = self.root / "leases"
        self.active_dir = self.root / "active"
        self.cancel_dir = self.root / "cancel"
        for directory in (
            self.jobs_dir,
            self.results_dir,
            self.queued_dir,
            self.running_dir,
            self.claims_dir,
            self.leases_dir,
            self.active_dir,
            self.cancel_dir,
        ):
            # ensure_parent is the repo-wide invariant for artefact
            # writers; pointing it at a file inside the directory creates
            # the directory itself (nested spool paths included)
            ensure_parent(directory / ".keep")

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------

    def job_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    def result_path(self, job_id: str) -> Path:
        return self.results_dir / f"{job_id}.json"

    @staticmethod
    def new_job_id() -> str:
        """Time-prefixed unique id — lexicographic order ~ submission order."""
        return f"j{time.time_ns():016x}-{uuid.uuid4().hex[:8]}"

    # ------------------------------------------------------------------
    # submission and lookup
    # ------------------------------------------------------------------

    def submit(self, request: JobRequest) -> JobRecord:
        """Spool a new queued job; returns its record."""
        record = JobRecord(
            id=self.new_job_id(),
            state=QUEUED,
            request=request.to_json_dict(),
            digest=request.digest(),
            submitted=time.time(),
        )
        write_json_atomic(self.job_path(record.id), record.to_json_dict())
        self._touch(self.queued_dir / record.id)
        return record

    def submit_finished(
        self,
        request: JobRequest,
        state: str,
        run_json: Optional[Dict[str, object]] = None,
        served: Optional[str] = None,
        error: Optional[str] = None,
    ) -> JobRecord:
        """Spool a job that is already terminal (the cache fast path)."""
        now = time.time()
        record = JobRecord(
            id=self.new_job_id(),
            state=state,
            request=request.to_json_dict(),
            digest=request.digest(),
            submitted=now,
            started=now,
            finished=now,
            served=served,
            error=error,
            summary=run_summary(run_json) if run_json is not None else None,
        )
        if run_json is not None:
            write_json_atomic(self.result_path(record.id), run_json)
        write_json_atomic(self.job_path(record.id), record.to_json_dict())
        return record

    def get(self, job_id: str) -> JobRecord:
        """The job's record (raises ``ServiceError(status=404)`` if absent)."""
        validate_job_id(job_id)
        try:
            with open(self.job_path(job_id), "r", encoding="utf-8") as handle:
                return JobRecord.from_json_dict(json.load(handle))
        except FileNotFoundError:
            raise ServiceError(f"no such job: {job_id}", status=404)
        except (OSError, ValueError, KeyError) as exc:
            raise ServiceError(f"unreadable job record {job_id}: {exc}")

    def result(self, job_id: str) -> Dict[str, object]:
        """A finished job's full campaign result JSON."""
        record = self.get(job_id)
        if record.state != DONE:
            raise ServiceError(
                f"job {job_id} has no result (state: {record.state})",
                status=409 if not record.terminal else 404,
            )
        try:
            with open(self.result_path(job_id), "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError) as exc:
            raise ServiceError(f"unreadable result for {job_id}: {exc}")

    def list(self, state: Optional[str] = None) -> List[JobRecord]:
        """Every readable job record, in submission order."""
        records = []
        for name in os.listdir(self.jobs_dir):
            if not name.endswith(".json"):
                continue
            try:
                records.append(self.get(name[: -len(".json")]))
            except ServiceError:
                continue  # torn/foreign file: skip, recover() reports it
        if state is not None:
            records = [record for record in records if record.state == state]
        return sorted(records, key=job_sort_key)

    def queued_count(self) -> int:
        return self._count(self.queued_dir)

    def running_count(self) -> int:
        return self._count(self.running_dir)

    # ------------------------------------------------------------------
    # worker protocol: claim -> heartbeat -> finish | release
    # ------------------------------------------------------------------

    def claim_next(
        self, owner: str, lease_s: float
    ) -> Optional[JobRecord]:
        """Claim the oldest runnable queued job for ``owner``.

        Skips jobs whose request digest is already being evaluated by a
        live job (the dedupe that turns N identical concurrent
        submissions into one evaluation plus N cache serves).  Returns
        None when nothing is claimable right now.
        """
        for job_id in sorted(os.listdir(self.queued_dir)):
            if not self._try_claim(job_id):
                continue
            try:
                record = self.get(job_id)
            except ServiceError:
                self._remove(self.queued_dir / job_id)
                self._release_claim(job_id)
                continue
            if record.state != QUEUED:
                self._sync_markers(record)
                self._release_claim(job_id)
                continue
            if self.cancel_requested(job_id):
                self.finish(job_id, CANCELLED)
                continue
            if not self._acquire_digest(record):
                self._release_claim(job_id)
                continue
            record.state = RUNNING
            record.started = time.time()
            record.owner = owner
            record.attempts += 1
            self.heartbeat(job_id, owner, lease_s, _reset=True)
            write_json_atomic(self.job_path(job_id), record.to_json_dict())
            self._touch(self.running_dir / job_id)
            self._remove(self.queued_dir / job_id)
            return record
        return None

    def heartbeat(
        self, job_id: str, owner: str, lease_s: float, _reset: bool = False
    ) -> None:
        """Extend the worker's lease on a running job."""
        beats = 0
        if not _reset:
            lease = self._read_lease(job_id)
            beats = int(lease.get("heartbeats", 0)) if lease else 0
        write_json_atomic(
            self.leases_dir / f"{job_id}.json",
            {
                "owner": owner,
                "expires": time.time() + lease_s,
                "heartbeats": beats + (0 if _reset else 1),
            },
        )

    def lease_of(self, job_id: str) -> Optional[Dict[str, object]]:
        """The job's current lease (owner, expiry, heartbeat count)."""
        return self._read_lease(job_id)

    def finish(
        self,
        job_id: str,
        state: str,
        run_json: Optional[Dict[str, object]] = None,
        served: Optional[str] = None,
        error: Optional[str] = None,
    ) -> JobRecord:
        """Transition a claimed job to a terminal state.

        The result file is published *before* the record flips to
        ``done``, so a crash between the two writes re-runs the job and
        atomically overwrites the result with byte-identical content
        (the campaign is deterministic) — a reader that sees ``done``
        always finds a complete result.
        """
        record = self.get(job_id)
        if state not in (DONE, FAILED, CANCELLED):
            raise ServiceError(f"finish() needs a terminal state, got {state}")
        if run_json is not None:
            write_json_atomic(self.result_path(job_id), run_json)
            record.summary = run_summary(run_json)
        record.state = state
        record.finished = time.time()
        record.served = served
        record.error = error
        write_json_atomic(self.job_path(job_id), record.to_json_dict())
        self._remove(self.queued_dir / job_id)
        self._remove(self.running_dir / job_id)
        self._remove(self.leases_dir / f"{job_id}.json")
        self._remove(self.cancel_dir / job_id)
        self._release_digest(record)
        self._release_claim(job_id)
        return record

    def release(self, job_id: str) -> JobRecord:
        """Return a claimed/running job to the queue (drain, crash repair).

        The attempt count is kept — a job endlessly bounced by crashing
        workers stays visible in its record.
        """
        record = self.get(job_id)
        record.state = QUEUED
        record.owner = ""
        write_json_atomic(self.job_path(job_id), record.to_json_dict())
        self._touch(self.queued_dir / job_id)
        self._remove(self.running_dir / job_id)
        self._remove(self.leases_dir / f"{job_id}.json")
        self._release_claim(job_id)
        return record

    # ------------------------------------------------------------------
    # cancellation
    # ------------------------------------------------------------------

    def cancel(self, job_id: str) -> Tuple[JobRecord, str]:
        """Cancel a job; returns ``(record, disposition)``.

        Dispositions: ``"cancelled"`` (a queued job, cancelled here and
        now), ``"requested"`` (a running job — the worker aborts at its
        next candidate boundary), ``"terminal"`` (nothing to do).
        """
        record = self.get(job_id)
        if record.terminal:
            return record, "terminal"
        if self._try_claim(job_id):
            record = self.get(job_id)
            if record.terminal:  # finished between the read and the claim
                self._release_claim(job_id)
                return record, "terminal"
            return self.finish(job_id, CANCELLED), "cancelled"
        # a worker holds the claim: leave a cooperative cancel request
        self._touch(self.cancel_dir / job_id)
        return record, "requested"

    def cancel_requested(self, job_id: str) -> bool:
        return (self.cancel_dir / job_id).exists()

    def reap_expired(self, grace_s: float = 0.0) -> int:
        """Requeue running jobs whose worker stopped heartbeating.

        The lease expiry already encodes one lease period past the last
        heartbeat; ``grace_s`` adds slack on top (callers typically pass
        another lease period, so a worker must go silent for two periods
        — i.e. across two candidate boundaries — before its job is taken
        away).  If the worker was merely slow, the worst case is a
        duplicate evaluation against the idempotent cache: the record
        ends ``done`` either way, with identical bytes.  Returns the
        number of jobs requeued.
        """
        requeued = 0
        now = time.time()
        for job_id in sorted(os.listdir(self.running_dir)):
            try:
                record = self.get(job_id)
            except ServiceError:
                self._remove(self.running_dir / job_id)
                continue
            if record.state != RUNNING:
                self._sync_markers(record)
                continue
            lease = self._read_lease(job_id)
            expires = float(lease["expires"]) if lease else 0.0
            if expires + grace_s >= now:
                continue
            self.release(job_id)
            requeued += 1
        return requeued

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------

    def recover(self, lease_grace_s: float = 0.0) -> Dict[str, object]:
        """Reconcile the spool after a crash or unclean shutdown.

        Re-queues running jobs whose lease expired more than
        ``lease_grace_s`` ago (their worker is gone), removes stale
        claims and digest markers, rebuilds the state-marker index from
        the job records, and reports unreadable records instead of
        failing on them.  Safe to run while live workers hold fresh
        leases — their jobs are left alone.
        """
        stats = {"requeued": 0, "unreadable": [], "stale_markers": 0}
        now = time.time()
        seen = set()
        for name in sorted(os.listdir(self.jobs_dir)):
            if not name.endswith(".json"):
                continue
            job_id = name[: -len(".json")]
            seen.add(job_id)
            try:
                record = self.get(job_id)
            except ServiceError as exc:
                stats["unreadable"].append(f"{job_id}: {exc}")
                continue
            if record.state == RUNNING:
                lease = self._read_lease(job_id)
                expires = float(lease["expires"]) if lease else 0.0
                if expires + lease_grace_s < now:
                    self.release(job_id)
                    stats["requeued"] += 1
                    continue
            elif record.state == QUEUED:
                # a claim without a live lease is a worker that died
                # between claiming and running; free the job again
                claim = self.claims_dir / job_id
                if claim.exists() and self._read_lease(job_id) is None:
                    self._release_claim(job_id)
                    stats["stale_markers"] += 1
            self._sync_markers(record)
        # markers pointing at deleted/foreign jobs
        for directory in (self.queued_dir, self.running_dir):
            for job_id in os.listdir(directory):
                if job_id not in seen:
                    self._remove(directory / job_id)
                    stats["stale_markers"] += 1
        # digest markers whose owning job is gone or terminal
        for digest in os.listdir(self.active_dir):
            owner_id = self._read_text(self.active_dir / digest)
            stale = True
            if owner_id and owner_id in seen:
                try:
                    stale = self.get(owner_id).terminal
                except ServiceError:
                    stale = True
            if stale:
                self._remove(self.active_dir / digest)
                stats["stale_markers"] += 1
        return stats

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _try_claim(self, job_id: str) -> bool:
        try:
            fd = os.open(
                self.claims_dir / job_id,
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
            )
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def _release_claim(self, job_id: str) -> None:
        self._remove(self.claims_dir / job_id)

    def _acquire_digest(self, record: JobRecord) -> bool:
        """Own the in-flight marker for this request digest, or back off."""
        marker = self.active_dir / record.digest
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            owner_id = self._read_text(marker)
            if owner_id == record.id:
                return True  # re-claim after a crash mid-run
            try:
                owner = self.get(owner_id) if owner_id else None
            except ServiceError:
                owner = None
            if owner is not None and not owner.terminal:
                return False  # live twin in flight: wait for its cache
            # stale marker: steal it (atomic replace)
            tmp = marker.with_name(marker.name + f".{record.id}.tmp")
            tmp.write_text(record.id, encoding="ascii")
            os.replace(tmp, marker)
            return True
        with os.fdopen(fd, "w", encoding="ascii") as handle:
            handle.write(record.id)
        return True

    def _release_digest(self, record: JobRecord) -> None:
        marker = self.active_dir / record.digest
        if self._read_text(marker) == record.id:
            self._remove(marker)

    def _sync_markers(self, record: JobRecord) -> None:
        """Make the marker index agree with the record (truth wins)."""
        wanted = {
            QUEUED: self.queued_dir,
            RUNNING: self.running_dir,
        }.get(record.state)
        for directory in (self.queued_dir, self.running_dir):
            if directory is wanted:
                self._touch(directory / record.id)
            else:
                self._remove(directory / record.id)

    def _read_lease(self, job_id: str) -> Optional[Dict[str, object]]:
        try:
            with open(
                self.leases_dir / f"{job_id}.json", "r", encoding="utf-8"
            ) as handle:
                lease = json.load(handle)
            return lease if isinstance(lease, dict) else None
        except (OSError, ValueError):
            return None

    @staticmethod
    def _read_text(path: Path) -> Optional[str]:
        try:
            return path.read_text(encoding="ascii").strip()
        except OSError:
            return None

    @staticmethod
    def _touch(path: Path) -> None:
        try:
            fd = os.open(path, os.O_CREAT | os.O_WRONLY)
            os.close(fd)
        except OSError:
            pass

    @staticmethod
    def _remove(path: Path) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    @staticmethod
    def _count(directory: Path) -> int:
        try:
            return len(os.listdir(directory))
        except OSError:
            return 0
