"""Exploration farm service: async job queue over the campaign engine.

Turns the in-process exploration engine into a shared service: an HTTP
frontend (:mod:`repro.service.server`) accepts campaign submissions as
``repro.job/1`` records into a crash-safe filesystem spool
(:mod:`repro.service.jobstore`); worker loops
(:mod:`repro.service.worker`) — in-server threads, ``repro work``
processes, or whole extra machines sharing the spool and the
content-addressed result cache — claim jobs under heartbeat leases and
run them through the unchanged engine stack; the stdlib client
(:mod:`repro.service.client`) round-trips results byte-identically, so
``repro explore --remote URL`` is a transport swap, not a semantics
change.  See ``docs/service.md``.
"""

from repro.service.client import ServiceClient, submit_specs
from repro.service.jobs import (
    ALL_STATES,
    CANCELLED,
    DONE,
    FAILED,
    MAX_JOB_WORKERS,
    QUEUED,
    RUNNING,
    SERVED_CACHE,
    SERVED_EVALUATED,
    TERMINAL_STATES,
    JobRecord,
    JobRequest,
)
from repro.service.jobstore import JobStore
from repro.service.metrics import service_metrics
from repro.service.server import DEFAULT_MAX_QUEUE, ExplorationService
from repro.service.worker import (
    DEFAULT_LEASE_S,
    WorkerPool,
    execute_job,
    fully_cached,
    run_worker_loop,
)

__all__ = [
    "ALL_STATES",
    "CANCELLED",
    "DEFAULT_LEASE_S",
    "DEFAULT_MAX_QUEUE",
    "DONE",
    "ExplorationService",
    "FAILED",
    "JobRecord",
    "JobRequest",
    "JobStore",
    "MAX_JOB_WORKERS",
    "QUEUED",
    "RUNNING",
    "SERVED_CACHE",
    "SERVED_EVALUATED",
    "ServiceClient",
    "TERMINAL_STATES",
    "WorkerPool",
    "execute_job",
    "fully_cached",
    "run_worker_loop",
    "service_metrics",
    "submit_specs",
]
