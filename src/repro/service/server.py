"""The exploration farm's HTTP frontend (``repro serve``).

Stdlib only: a :class:`http.server.ThreadingHTTPServer` whose handler
speaks the same JSON envelope as every other ``repro`` surface
(:mod:`repro.util.jsonout`).  The server owns a :class:`JobStore` spool
and an in-process :class:`WorkerPool`; any number of additional
``repro work`` processes (or whole machines, over a shared filesystem)
can drain the same spool concurrently.

Routes (all under ``/v1``)::

    POST /v1/jobs             submit a campaign  -> 202 queued | 200 fast
    GET  /v1/jobs[?state=s]   job ledger (public records, no spec bodies)
    GET  /v1/jobs/<id>        one job's status
    GET  /v1/jobs/<id>/result finished campaign (repro.explore/1)
    POST /v1/jobs/<id>/cancel cancel queued / request cancel of running
    GET  /v1/metrics          repro.service-metrics/1 snapshot
    GET  /v1/health           liveness + queue depth

Submission semantics: a request whose every candidate is already in the
content-addressed cache is served *synchronously* (HTTP 200, job born
``done``/``cache``) without touching the queue; otherwise it is spooled
(HTTP 202) unless the queue is at ``max_queue``, which is a 429 with
``Retry-After`` — bounded saturation instead of unbounded memory.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.errors import ServiceError
from repro.exploration import run_candidates
from repro.service.jobs import DONE, FAILED, SERVED_CACHE, JobRequest
from repro.service.jobstore import JobStore
from repro.service.metrics import METRICS_SCHEMA, service_metrics
from repro.service.worker import WorkerPool, fully_cached
from repro.util.fsio import ensure_parent
from repro.util.jsonout import envelope

#: Largest accepted request body; campaigns are spec lists, not data.
MAX_BODY_BYTES = 32 * 1024 * 1024
#: Default submission-queue bound (tune with ``repro serve --max-queue``).
DEFAULT_MAX_QUEUE = 256


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the owning :class:`ExplorationService`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-farm/1"

    # -- plumbing ------------------------------------------------------

    @property
    def service(self) -> "ExplorationService":
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, fmt: str, *args) -> None:
        self.service.log(f"{self.address_string()} {fmt % args}")

    def _send_json(self, status: int, payload: Dict[str, object],
                   retry_after: Optional[int] = None) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", str(retry_after))
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass

    def _send_error(self, status: int, message: str,
                    retry_after: Optional[int] = None) -> None:
        self._send_json(
            status,
            envelope("service-error", {"error": message, "status": status}),
            retry_after=retry_after,
        )

    def _read_body(self) -> object:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ServiceError("request needs a JSON body", status=400)
        if length > MAX_BODY_BYTES:
            raise ServiceError(
                f"request body over {MAX_BODY_BYTES} bytes", status=413
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServiceError(f"body is not valid JSON: {exc}", status=400)

    def _route(self) -> Tuple[str, ...]:
        path = self.path.split("?", 1)[0].strip("/")
        return tuple(part for part in path.split("/") if part)

    def _query(self) -> Dict[str, str]:
        if "?" not in self.path:
            return {}
        pairs = {}
        for chunk in self.path.split("?", 1)[1].split("&"):
            if "=" in chunk:
                key, value = chunk.split("=", 1)
                pairs[key] = value
        return pairs

    # -- verbs ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def _dispatch(self, verb: str) -> None:
        try:
            parts = self._route()
            if not parts or parts[0] != "v1":
                raise ServiceError(f"unknown path {self.path!r}", status=404)
            parts = parts[1:]
            if verb == "POST" and parts == ("jobs",):
                return self._submit()
            if verb == "GET" and parts == ("jobs",):
                return self._list()
            if verb == "GET" and len(parts) == 2 and parts[0] == "jobs":
                return self._status(parts[1])
            if (
                verb == "GET"
                and len(parts) == 3
                and parts[0] == "jobs"
                and parts[2] == "result"
            ):
                return self._result(parts[1])
            if (
                verb == "POST"
                and len(parts) == 3
                and parts[0] == "jobs"
                and parts[2] == "cancel"
            ):
                return self._cancel(parts[1])
            if verb == "GET" and parts == ("metrics",):
                return self._metrics()
            if verb == "GET" and parts == ("health",):
                return self._health()
            raise ServiceError(
                f"no route for {verb} {self.path!r}", status=404
            )
        except ServiceError as exc:
            self._send_error(exc.status or 500, str(exc))
        except Exception as exc:  # never kill the connection thread
            self._send_error(500, f"internal error: {exc}")

    # -- endpoints -----------------------------------------------------

    def _submit(self) -> None:
        service = self.service
        try:
            request = JobRequest.from_json_dict(self._read_body())
        except ServiceError as exc:
            # model-level validation errors default to "your fault"
            raise ServiceError(str(exc), status=exc.status or 400)
        try:
            request.validate_builders()
        except Exception as exc:
            raise ServiceError(f"unresolvable builder: {exc}", status=400)
        if fully_cached(request, service.cache_dir):
            # serve warm campaigns synchronously; nothing to schedule
            run = run_candidates(
                list(request.specs),
                workers=0,
                cache_dir=service.cache_dir,
                supervisor=request.supervisor_config(),
            )
            record = service.store.submit_finished(
                request, DONE, run_json=run.to_json_dict(), served=SERVED_CACHE
            )
            service.count("fast_path")
            return self._send_json(
                200, envelope("job", record.public_dict())
            )
        if service.store.queued_count() >= service.max_queue:
            service.count("rejected")
            raise ServiceError(
                f"queue is full ({service.max_queue} jobs); retry later",
                status=429,
            )
        record = service.store.submit(request)
        service.count("submitted")
        service.pool.notify()
        self._send_json(202, envelope("job", record.public_dict()))

    def _list(self) -> None:
        state = self._query().get("state")
        records = self.service.store.list(state=state)
        self._send_json(
            200,
            envelope(
                "job-list",
                [record.public_dict() for record in records],
                meta={"count": len(records)},
            ),
        )

    def _status(self, job_id: str) -> None:
        record = self.service.store.get(job_id)
        self._send_json(200, envelope("job", record.public_dict()))

    def _result(self, job_id: str) -> None:
        record = self.service.store.get(job_id)
        if record.state == FAILED:
            raise ServiceError(
                f"job {job_id} failed: {record.error}", status=409
            )
        run_json = self.service.store.result(job_id)
        self._send_json(
            200,
            envelope(
                "explore",
                run_json,
                meta={"job": job_id, "served": record.served},
            ),
        )

    def _cancel(self, job_id: str) -> None:
        record, disposition = self.service.store.cancel(job_id)
        if disposition == "cancelled":
            self.service.count("cancelled")
        self._send_json(
            200,
            envelope(
                "job",
                record.public_dict(),
                meta={"cancel": disposition},
            ),
        )

    def _metrics(self) -> None:
        service = self.service
        self._send_json(
            200,
            envelope(
                METRICS_SCHEMA,
                service_metrics(service.store, service.counters_snapshot()),
            ),
        )

    def _health(self) -> None:
        store = self.service.store
        self._send_json(
            200,
            envelope(
                "service-health",
                {
                    "ok": True,
                    "queued": store.queued_count(),
                    "running": store.running_count(),
                    "uptime_s": round(self.service.uptime_s(), 3),
                },
            ),
        )


class ExplorationService:
    """One farm instance: spool + worker pool + HTTP frontend.

    ``pool_size=0`` runs a frontend-only server (submissions are drained
    by external ``repro work`` processes sharing the spool).
    """

    def __init__(
        self,
        spool_dir,
        cache_dir: Optional[str],
        host: str = "127.0.0.1",
        port: int = 0,
        pool_size: int = 1,
        max_queue: int = DEFAULT_MAX_QUEUE,
        lease_s: float = 60.0,
        log_path=None,
    ) -> None:
        if max_queue < 1:
            raise ServiceError(f"max queue must be >= 1, got {max_queue}")
        self.store = JobStore(spool_dir)
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.host = host
        self.port = port
        self.max_queue = max_queue
        self.pool = WorkerPool(
            self.store,
            self.cache_dir,
            pool_size=max(1, pool_size),
            lease_s=lease_s,
        )
        self._pool_enabled = pool_size > 0
        self._log_path = Path(log_path) if log_path is not None else None
        self._log_lock = threading.Lock()
        self._counters: Dict[str, int] = {
            "submitted": 0,
            "rejected": 0,
            "fast_path": 0,
            "cancelled": 0,
        }
        self._counter_lock = threading.Lock()
        self.lease_s = lease_s
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None
        self._reaper_stop = threading.Event()
        self._reaper: Optional[threading.Thread] = None
        self._started = time.monotonic()
        self.recovery: Dict[str, object] = {}

    # -- lifecycle -----------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Recover the spool, start workers, bind and serve; returns the
        bound ``(host, port)`` (port 0 picks a free one)."""
        self.recovery = self.store.recover()
        if self._pool_enabled:
            self.pool.start()
        self._httpd = ThreadingHTTPServer((self.host, self.port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.service = self  # type: ignore[attr-defined]
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-serve-http",
            daemon=True,
        )
        self._http_thread.start()
        # maintenance: jobs orphaned by a worker that died *after* this
        # server recovered (or whose lease was fresh at recovery time)
        # are requeued as soon as the lease goes two periods stale
        self._reaper = threading.Thread(
            target=self._reap_loop, name="repro-serve-reaper", daemon=True
        )
        self._reaper.start()
        self._started = time.monotonic()
        host, bound = self._httpd.server_address[:2]
        self.port = int(bound)
        self.log(
            f"serving on {host}:{self.port} "
            f"(spool={self.store.root}, cache={self.cache_dir}, "
            f"pool={self.pool.pool_size if self._pool_enabled else 0}, "
            f"max_queue={self.max_queue}, recovered={self.recovery})"
        )
        return str(host), self.port

    def drain(self, timeout_s: float = 30.0) -> bool:
        """Graceful shutdown: stop accepting, abort in-flight campaigns
        at the next candidate boundary (jobs return to ``queued`` with
        their leases released), and stop the HTTP loop.  Spool state is
        durable throughout, so a restart resumes exactly here."""
        self._reaper_stop.set()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        clean = self.pool.drain(timeout_s=timeout_s) if self._pool_enabled else True
        self.log(f"drained (clean={clean})")
        return clean

    def uptime_s(self) -> float:
        return time.monotonic() - self._started

    def _reap_loop(self) -> None:
        period = max(1.0, self.lease_s / 2.0)
        while not self._reaper_stop.wait(timeout=period):
            try:
                requeued = self.store.reap_expired(grace_s=self.lease_s)
            except Exception as exc:  # keep the maintenance loop alive
                self.log(f"reaper error: {exc}")
                continue
            if requeued:
                self.log(f"requeued {requeued} expired-lease job(s)")
                self.pool.notify()

    # -- counters and logging -----------------------------------------

    def count(self, key: str) -> None:
        with self._counter_lock:
            self._counters[key] = self._counters.get(key, 0) + 1

    def counters_snapshot(self) -> Dict[str, int]:
        with self._counter_lock:
            return dict(self._counters)

    def log(self, message: str) -> None:
        if self._log_path is None:
            return
        line = f"{time.strftime('%Y-%m-%dT%H:%M:%S')} {message}\n"
        with self._log_lock:
            ensure_parent(self._log_path)
            with open(self._log_path, "a", encoding="utf-8") as handle:
                handle.write(line)


__all__ = [
    "DEFAULT_MAX_QUEUE",
    "MAX_BODY_BYTES",
    "ExplorationService",
]
