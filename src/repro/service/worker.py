"""Worker side of the exploration farm: claim, evaluate, finish.

A worker is a loop over the spool: claim the oldest runnable job, turn
its :class:`~repro.service.jobs.JobRequest` back into a campaign, run it
through the existing engine (:func:`repro.exploration.run_candidates` —
the same supervisor, cache, pruning and fault-injection stack the
in-process CLI uses), and publish the result.  The engine's progress
callback doubles as the worker's control plane: between candidate
completions it extends the job's lease, honours cooperative cancel
requests, and aborts cleanly when the pool is draining.

:class:`WorkerPool` runs N such loops as daemon threads inside a server
process (``repro serve``); ``repro work`` runs one against a shared
spool from any machine.  The actual simulation fan-out still happens in
supervised *processes* under the engine, so pool threads spend their
time blocked in ``os`` waits, not holding the GIL.
"""

from __future__ import annotations

import socket
import os
import threading
import time
import traceback
from pathlib import Path
from typing import Dict, Optional

from repro.errors import JobCancelled, ServiceError
from repro.exploration import ResultCache, run_candidates
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    SERVED_CACHE,
    SERVED_EVALUATED,
    JobRecord,
    JobRequest,
)
from repro.service.jobstore import JobStore

#: Default lease duration; a worker heartbeats at candidate boundaries
#: and the lease must outlive the slowest single candidate (which is
#: itself bounded by the supervisor timeout when one is set).
DEFAULT_LEASE_S = 60.0


class DrainRequested(Exception):
    """Internal: the pool is shutting down; put the job back unfinished."""


def worker_identity(tag: str = "") -> str:
    """Stable-enough owner string: host, pid, and an optional pool tag."""
    host = socket.gethostname() or "unknown"
    return f"{host}:{os.getpid()}" + (f":{tag}" if tag else "")


def fully_cached(request: JobRequest, cache_dir: Optional[str]) -> bool:
    """True when every candidate of the request is already in the cache.

    This powers the submit-time fast path: a fully cached campaign is
    evaluated synchronously (serving only cache lookups) and never
    queued.  Campaigns with static pruning enabled are conservatively
    treated as not-fully-cached — pruning changes which candidates are
    even looked up, and deciding that here would duplicate the oracle.
    """
    if cache_dir is None or request.prune_static or request.worker_faults:
        return False
    cache = ResultCache(cache_dir)
    return all(cache.load(spec) is not None for spec in request.specs)


def execute_job(
    store: JobStore,
    record: JobRecord,
    cache_dir: Optional[str],
    owner: str,
    lease_s: float = DEFAULT_LEASE_S,
    stop: Optional[threading.Event] = None,
    checkpoint_root: Optional[Path] = None,
) -> JobRecord:
    """Run one claimed job to a terminal state (or release it on drain).

    The caller must already own the job's claim (via
    :meth:`JobStore.claim_next`).  Returns the final record; on drain the
    returned record is back in ``queued``.
    """
    try:
        request = JobRequest.from_json_dict(record.request)
    except ServiceError as exc:
        return store.finish(record.id, FAILED, error=f"bad request replay: {exc}")

    def control(outcome, done, total) -> None:
        if stop is not None and stop.is_set():
            raise DrainRequested()
        if store.cancel_requested(record.id):
            raise JobCancelled(f"job {record.id} cancelled by request")
        store.heartbeat(record.id, owner, lease_s)

    checkpoint_dir = None
    if request.checkpoint_every_events is not None and checkpoint_root is not None:
        # shared per-spool checkpoint area: a restarted worker resumes
        # the campaign's event checkpoints instead of re-simulating
        checkpoint_dir = str(checkpoint_root / record.digest[:16])
    try:
        run = run_candidates(
            list(request.specs),
            workers=request.workers,
            cache_dir=cache_dir,
            progress=control,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every_events=(
                request.checkpoint_every_events
                if request.checkpoint_every_events is not None
                else 5_000
            ),
            supervisor=request.supervisor_config(),
            worker_faults=request.worker_fault_plan(),
            prune_static=request.prune_config(),
        )
    except DrainRequested:
        return store.release(record.id)
    except JobCancelled:
        return store.finish(record.id, CANCELLED)
    except KeyboardInterrupt:
        return store.release(record.id)
    except Exception:
        return store.finish(
            record.id, FAILED, error=traceback.format_exc(limit=8)
        )
    if store.cancel_requested(record.id):
        # cancel arrived after the last candidate boundary; honour it
        return store.finish(record.id, CANCELLED)
    served = SERVED_EVALUATED if run.evaluated else SERVED_CACHE
    return store.finish(
        record.id, DONE, run_json=run.to_json_dict(), served=served
    )


class WorkerPool:
    """N claim-execute loops over one spool, drainable as a unit."""

    def __init__(
        self,
        store: JobStore,
        cache_dir: Optional[str],
        pool_size: int = 1,
        lease_s: float = DEFAULT_LEASE_S,
        poll_s: float = 0.2,
    ) -> None:
        if pool_size < 1:
            raise ServiceError(f"pool size must be >= 1, got {pool_size}")
        self.store = store
        self.cache_dir = cache_dir
        self.pool_size = pool_size
        self.lease_s = lease_s
        self.poll_s = poll_s
        self.checkpoint_root = store.root / "checkpoints"
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._threads = []
        self.completed = 0
        self._lock = threading.Lock()

    def start(self) -> None:
        for slot in range(self.pool_size):
            thread = threading.Thread(
                target=self._loop,
                args=(worker_identity(f"w{slot}"),),
                name=f"repro-worker-{slot}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def notify(self) -> None:
        """Poke idle loops after a submission (cuts poll latency)."""
        self._wake.set()

    def drain(self, timeout_s: float = 30.0) -> bool:
        """Stop claiming, abort in-flight jobs at the next candidate
        boundary (releasing them back to the queue), and join the loops.
        Returns True when every loop exited within the timeout."""
        self._stop.set()
        self._wake.set()
        deadline = time.monotonic() + timeout_s
        alive = False
        for thread in self._threads:
            remaining = deadline - time.monotonic()
            thread.join(timeout=max(0.0, remaining))
            alive = alive or thread.is_alive()
        return not alive

    def _loop(self, owner: str) -> None:
        while not self._stop.is_set():
            try:
                record = self.store.claim_next(owner, self.lease_s)
            except ServiceError:
                record = None
            if record is None:
                self._wake.wait(timeout=self.poll_s)
                self._wake.clear()
                continue
            execute_job(
                self.store,
                record,
                self.cache_dir,
                owner,
                lease_s=self.lease_s,
                stop=self._stop,
                checkpoint_root=self.checkpoint_root,
            )
            with self._lock:
                self.completed += 1


def run_worker_loop(
    store: JobStore,
    cache_dir: Optional[str],
    lease_s: float = DEFAULT_LEASE_S,
    poll_s: float = 0.5,
    max_jobs: Optional[int] = None,
    stop: Optional[threading.Event] = None,
) -> int:
    """Foreground claim-execute loop for ``repro work``.

    Processes jobs until ``max_jobs`` is reached (None = forever) or
    ``stop`` is set; returns the number of jobs driven to a terminal
    state.  KeyboardInterrupt between jobs exits cleanly; during a job
    it releases the job back to the queue first (see
    :func:`execute_job`).
    """
    owner = worker_identity("cli")
    done = 0
    last_reap = time.monotonic()
    while (max_jobs is None or done < max_jobs) and (
        stop is None or not stop.is_set()
    ):
        record = store.claim_next(owner, lease_s)
        if record is None:
            # idle maintenance so a worker-only farm (no `repro serve`
            # reaper) still recovers jobs orphaned by dead peers
            if time.monotonic() - last_reap >= max(lease_s, 5.0):
                store.reap_expired(grace_s=lease_s)
                last_reap = time.monotonic()
            time.sleep(poll_s)
            continue
        final = execute_job(
            store,
            record,
            cache_dir,
            owner,
            lease_s=lease_s,
            stop=stop,
            checkpoint_root=store.root / "checkpoints",
        )
        if final.terminal:
            done += 1
    return done


__all__ = [
    "DEFAULT_LEASE_S",
    "WorkerPool",
    "execute_job",
    "fully_cached",
    "run_worker_loop",
    "worker_identity",
]
