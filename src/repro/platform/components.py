"""Performance specifications of platform library components.

The paper parameterises "properties, capabilities, and limitations" of
platform components (Section 3.2) and uses them to guide high-level HW/SW
co-simulation.  These dataclasses are those parameter sets; the UML view
(stereotyped classes and tagged values) is generated from them by
:mod:`repro.platform.library`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ModelError
from repro.tutprofile.tags import Arbitration, ComponentType, ProcessType


@dataclass(frozen=True)
class ProcessingElementSpec:
    """A processing element (soft-core CPU, DSP, or hardware accelerator).

    ``cycles_per_statement`` maps a process type to the average number of PE
    clock cycles one action-language statement costs when a process of that
    type runs on this PE.  A missing entry means the PE cannot execute that
    process type natively (mapping validation rejects it).
    """

    name: str
    component_type: str = ComponentType.GENERAL
    frequency_hz: int = 50_000_000
    cycles_per_statement: Dict[str, int] = field(
        default_factory=lambda: {
            ProcessType.GENERAL: 10,
            ProcessType.DSP: 14,
            ProcessType.HARDWARE: 40,
        }
    )
    context_switch_cycles: int = 120
    signal_dispatch_cycles: int = 30
    area_mm2: float = 1.0
    power_mw: float = 50.0
    internal_memory_bytes: int = 65536

    def __post_init__(self) -> None:
        # defensively copy the dict: callers routinely build several specs
        # from one cycle table, and a shared reference would let a later
        # mutation retroactively change every spec's cost model
        object.__setattr__(
            self, "cycles_per_statement", dict(self.cycles_per_statement)
        )
        if self.component_type not in ComponentType.ALL:
            raise ModelError(f"unknown component type {self.component_type!r}")
        if self.frequency_hz <= 0:
            raise ModelError("frequency_hz must be positive")
        for process_type, cycles in self.cycles_per_statement.items():
            if process_type not in ProcessType.ALL:
                raise ModelError(f"unknown process type {process_type!r}")
            if cycles <= 0:
                raise ModelError("cycles_per_statement values must be positive")

    def supports(self, process_type: str) -> bool:
        return process_type in self.cycles_per_statement

    def statement_cycles(self, process_type: str) -> int:
        try:
            return self.cycles_per_statement[process_type]
        except KeyError:
            raise ModelError(
                f"PE {self.name!r} cannot execute {process_type!r} processes"
            ) from None


@dataclass(frozen=True)
class SegmentSpec:
    """A communication segment (a HIBI bus segment, possibly a bridge)."""

    name: str
    data_width_bits: int = 32
    frequency_hz: int = 50_000_000
    arbitration: str = Arbitration.PRIORITY
    is_bridge: bool = False
    burst_words: int = 8
    arbitration_cycles: int = 2  # cycles to win an idle bus

    def __post_init__(self) -> None:
        if self.arbitration not in Arbitration.ALL:
            raise ModelError(f"unknown arbitration scheme {self.arbitration!r}")
        if self.data_width_bits <= 0 or self.data_width_bits % 8:
            raise ModelError("data_width_bits must be a positive multiple of 8")
        if self.frequency_hz <= 0:
            raise ModelError("frequency_hz must be positive")
        if self.burst_words <= 0:
            raise ModelError("burst_words must be positive")

    def words_for_bytes(self, size_bytes: int) -> int:
        word_bytes = self.data_width_bits // 8
        return max(1, (size_bytes + word_bytes - 1) // word_bytes)

    def transfer_cycles(self, size_bytes: int) -> int:
        """Bus-clock cycles to move ``size_bytes`` once access is granted.

        One word per cycle, plus one overhead cycle per burst (HIBI sends
        an address word when a burst opens).
        """
        words = self.words_for_bytes(size_bytes)
        bursts = (words + self.burst_words - 1) // self.burst_words
        return words + bursts


@dataclass(frozen=True)
class WrapperSpec:
    """A communication wrapper attaching an agent to a segment."""

    address: int
    tx_buffer_words: int = 8
    rx_buffer_words: int = 8
    priority_class: int = 0
    max_reservation_cycles: int = 0  # 0 = unlimited (MaxTime tag)

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ModelError("wrapper address must be non-negative")
        if self.tx_buffer_words <= 0 or self.rx_buffer_words <= 0:
            raise ModelError("wrapper buffer sizes must be positive")
