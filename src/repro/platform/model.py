"""Designer-facing platform view (paper Sections 3.2 and 4.2).

A :class:`PlatformModel` composes library components into a concrete
platform: «PlatformComponentInstance» parts for processing elements,
«HIBISegment» parts for bus segments, and «HIBIWrapper» dependencies
attaching agents (PEs or bridged segments) to segments.  The class also
answers the topology queries the bus simulator needs: which segment a PE
sits on and which sequence of segments a transfer crosses.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.errors import MappingError, ModelError
from repro.uml.classifier import Class
from repro.uml.dependency import Dependency
from repro.uml.packages import Model, Package
from repro.uml.structure import Property
from repro.tutprofile import (
    HIBI_WRAPPER,
    PLATFORM,
    PLATFORM_COMPONENT_INSTANCE,
    PLATFORM_COMMUNICATION_SEGMENT,
    TUT_PROFILE,
)
from repro.platform.components import ProcessingElementSpec, SegmentSpec, WrapperSpec
from repro.platform.library import PlatformLibrary


class PEInstance:
    """One instantiated processing element."""

    def __init__(
        self, name: str, part: Property, spec: ProcessingElementSpec, identifier: int
    ) -> None:
        self.name = name
        self.part = part
        self.spec = spec
        self.identifier = identifier

    def priority(self) -> int:
        return self.part.tag(PLATFORM_COMPONENT_INSTANCE, "Priority", 0)

    # -- «PlatformRtos» accessors (paper future work: RTOS accounting) -----

    def has_rtos(self) -> bool:
        return self.part.has_stereotype("PlatformRtos")

    def scheduling_policy(self) -> str:
        return self.part.tag("PlatformRtos", "Scheduling", "priority")

    def dispatch_overhead_cycles(self) -> int:
        return self.part.tag("PlatformRtos", "DispatchOverhead", 0)

    def tick_period_us(self) -> int:
        return self.part.tag("PlatformRtos", "TickPeriod", 0)

    def __repr__(self) -> str:
        return f"PEInstance({self.name} : {self.spec.name})"


class SegmentInstance:
    """One instantiated bus segment."""

    def __init__(self, name: str, part: Property, spec: SegmentSpec) -> None:
        self.name = name
        self.part = part
        self.spec = spec

    @property
    def is_bridge(self) -> bool:
        return self.spec.is_bridge

    def __repr__(self) -> str:
        return f"SegmentInstance({self.name} : {self.spec.name})"


class WrapperInstance:
    """A wrapper attaching an agent (PE or segment) to a segment."""

    def __init__(
        self,
        dependency: Dependency,
        agent_name: str,
        segment_name: str,
        spec: WrapperSpec,
    ) -> None:
        self.dependency = dependency
        self.agent_name = agent_name
        self.segment_name = segment_name
        self.spec = spec

    def __repr__(self) -> str:
        return f"WrapperInstance({self.agent_name} @ {self.segment_name})"


class PlatformModel:
    """Builder and query facade for one TUT-Profile platform."""

    def __init__(
        self,
        name: str,
        library: PlatformLibrary,
        model: Optional[Model] = None,
        profile=None,
    ) -> None:
        self.profile = profile if profile is not None else TUT_PROFILE
        self.library = library
        self.model = model if model is not None else Model(f"{name}Model")
        self.package = Package("PlatformView")
        self.model.add(self.package)
        if library.package.owner is None:
            self.model.add(library.package)
        self.top = Class(name)
        self.package.add(self.top)
        self.profile.apply(self.top, PLATFORM)
        self.processing_elements: Dict[str, PEInstance] = {}
        self.segments: Dict[str, SegmentInstance] = {}
        self.wrappers: List[WrapperInstance] = []
        self._next_id = 1
        self._next_address = 0x100

    # ------------------------------------------------------------------
    # reconstruction from a (possibly XMI-parsed) UML model
    # ------------------------------------------------------------------

    @classmethod
    def from_model(
        cls,
        model: Model,
        library: PlatformLibrary,
        profile=None,
        view_name: str = "PlatformView",
    ) -> "PlatformModel":
        """Rebuild the facade from an existing model (e.g. parsed XMI).

        Performance specs (cycle costs) are not part of the UML view — they
        come from ``library`` by component class name, exactly as the
        paper's platform library supplies the parameterised presentation.
        """
        from repro.tutprofile import (
            PLATFORM as PLATFORM_ST,
            PLATFORM_COMMUNICATION_SEGMENT as SEGMENT_ST,
            PLATFORM_COMMUNICATION_WRAPPER as WRAPPER_ST,
            PLATFORM_COMPONENT_INSTANCE as INSTANCE_ST,
        )
        from repro.uml.packages import Package

        platform = cls.__new__(cls)
        platform.profile = profile if profile is not None else TUT_PROFILE
        platform.library = library
        platform.model = model
        package = model.member(view_name)
        if not isinstance(package, Package):
            raise ModelError(f"model has no {view_name} package")
        platform.package = package
        tops = [
            e
            for e in package.packaged_elements
            if isinstance(e, Class) and e.has_stereotype(PLATFORM_ST)
        ]
        if len(tops) != 1:
            raise ModelError(
                f"expected exactly one «Platform» class, found {len(tops)}"
            )
        platform.top = tops[0]
        platform.processing_elements = {}
        platform.segments = {}
        platform.wrappers = []
        max_id, max_address = 0, 0
        for part in platform.top.parts:
            type_name = part.type.name if part.type is not None else ""
            if part.has_stereotype(INSTANCE_ST):
                spec = library.processing_element(type_name)
                identifier = part.tag(INSTANCE_ST, "ID", 0)
                platform.processing_elements[part.name] = PEInstance(
                    part.name, part, spec, identifier
                )
                max_id = max(max_id, identifier)
            elif part.has_stereotype(SEGMENT_ST):
                base = library.segment(type_name)
                spec = SegmentSpec(
                    name=base.name,
                    data_width_bits=part.tag(SEGMENT_ST, "DataWidth", base.data_width_bits),
                    frequency_hz=part.tag(SEGMENT_ST, "Frequency", base.frequency_hz),
                    arbitration=part.tag(SEGMENT_ST, "Arbitration", base.arbitration),
                    is_bridge=part.tag("HIBISegment", "IsBridge", base.is_bridge),
                    burst_words=part.tag("HIBISegment", "BurstLength", base.burst_words),
                    arbitration_cycles=base.arbitration_cycles,
                )
                platform.segments[part.name] = SegmentInstance(part.name, part, spec)
        for dependency in package.members_of_type(Dependency):
            if not dependency.has_stereotype(WRAPPER_ST):
                continue
            address = dependency.tag(WRAPPER_ST, "Address", 0)
            spec = WrapperSpec(
                address=address,
                tx_buffer_words=dependency.tag(
                    "HIBIWrapper", "TxBufferSize",
                    dependency.tag(WRAPPER_ST, "BufferSize", 8),
                ),
                rx_buffer_words=dependency.tag("HIBIWrapper", "RxBufferSize", 8),
                priority_class=dependency.tag("HIBIWrapper", "PriorityClass", 0),
                max_reservation_cycles=dependency.tag(WRAPPER_ST, "MaxTime", 0),
            )
            platform.wrappers.append(
                WrapperInstance(
                    dependency,
                    dependency.client.name,
                    dependency.supplier.name,
                    spec,
                )
            )
            max_address = max(max_address, address)
        platform._next_id = max_id + 1
        platform._next_address = max(0x100, ((max_address >> 8) + 1) << 8)
        return platform

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def instantiate(
        self,
        name: str,
        component_name: str,
        priority: int = 0,
        identifier: Optional[int] = None,
        internal_memory: Optional[int] = None,
    ) -> PEInstance:
        """Instantiate a library processing element on the platform."""
        if name in self.processing_elements or name in self.segments:
            raise ModelError(f"platform already has an instance {name!r}")
        spec = self.library.processing_element(component_name)
        component_class = self.library.component_class(component_name)
        part = self.top.add_part(Property(name, component_class))
        if identifier is None:
            identifier = self._next_id
        self._next_id = max(self._next_id, identifier) + 1
        self.profile.apply(
            part,
            PLATFORM_COMPONENT_INSTANCE,
            ID=identifier,
            Priority=priority,
            IntMemory=(
                internal_memory
                if internal_memory is not None
                else spec.internal_memory_bytes
            ),
        )
        instance = PEInstance(name, part, spec, identifier)
        self.processing_elements[name] = instance
        return instance

    def configure_rtos(
        self,
        pe_name: str,
        scheduling: str = "priority",
        dispatch_overhead_cycles: int = 0,
        tick_period_us: int = 0,
    ) -> PEInstance:
        """Install an RTOS on a processor («PlatformRtos», paper future work)."""
        pe = self.pe(pe_name)
        if self.profile.stereotype("PlatformRtos") is None:
            from repro.tutprofile import extend_with_rtos

            extend_with_rtos(self.profile)
        self.profile.apply(
            pe.part,
            "PlatformRtos",
            Scheduling=scheduling,
            DispatchOverhead=dispatch_overhead_cycles,
            TickPeriod=tick_period_us,
        )
        return pe

    def segment(
        self, name: str, component_name: str = "HIBISegment", **overrides
    ) -> SegmentInstance:
        """Instantiate a bus segment; ``overrides`` adjust the spec."""
        if name in self.processing_elements or name in self.segments:
            raise ModelError(f"platform already has an instance {name!r}")
        base = self.library.segment(component_name)
        spec = (
            base
            if not overrides
            else SegmentSpec(
                name=base.name,
                data_width_bits=overrides.get("data_width_bits", base.data_width_bits),
                frequency_hz=overrides.get("frequency_hz", base.frequency_hz),
                arbitration=overrides.get("arbitration", base.arbitration),
                is_bridge=overrides.get("is_bridge", base.is_bridge),
                burst_words=overrides.get("burst_words", base.burst_words),
                arbitration_cycles=overrides.get(
                    "arbitration_cycles", base.arbitration_cycles
                ),
            )
        )
        segment_class = self.library.component_class(component_name)
        part = self.top.add_part(Property(name, segment_class))
        stereotype = (
            "HIBISegment"
            if self.profile.stereotype("HIBISegment") is not None
            else PLATFORM_COMMUNICATION_SEGMENT
        )
        tags = {
            "DataWidth": spec.data_width_bits,
            "Frequency": spec.frequency_hz,
            "Arbitration": spec.arbitration,
        }
        if stereotype == "HIBISegment":
            tags["IsBridge"] = spec.is_bridge
            tags["BurstLength"] = spec.burst_words
        self.profile.apply(part, stereotype, **tags)
        instance = SegmentInstance(name, part, spec)
        self.segments[name] = instance
        return instance

    def attach(
        self,
        agent_name: str,
        segment_name: str,
        address: Optional[int] = None,
        tx_buffer_words: int = 8,
        rx_buffer_words: int = 8,
        priority_class: int = 0,
        max_reservation_cycles: int = 0,
    ) -> WrapperInstance:
        """Attach an agent (PE or another segment) to a segment via a wrapper.

        Attaching a segment to a segment makes one of them a bridge hop:
        transfers may cross between them.
        """
        agent_part = self._agent_part(agent_name)
        segment = self._segment(segment_name)
        if address is None:
            address = self._next_address
            self._next_address += 0x100
        for wrapper in self.wrappers:
            if wrapper.spec.address == address:
                raise ModelError(
                    f"wrapper address {address:#x} already used by "
                    f"{wrapper.agent_name!r}"
                )
            if (
                wrapper.agent_name == agent_name
                and wrapper.segment_name == segment_name
            ):
                raise ModelError(
                    f"{agent_name!r} is already attached to {segment_name!r}"
                )
        spec = WrapperSpec(
            address=address,
            tx_buffer_words=tx_buffer_words,
            rx_buffer_words=rx_buffer_words,
            priority_class=priority_class,
            max_reservation_cycles=max_reservation_cycles,
        )
        dependency = Dependency(
            f"{agent_name}_on_{segment_name}",
            client=agent_part,
            supplier=segment.part,
        )
        self.package.add(dependency)
        stereotype = (
            HIBI_WRAPPER
            if self.profile.stereotype(HIBI_WRAPPER) is not None
            else "PlatformCommunicationWrapper"
        )
        tags = {
            "Address": address,
            "BufferSize": tx_buffer_words,
            "MaxTime": max_reservation_cycles,
        }
        if stereotype == HIBI_WRAPPER:
            tags["TxBufferSize"] = tx_buffer_words
            tags["RxBufferSize"] = rx_buffer_words
            tags["PriorityClass"] = priority_class
        self.profile.apply(dependency, stereotype, **tags)
        wrapper = WrapperInstance(dependency, agent_name, segment_name, spec)
        self.wrappers.append(wrapper)
        return wrapper

    def _agent_part(self, agent_name: str) -> Property:
        if agent_name in self.processing_elements:
            return self.processing_elements[agent_name].part
        if agent_name in self.segments:
            return self.segments[agent_name].part
        raise ModelError(f"platform has no agent named {agent_name!r}")

    def _segment(self, name: str) -> SegmentInstance:
        try:
            return self.segments[name]
        except KeyError:
            raise ModelError(f"platform has no segment named {name!r}") from None

    # ------------------------------------------------------------------
    # topology queries
    # ------------------------------------------------------------------

    def pe(self, name: str) -> PEInstance:
        try:
            return self.processing_elements[name]
        except KeyError:
            raise ModelError(f"platform has no PE named {name!r}") from None

    def wrapper_of(self, agent_name: str, segment_name: str) -> WrapperInstance:
        for wrapper in self.wrappers:
            if (
                wrapper.agent_name == agent_name
                and wrapper.segment_name == segment_name
            ):
                return wrapper
        raise ModelError(
            f"no wrapper attaches {agent_name!r} to {segment_name!r}"
        )

    def segments_of(self, agent_name: str) -> List[str]:
        """Segments an agent is (directly) attached to."""
        return [
            w.segment_name for w in self.wrappers if w.agent_name == agent_name
        ]

    def agents_on(self, segment_name: str) -> List[str]:
        """Agents (PEs and segments) attached to ``segment_name``."""
        return [
            w.agent_name for w in self.wrappers if w.segment_name == segment_name
        ]

    def _adjacency(self) -> Dict[str, List[str]]:
        """Undirected node graph over PEs and segments (wrappers are edges)."""
        graph: Dict[str, List[str]] = {}
        for wrapper in self.wrappers:
            graph.setdefault(wrapper.agent_name, []).append(wrapper.segment_name)
            graph.setdefault(wrapper.segment_name, []).append(wrapper.agent_name)
        return graph

    def transfer_path(self, source_pe: str, target_pe: str) -> List[str]:
        """Segment names a transfer crosses between two PEs (BFS, fewest hops).

        Returns an empty list for a PE talking to itself.  Raises
        :class:`MappingError` when the PEs are not connected.
        """
        if source_pe == target_pe:
            return []
        self.pe(source_pe)
        self.pe(target_pe)
        graph = self._adjacency()
        queue = deque([(source_pe, [])])
        visited = {source_pe}
        while queue:
            node, path = queue.popleft()
            for neighbor in graph.get(node, []):
                if neighbor in visited:
                    continue
                next_path = path + [neighbor] if neighbor in self.segments else path
                if neighbor == target_pe:
                    return next_path
                visited.add(neighbor)
                # Only segments forward traffic; a PE is never an intermediate hop.
                if neighbor in self.segments:
                    queue.append((neighbor, next_path))
        raise MappingError(
            f"no communication path between {source_pe!r} and {target_pe!r}"
        )

    def total_area(self) -> float:
        return sum(pe.spec.area_mm2 for pe in self.processing_elements.values())

    def total_power(self) -> float:
        return sum(pe.spec.power_mw for pe in self.processing_elements.values())
