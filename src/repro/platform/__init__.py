"""Platform view: component library and platform composition (Section 3.2)."""

from repro.platform.components import (
    ProcessingElementSpec,
    SegmentSpec,
    WrapperSpec,
)
from repro.platform.library import PlatformLibrary, standard_library
from repro.platform.model import (
    PEInstance,
    PlatformModel,
    SegmentInstance,
    WrapperInstance,
)

__all__ = [
    "PEInstance",
    "PlatformLibrary",
    "PlatformModel",
    "ProcessingElementSpec",
    "SegmentInstance",
    "SegmentSpec",
    "WrapperInstance",
    "WrapperSpec",
    "standard_library",
]
