"""The platform component library (paper Section 3.2).

"The platform is seen as a component library with a parameterized
presentation in UML 2.0 for each library component."  A
:class:`PlatformLibrary` holds :class:`ProcessingElementSpec` /
:class:`SegmentSpec` entries together with the UML classes that present
them; :func:`standard_library` provides the Altera-Stratix-flavoured
catalogue the TUTWLAN case uses (Nios-like soft cores, a CRC-32 hardware
accelerator, HIBI segments).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.errors import ModelError
from repro.uml.classifier import Class
from repro.uml.packages import Package
from repro.tutprofile import (
    PLATFORM_COMMUNICATION_SEGMENT,
    PLATFORM_COMPONENT,
    TUT_PROFILE,
)
from repro.tutprofile.tags import ComponentType, ProcessType
from repro.platform.components import ProcessingElementSpec, SegmentSpec

LibrarySpec = Union[ProcessingElementSpec, SegmentSpec]


class PlatformLibrary:
    """A named catalogue of parameterised platform components."""

    def __init__(self, name: str = "PlatformLibrary", profile=None) -> None:
        self.name = name
        self.profile = profile if profile is not None else TUT_PROFILE
        self.package = Package(name)
        self.processing_elements: Dict[str, ProcessingElementSpec] = {}
        self.segments: Dict[str, SegmentSpec] = {}
        self.classes: Dict[str, Class] = {}

    # -- registration ---------------------------------------------------------

    def add_processing_element(self, spec: ProcessingElementSpec) -> Class:
        """Register a PE spec and create its «PlatformComponent» presentation."""
        if spec.name in self.classes:
            raise ModelError(f"library already has a component {spec.name!r}")
        component = Class(spec.name)
        self.package.add(component)
        self.profile.apply(
            component,
            PLATFORM_COMPONENT,
            Type=spec.component_type,
            Area=spec.area_mm2,
            Power=spec.power_mw,
        )
        self.processing_elements[spec.name] = spec
        self.classes[spec.name] = component
        return component

    def add_segment(self, spec: SegmentSpec) -> Class:
        """Register a segment spec with its «PlatformCommunicationSegment»
        (specialised «HIBISegment») presentation."""
        if spec.name in self.classes:
            raise ModelError(f"library already has a component {spec.name!r}")
        segment = Class(spec.name)
        self.package.add(segment)
        stereotype = (
            "HIBISegment"
            if self.profile.stereotype("HIBISegment") is not None
            else PLATFORM_COMMUNICATION_SEGMENT
        )
        self.profile.apply(
            segment,
            stereotype,
            DataWidth=spec.data_width_bits,
            Frequency=spec.frequency_hz,
            Arbitration=spec.arbitration,
            **({"IsBridge": spec.is_bridge, "BurstLength": spec.burst_words}
               if stereotype == "HIBISegment" else {}),
        )
        self.segments[spec.name] = spec
        self.classes[spec.name] = segment
        return segment

    # -- lookup ---------------------------------------------------------------

    def processing_element(self, name: str) -> ProcessingElementSpec:
        try:
            return self.processing_elements[name]
        except KeyError:
            raise ModelError(f"library has no processing element {name!r}") from None

    def segment(self, name: str) -> SegmentSpec:
        try:
            return self.segments[name]
        except KeyError:
            raise ModelError(f"library has no segment {name!r}") from None

    def component_class(self, name: str) -> Class:
        try:
            return self.classes[name]
        except KeyError:
            raise ModelError(f"library has no component {name!r}") from None

    def spec_of(self, name: str) -> LibrarySpec:
        if name in self.processing_elements:
            return self.processing_elements[name]
        if name in self.segments:
            return self.segments[name]
        raise ModelError(f"library has no component {name!r}")

    def component_names(self) -> List[str]:
        return sorted(self.classes)


def standard_library(profile=None) -> PlatformLibrary:
    """The TUTWLAN-flavoured component catalogue.

    Entries model the paper's physical platform: Altera Nios-class soft
    cores on a Stratix FPGA, a CRC-32 hardware accelerator, and HIBI v2 bus
    segments (50 MHz system clock, 32-bit bus).
    """
    library = PlatformLibrary("TUTPlatformLibrary", profile=profile)
    library.add_processing_element(
        ProcessingElementSpec(
            name="NiosCPU",
            component_type=ComponentType.GENERAL,
            frequency_hz=50_000_000,
            cycles_per_statement={
                ProcessType.GENERAL: 10,
                ProcessType.DSP: 14,
                ProcessType.HARDWARE: 40,
            },
            context_switch_cycles=120,
            signal_dispatch_cycles=30,
            area_mm2=2.6,
            power_mw=85.0,
            internal_memory_bytes=131072,
        )
    )
    library.add_processing_element(
        ProcessingElementSpec(
            name="NiosDSP",
            component_type=ComponentType.DSP,
            frequency_hz=50_000_000,
            cycles_per_statement={
                ProcessType.GENERAL: 12,
                ProcessType.DSP: 6,
            },
            context_switch_cycles=140,
            signal_dispatch_cycles=30,
            area_mm2=3.4,
            power_mw=110.0,
            internal_memory_bytes=131072,
        )
    )
    library.add_processing_element(
        ProcessingElementSpec(
            name="CRCAccelerator",
            component_type=ComponentType.HW_ACCELERATOR,
            frequency_hz=50_000_000,
            cycles_per_statement={ProcessType.HARDWARE: 1},
            context_switch_cycles=0,
            signal_dispatch_cycles=4,
            area_mm2=0.4,
            power_mw=12.0,
            internal_memory_bytes=2048,
        )
    )
    library.add_segment(
        SegmentSpec(
            name="HIBISegment",
            data_width_bits=32,
            frequency_hz=50_000_000,
            arbitration="priority",
            burst_words=8,
        )
    )
    library.add_segment(
        SegmentSpec(
            name="HIBIBridgeSegment",
            data_width_bits=32,
            frequency_hz=50_000_000,
            arbitration="priority",
            is_bridge=True,
            burst_words=8,
        )
    )
    return library
