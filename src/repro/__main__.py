"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``tables`` — print the profile's Tables 1-3;
* ``tutmac`` — run the workstation reference simulation and print the
  Table 4 profiling report;
* ``flow`` — run the full Figure 2 design flow on the TUTMAC/TUTWLAN
  system, writing XMI, generated C, the log-file and the report; with
  ``--fault-rate`` the simulation runs under a seeded fault plan;
* ``faults`` — run a seeded fault-injection campaign on the ARQ-enabled
  TUTMAC model and print the recovery ledger;
* ``timeline`` — simulate on the TUTWLAN platform and draw a text Gantt
  of the processors;
* ``validate <model.xmi>`` — parse an XMI file and run UML well-formedness
  plus the TUT-Profile design rules over it.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_tables(args) -> int:
    from repro.tutprofile import TUT_PROFILE, render_table1, render_table2, render_table3

    print(render_table1(TUT_PROFILE))
    print()
    print(render_table2(TUT_PROFILE))
    print()
    print(render_table3(TUT_PROFILE))
    return 0


def _cmd_tutmac(args) -> int:
    from repro.cases.tutmac import build_tutmac
    from repro.profiling import profile_run, render_report
    from repro.simulation import run_reference_simulation

    application = build_tutmac()
    result = run_reference_simulation(application, duration_us=args.duration_us)
    data = profile_run(result, application)
    print(render_report(data, title="TUTMAC profiling report (workstation reference)"))
    return 0


def _cmd_flow(args) -> int:
    from repro.cases.tutwlan import build_tutwlan_system
    from repro.flow import run_design_flow

    faults = None
    if args.fault_rate > 0.0:
        from repro.cases.tutmac.params import TutmacParameters
        from repro.faults import build_campaign_plan

        application, platform, mapping = build_tutwlan_system(
            params=TutmacParameters(arq_enabled=True)
        )
        faults = build_campaign_plan(seed=args.seed, fault_rate=args.fault_rate)
    else:
        application, platform, mapping = build_tutwlan_system()
    result = run_design_flow(
        application,
        platform,
        mapping,
        args.workdir,
        duration_us=args.duration_us,
        faults=faults,
    )
    print(result.report_text)
    print()
    print("artefacts:")
    for kind, path in sorted(result.artifacts.items()):
        print(f"  {kind:<8} {path}")
    return 0


def _cmd_faults(args) -> int:
    from repro.faults import run_fault_campaign
    from repro.profiling import render_fault_section, render_report

    campaign = run_fault_campaign(
        seed=args.seed, fault_rate=args.fault_rate, duration_us=args.duration_us
    )
    if args.full_report:
        print(render_report(campaign.profiling, title="Fault campaign report"))
    else:
        print(render_fault_section(campaign.profiling))
    stats = campaign.stats
    ok = stats.injected == stats.detected == stats.recovered + stats.residual
    return 0 if ok else 1


def _cmd_timeline(args) -> int:
    from repro.cases.tutwlan import build_tutwlan_system
    from repro.diagrams import timeline_text, utilization_summary
    from repro.simulation import SystemSimulation

    result = SystemSimulation(*build_tutwlan_system()).run(args.duration_us)
    window_ps = args.window_us * 1_000_000
    print(timeline_text(result.log, width=args.width, end_ps=window_ps))
    print()
    print(utilization_summary(result.log))
    return 0


def _cmd_validate(args) -> int:
    from repro.tutprofile import TUT_PROFILE, check_design_rules
    from repro.uml import read_model, validate_model

    model = read_model(args.model, profiles=[TUT_PROFILE])
    wellformed = validate_model(model)
    rules = check_design_rules(model)
    print("UML well-formedness:")
    print("  " + wellformed.render().replace("\n", "\n  "))
    print("TUT-Profile design rules:")
    print("  " + rules.render().replace("\n", "\n  "))
    return 0 if wellformed.ok and rules.ok else 1


def _rate(text: str) -> float:
    value = float(text)
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(f"must be in [0, 1], got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TUT-Profile (DATE 2005) reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("tables", help="print profile Tables 1-3").set_defaults(
        handler=_cmd_tables
    )

    tutmac = subparsers.add_parser(
        "tutmac", help="Table 4: TUTMAC on the workstation reference"
    )
    tutmac.add_argument("--duration-us", type=int, default=200_000)
    tutmac.set_defaults(handler=_cmd_tutmac)

    flow = subparsers.add_parser("flow", help="run the full Figure 2 design flow")
    flow.add_argument("--workdir", default="./tut_flow_output")
    flow.add_argument("--duration-us", type=int, default=100_000)
    flow.add_argument(
        "--seed", type=int, default=1, help="fault-plan seed (with --fault-rate)"
    )
    flow.add_argument(
        "--fault-rate",
        type=_rate,
        default=0.0,
        help="per-transfer corruption probability; 0 disables fault injection",
    )
    flow.set_defaults(handler=_cmd_flow)

    faults = subparsers.add_parser(
        "faults", help="seeded fault-injection campaign on ARQ-enabled TUTMAC"
    )
    faults.add_argument("--seed", type=int, default=1)
    faults.add_argument("--fault-rate", type=_rate, default=0.05)
    faults.add_argument("--duration-us", type=int, default=200_000)
    faults.add_argument(
        "--full-report",
        action="store_true",
        help="print the whole profiling report, not just the fault ledger",
    )
    faults.set_defaults(handler=_cmd_faults)

    timeline = subparsers.add_parser(
        "timeline", help="text Gantt of the TUTWLAN processors"
    )
    timeline.add_argument("--duration-us", type=int, default=10_000)
    timeline.add_argument("--window-us", type=int, default=3_000)
    timeline.add_argument("--width", type=int, default=100)
    timeline.set_defaults(handler=_cmd_timeline)

    validate = subparsers.add_parser("validate", help="validate an XMI model file")
    validate.add_argument("model")
    validate.set_defaults(handler=_cmd_validate)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
