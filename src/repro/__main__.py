"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``tables`` — print the profile's Tables 1-3;
* ``tutmac`` — run the workstation reference simulation and print the
  Table 4 profiling report;
* ``flow`` — run the full Figure 2 design flow on the TUTMAC/TUTWLAN
  system, writing XMI, generated C, the log-file and the report;
* ``timeline`` — simulate on the TUTWLAN platform and draw a text Gantt
  of the processors;
* ``validate <model.xmi>`` — parse an XMI file and run UML well-formedness
  plus the TUT-Profile design rules over it.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_tables(args) -> int:
    from repro.tutprofile import TUT_PROFILE, render_table1, render_table2, render_table3

    print(render_table1(TUT_PROFILE))
    print()
    print(render_table2(TUT_PROFILE))
    print()
    print(render_table3(TUT_PROFILE))
    return 0


def _cmd_tutmac(args) -> int:
    from repro.cases.tutmac import build_tutmac
    from repro.profiling import profile_run, render_report
    from repro.simulation import run_reference_simulation

    application = build_tutmac()
    result = run_reference_simulation(application, duration_us=args.duration_us)
    data = profile_run(result, application)
    print(render_report(data, title="TUTMAC profiling report (workstation reference)"))
    return 0


def _cmd_flow(args) -> int:
    from repro.cases.tutwlan import build_tutwlan_system
    from repro.flow import run_design_flow

    application, platform, mapping = build_tutwlan_system()
    result = run_design_flow(
        application, platform, mapping, args.workdir, duration_us=args.duration_us
    )
    print(result.report_text)
    print()
    print("artefacts:")
    for kind, path in sorted(result.artifacts.items()):
        print(f"  {kind:<8} {path}")
    return 0


def _cmd_timeline(args) -> int:
    from repro.cases.tutwlan import build_tutwlan_system
    from repro.diagrams import timeline_text, utilization_summary
    from repro.simulation import SystemSimulation

    result = SystemSimulation(*build_tutwlan_system()).run(args.duration_us)
    window_ps = args.window_us * 1_000_000
    print(timeline_text(result.log, width=args.width, end_ps=window_ps))
    print()
    print(utilization_summary(result.log))
    return 0


def _cmd_validate(args) -> int:
    from repro.tutprofile import TUT_PROFILE, check_design_rules
    from repro.uml import read_model, validate_model

    model = read_model(args.model, profiles=[TUT_PROFILE])
    wellformed = validate_model(model)
    rules = check_design_rules(model)
    print("UML well-formedness:")
    print("  " + wellformed.render().replace("\n", "\n  "))
    print("TUT-Profile design rules:")
    print("  " + rules.render().replace("\n", "\n  "))
    return 0 if wellformed.ok and rules.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TUT-Profile (DATE 2005) reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("tables", help="print profile Tables 1-3").set_defaults(
        handler=_cmd_tables
    )

    tutmac = subparsers.add_parser(
        "tutmac", help="Table 4: TUTMAC on the workstation reference"
    )
    tutmac.add_argument("--duration-us", type=int, default=200_000)
    tutmac.set_defaults(handler=_cmd_tutmac)

    flow = subparsers.add_parser("flow", help="run the full Figure 2 design flow")
    flow.add_argument("--workdir", default="./tut_flow_output")
    flow.add_argument("--duration-us", type=int, default=100_000)
    flow.set_defaults(handler=_cmd_flow)

    timeline = subparsers.add_parser(
        "timeline", help="text Gantt of the TUTWLAN processors"
    )
    timeline.add_argument("--duration-us", type=int, default=10_000)
    timeline.add_argument("--window-us", type=int, default=3_000)
    timeline.add_argument("--width", type=int, default=100)
    timeline.set_defaults(handler=_cmd_timeline)

    validate = subparsers.add_parser("validate", help="validate an XMI model file")
    validate.add_argument("model")
    validate.set_defaults(handler=_cmd_validate)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
